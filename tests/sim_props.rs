//! Property tests for the reference simulator: determinism, bandwidth
//! monotonicity and conservation laws.

use proptest::prelude::*;
use ulm::prelude::*;

/// A case-study chip variant with configurable GB bandwidth, plus a layer
/// and a shuffled loop ordering.
fn arb_case() -> impl Strategy<Value = (u64, u64, u64, Vec<(Dim, u64)>)> {
    (2u32..5, 2u32..5, 3u32..6, any::<u64>()).prop_map(|(bexp, kexp, cexp, seed)| {
        let b = 8u64 << (bexp % 3);
        let k = 16u64 << (kexp % 3);
        let c = 2u64 << cexp;
        // Temporal factors after spatial K16|B8|C2.
        let mut factors = Vec::new();
        let mut push = |dim: Dim, mut n: u64| {
            while n.is_multiple_of(2) && n > 1 {
                factors.push((dim, 2u64));
                n /= 2;
            }
            if n > 1 {
                factors.push((dim, n));
            }
        };
        push(Dim::B, b / 8);
        push(Dim::K, k / 16);
        push(Dim::C, c / 2);
        let mut s = seed;
        for i in (1..factors.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            factors.swap(i, j);
        }
        (b, k, c, factors)
    })
}

fn simulate(gb_bw: u64, b: u64, k: u64, c: u64, stack: &[(Dim, u64)]) -> Option<SimReport> {
    let arch = presets::case_study_chip(gb_bw);
    let layer = Layer::matmul("p", b, k, c, Precision::int8_acc24());
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    let mapping =
        Mapping::with_greedy_alloc(&arch, &layer, spatial, LoopStack::from_pairs(stack)).ok()?;
    let view = MappedLayer::new(&layer, &arch, &mapping).ok()?;
    Simulator::new().simulate(&view).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulation_is_deterministic((b, k, c, stack) in arb_case()) {
        let Some(r1) = simulate(128, b, k, c, &stack) else { return Ok(()); };
        let r2 = simulate(128, b, k, c, &stack).expect("same inputs simulate");
        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn more_gb_bandwidth_never_hurts((b, k, c, stack) in arb_case()) {
        let Some(lo) = simulate(128, b, k, c, &stack) else { return Ok(()); };
        let Some(hi) = simulate(1024, b, k, c, &stack) else { return Ok(()); };
        prop_assert!(
            hi.total_cycles <= lo.total_cycles,
            "1024 b/cy must not be slower: {} vs {}",
            hi.total_cycles,
            lo.total_cycles
        );
    }

    #[test]
    fn sim_conservation_laws((b, k, c, stack) in arb_case()) {
        let Some(r) = simulate(128, b, k, c, &stack) else { return Ok(()); };
        // Decomposition holds and compute never outruns the wall clock.
        prop_assert_eq!(
            r.total_cycles,
            r.compute_cycles + r.stall_cycles + r.tail_cycles
        );
        prop_assert!(r.preload_cycles <= r.stall_cycles);
        // No port is busy longer than the whole execution.
        for p in &r.ports {
            prop_assert!(p.busy_cycles <= r.total_cycles as f64 + 1e-9);
        }
    }

    #[test]
    fn traced_run_matches_untraced((b, k, c, stack) in arb_case()) {
        let arch = presets::case_study_chip(128);
        let layer = Layer::matmul("p", b, k, c, Precision::int8_acc24());
        let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
        let Ok(mapping) = Mapping::with_greedy_alloc(
            &arch, &layer, spatial, LoopStack::from_pairs(&stack))
        else { return Ok(()); };
        let Ok(view) = MappedLayer::new(&layer, &arch, &mapping) else { return Ok(()); };
        let Ok(plain) = Simulator::new().simulate(&view) else { return Ok(()); };
        let (traced, trace) = Simulator::new().simulate_traced(&view).expect("same cap");
        prop_assert_eq!(&plain, &traced);
        // Every recorded transfer fits inside the execution and the trace
        // covers the same stall total.
        for e in &trace.events {
            prop_assert!(e.end <= traced.total_cycles as f64 + 1e-6);
            prop_assert!(e.start <= e.end);
        }
        let stall_sum: f64 = trace.stalls.iter().map(|(a, b)| b - a).sum();
        prop_assert!((stall_sum - traced.stall_cycles as f64).abs() < 1.0);
    }
}
