//! End-to-end integration: workload → im2col → mapper → latency model →
//! energy model → simulator, across preset architectures.

use ulm::prelude::*;

#[test]
fn conv_layer_full_pipeline() {
    // A real convolution, lowered like the validation chip does.
    let conv = Layer::conv2d(
        "c3x3",
        LayerShape::conv(1, 64, 32, 28, 28, 3, 3),
        Precision::int8_acc24(),
    );
    let mm = im2col(&conv).expect("conv lowers");
    assert_eq!(mm.total_macs(), conv.total_macs());

    let chip = presets::validation_chip();
    let spatial = SpatialUnroll::new(chip.spatial.clone());
    let result = Mapper::new(&chip.arch, &mm, spatial)
        .with_options(MapperOptions {
            max_exhaustive: 2_000,
            samples: 60,
            ..MapperOptions::default()
        })
        .search(Objective::Latency)
        .expect("mappable");

    let report = &result.best.latency;
    assert!(report.cc_total >= report.cc_ideal);
    assert!(report.utilization > 0.0 && report.utilization <= 1.0);

    // Energy is consistent and positive.
    let view = MappedLayer::new(&mm, &chip.arch, &result.best.mapping).unwrap();
    let energy = EnergyModel::new().evaluate(&view);
    assert!(energy.total_fj > 0.0);
    assert!(energy.memory_fj() > 0.0);

    // The simulator roughly confirms the model.
    let sim = Simulator::new().simulate(&view).expect("within cap");
    let err = (report.cc_total - sim.total_cycles as f64).abs() / sim.total_cycles as f64;
    assert!(
        err < 0.25,
        "model {} vs sim {}",
        report.cc_total,
        sim.total_cycles
    );
}

#[test]
fn dense_layer_on_case_study_chip() {
    let fc = Layer::dense("fc", 8, 1000, 1024, Precision::int8_acc24());
    let mm = im2col(&fc).unwrap();
    let arch = presets::case_study_chip(128);
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    let result = Mapper::new(&arch, &mm, spatial)
        .with_options(MapperOptions {
            max_exhaustive: 1_000,
            samples: 60,
            ..MapperOptions::default()
        })
        .search(Objective::Latency)
        .expect("mappable");
    // Padding: K=1000 needs ceil coverage over K16 -> 63 temporal K.
    let mapped_k =
        result.best.mapping.spatial().extent(Dim::K) * result.best.mapping.stack().extent(Dim::K);
    assert!(mapped_k >= 1000);
    assert!(result.best.latency.cc_total > 0.0);
}

#[test]
fn depthwise_layer_runs_natively() {
    // Depthwise cannot be im2col'ed; map it natively on a chip whose
    // inputs feed straight from a buffer (the 3x3 halo does not fit tiny
    // per-MAC registers). Chains of different depths per operand are a
    // paper-supported configuration.
    let dw = Layer::new(
        "dw",
        LayerType::DepthwiseConv2d,
        LayerShape::conv(1, 8, 1, 6, 6, 3, 3),
        Precision::int8_acc24(),
    );
    let mut b = MemoryHierarchy::builder();
    let w_reg = b.add_memory(
        Memory::new("W-Reg", MemoryKind::RegisterFile, 64 * 8)
            .with_ports(vec![Port::read(512), Port::write(64)]),
    );
    let i_lb = b.add_memory(
        Memory::new("I-LB", MemoryKind::Sram, 8 * 1024)
            .with_ports(vec![Port::read(128), Port::write(64)]),
    );
    let o_reg = b.add_memory(
        Memory::new("O-Reg", MemoryKind::RegisterFile, 16 * 24)
            .with_ports(vec![Port::read(256), Port::write(256)]),
    );
    let top = b.add_memory(
        Memory::new("TOP", MemoryKind::Sram, 1 << 22)
            .with_ports(vec![Port::read(128), Port::write(128)])
            .as_backing_store(),
    );
    b.set_chain(Operand::W, vec![w_reg, top]);
    b.set_chain(Operand::I, vec![i_lb, top]);
    b.set_chain(Operand::O, vec![o_reg, top]);
    let arch = Architecture::new("dw-chip", MacArray::new(2, 2, 1), b.build().unwrap());

    let spatial = SpatialUnroll::new(vec![(Dim::K, 2), (Dim::OX, 2)]);
    let result = Mapper::new(&arch, &dw, spatial)
        .with_options(MapperOptions {
            max_exhaustive: 5_000,
            samples: 100,
            ..MapperOptions::default()
        })
        .search(Objective::Latency)
        .expect("mappable");
    assert!(result.best.latency.cc_total > 0.0);
    // Depthwise inputs track K: iterating channels moves input data, so
    // the I tensor at the top level covers all 8 channels of 8x8 inputs.
    let view = MappedLayer::new(&dw, &arch, &result.best.mapping).unwrap();
    let top_lvl = arch.hierarchy().chain(Operand::I).len() - 1;
    assert_eq!(view.mem_data_words(Operand::I, top_lvl), 8 * 8 * 8);
}

#[test]
fn whole_network_sweep_is_stable() {
    // Every mobilenet layer either maps or reports a clean error.
    let chip = presets::validation_chip();
    let spatial = SpatialUnroll::new(chip.spatial.clone());
    let mut mapped = 0;
    for layer in networks::mobilenet_v1(64, 1) {
        let mm = match im2col(&layer) {
            Ok(mm) => mm,
            Err(_) => continue, // depthwise: not run on the GEMM chip
        };
        let r = Mapper::new(&chip.arch, &mm, spatial.clone())
            .with_options(MapperOptions {
                max_exhaustive: 500,
                samples: 30,
                ..MapperOptions::default()
            })
            .search(Objective::Latency);
        if let Ok(r) = r {
            assert!(r.best.latency.cc_total >= r.best.latency.cc_ideal);
            mapped += 1;
        }
    }
    assert!(
        mapped >= 10,
        "most conv/pointwise layers should map, got {mapped}"
    );
}

#[test]
fn native_convolution_on_output_tiled_array() {
    // No Im2Col: the conv-native preset unrolls K | OY | OX spatially, so
    // the input registers see sliding-window halos and the model's
    // partially-relevant loop handling runs end to end, cross-checked
    // against the simulator.
    let chip = presets::conv_native_chip();
    let layer = Layer::conv2d(
        "c3x3",
        LayerShape::conv(1, 32, 16, 16, 16, 3, 3),
        Precision::int8_acc24(),
    );
    let spatial = SpatialUnroll::new(chip.spatial.clone());
    let result = Mapper::new(&chip.arch, &layer, spatial)
        .with_options(MapperOptions {
            max_exhaustive: 2_000,
            samples: 80,
            ..MapperOptions::default()
        })
        .search(Objective::Latency)
        .expect("mappable");
    let report = &result.best.latency;
    assert!(report.utilization > 0.0);
    let view = MappedLayer::new(&layer, &chip.arch, &result.best.mapping).unwrap();
    // The I-Reg block must include the halo: at least (4+2)^2 = 36 pixels
    // per input channel held at the reg level.
    let i_words = view.mem_data_words(Operand::I, 0);
    assert!(i_words >= 36, "halo missing: {i_words} words");
    let sim = Simulator::new().simulate(&view).expect("within cap");
    let err = (report.cc_total - sim.total_cycles as f64).abs() / sim.total_cycles as f64;
    assert!(
        err < 0.35,
        "native conv model {} vs sim {} (err {err:.3})",
        report.cc_total,
        sim.total_cycles
    );
}

#[test]
fn dse_pipeline_produces_pareto_front() {
    let pool = MemoryPool {
        w_reg_words_per_mac: vec![1, 2],
        i_reg_words_per_mac: vec![1],
        o_reg_words_per_pe: vec![1],
        w_lb_kb: vec![4, 32],
        i_lb_kb: vec![4, 32],
    };
    let layer = Layer::matmul("l", 64, 64, 128, Precision::int8_out24());
    let designs = enumerate_designs(&pool, &[16], 128);
    assert_eq!(designs.len(), 8);
    let points = explore(&designs, &layer, &ExploreOptions::default());
    assert!(!points.is_empty());
    let front = pareto_front(&points);
    assert!(!front.is_empty());
    assert!(front.len() <= points.len());
}

#[test]
fn stall_integration_policies_order_correctly() {
    // Sequential integration can never stall less than concurrent.
    let layer = Layer::matmul("l", 64, 96, 640, Precision::int8_out24());
    let concurrent = presets::case_study_chip(128);
    let sequential =
        presets::case_study_chip(128).with_stall_integration(StallIntegration::Sequential);
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    let stack = LoopStack::from_pairs(&[(Dim::C, 320), (Dim::B, 8), (Dim::K, 6)]);
    let m1 =
        Mapping::with_greedy_alloc(&concurrent, &layer, spatial.clone(), stack.clone()).unwrap();
    let m2 = Mapping::with_greedy_alloc(&sequential, &layer, spatial, stack).unwrap();
    let v1 = MappedLayer::new(&layer, &concurrent, &m1).unwrap();
    let v2 = MappedLayer::new(&layer, &sequential, &m2).unwrap();
    let r1 = LatencyModel::new().evaluate(&v1);
    let r2 = LatencyModel::new().evaluate(&v2);
    assert!(r2.ss_overall >= r1.ss_overall);
}
