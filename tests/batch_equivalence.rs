//! The batched SoA kernel is a drop-in replacement for the scalar
//! search: at every lane count — including widths that do not divide the
//! space and the degenerate single lane — the full [`SearchResult`] is
//! bit-identical to the scalar (`batch_lanes = 1`) path: same best
//! mapping, same score bits, same generated/evaluated/pruned/prefix
//! counters. Random matmul and conv workloads, roofline pruning on and
//! off.

use proptest::prelude::*;
use ulm::prelude::*;

const LANE_COUNTS: [usize; 4] = [7, 8, 9, 64];

fn check_layer(layer: &Layer, bw_aware: bool) -> Result<(), TestCaseError> {
    let chip = ulm::arch::presets::toy_chip();
    let spatial = SpatialUnroll::new(chip.spatial.clone());
    let opts = MapperOptions {
        max_exhaustive: 5_000,
        samples: 32,
        bw_aware,
        ..MapperOptions::default()
    };
    let search = |lanes: usize| -> Option<SearchResult> {
        Mapper::new(&chip.arch, layer, spatial.clone())
            .with_options(opts)
            .with_batch_lanes(Some(lanes))
            .search(Objective::Latency)
            .ok()
    };
    let scalar = search(1);
    for lanes in LANE_COUNTS {
        let batched = search(lanes);
        match (&scalar, batched) {
            (None, None) => {}
            (Some(want), Some(got)) => {
                prop_assert_eq!(
                    &want.best.mapping,
                    &got.best.mapping,
                    "lanes {}: best mapping diverged",
                    lanes
                );
                prop_assert_eq!(
                    want.best.latency.cc_total.to_bits(),
                    got.best.latency.cc_total.to_bits(),
                    "lanes {}: cc_total bits diverged",
                    lanes
                );
                prop_assert_eq!(
                    want.best.score(Objective::Latency).to_bits(),
                    got.best.score(Objective::Latency).to_bits(),
                    "lanes {}: score bits diverged",
                    lanes
                );
                // The counters replay the scalar sequence exactly: the
                // same orderings are generated, pruned against the same
                // incumbent trajectory, and share the same prefixes.
                prop_assert_eq!(want.stats.generated, got.stats.generated);
                prop_assert_eq!(
                    want.stats.evaluated,
                    got.stats.evaluated,
                    "lanes {}: evaluated count diverged",
                    lanes
                );
                prop_assert_eq!(
                    want.stats.pruned,
                    got.stats.pruned,
                    "lanes {}: pruned count diverged",
                    lanes
                );
                prop_assert_eq!(want.stats.cache_hits, got.stats.cache_hits);
                prop_assert_eq!(want.space_size, got.space_size);
                prop_assert_eq!(want.exhaustive, got.exhaustive);
                prop_assert_eq!(got.stats.batch_lanes, lanes);
            }
            (want, got) => {
                return Err(TestCaseError::fail(format!(
                    "lanes {lanes}: scalar {} a result but batched {}",
                    if want.is_some() {
                        "found"
                    } else {
                        "did not find"
                    },
                    if got.is_some() { "did" } else { "did not" },
                )));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Matmul workloads: every lane width replays the scalar search bit
    /// for bit, with and without the roofline prune.
    #[test]
    fn batched_matmul_search_is_bit_identical(
        b in 1u64..=24,
        k in 1u64..=24,
        c in 1u64..=32,
        bw_aware in any::<bool>(),
    ) {
        let layer = Layer::matmul(
            format!("bm({b},{k},{c})"),
            b, k, c,
            Precision::int8_acc24(),
        );
        check_layer(&layer, bw_aware)?;
    }

    /// Conv workloads exercise the non-multiplicative input-halo word
    /// accounting (the `prefix_ext` fallback in the kernel).
    #[test]
    fn batched_conv_search_is_bit_identical(
        k in 1u64..=8,
        c in 1u64..=8,
        oy in 2u64..=6,
        f in 1u64..=3,
        bw_aware in any::<bool>(),
    ) {
        let shape = LayerShape::conv(1, k, c, oy, oy, f, f);
        let layer = Layer::conv2d(
            format!("bc({k},{c},{oy},{f})"),
            shape,
            Precision::int8_acc24(),
        );
        check_layer(&layer, bw_aware)?;
    }
}

/// One deterministic anchor on the Fig. 8 case-study geometry, so the
/// equivalence gate in CI exercises the exact workload the performance
/// claims are made on (scaled down to keep the test quick).
#[test]
fn fig8_style_case_is_bit_identical_at_every_lane_count() {
    let arch = ulm::arch::presets::case_study_chip(128);
    let layer = Layer::matmul("fig8-small", 16, 24, 160, Precision::int8_out24());
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    let opts = MapperOptions {
        max_exhaustive: 200_000,
        ..MapperOptions::default()
    };
    let search = |lanes: usize| {
        Mapper::new(&arch, &layer, spatial.clone())
            .with_options(opts)
            .with_batch_lanes(Some(lanes))
            .search(Objective::Latency)
            .expect("search succeeds")
    };
    let scalar = search(1);
    for lanes in LANE_COUNTS {
        let got = search(lanes);
        assert_eq!(scalar.best.mapping, got.best.mapping, "lanes {lanes}");
        assert_eq!(
            scalar.best.latency.cc_total.to_bits(),
            got.best.latency.cc_total.to_bits(),
            "lanes {lanes}"
        );
        assert_eq!(scalar.stats.evaluated, got.stats.evaluated, "lanes {lanes}");
        assert_eq!(scalar.stats.pruned, got.stats.pruned, "lanes {lanes}");
    }
}
