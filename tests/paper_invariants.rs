//! Invariants stated by the paper, checked against the implementation:
//! the Fig. 1(b) scenario algebra, Table I's `ReqBW` rules, the Fig. 3
//! stall/slack sign cases, and the monotonicities the case studies rely
//! on (bandwidth up → latency down; stall-ignoring model ≤ full model).

use ulm::prelude::*;
use ulm_model::DtlKind;

fn toy_view_report(stack: &[(Dim, u64)]) -> LatencyReport {
    let chip = presets::toy_chip();
    let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
    let mapping = Mapping::with_greedy_alloc(
        &chip.arch,
        &layer,
        SpatialUnroll::new(chip.spatial.clone()),
        LoopStack::from_pairs(stack),
    )
    .unwrap();
    let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
    LatencyModel::new().evaluate(&view)
}

#[test]
fn fig1b_scenario_algebra() {
    let r = toy_view_report(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
    // CC = CC_spatial + SS_overall (+ phases); U = CC_ideal / CC.
    assert!((r.cc_compute() - (r.cc_spatial as f64 + r.ss_overall)).abs() < 1e-9);
    assert!((r.utilization - r.cc_ideal / r.cc_total).abs() < 1e-12);
    // Spatial stall = CC_spatial − CC_ideal >= 0.
    assert!(r.spatial_stall >= 0.0);
    // Scenario 3: spatially fully mapped, temporally stalled.
    assert_eq!(r.scenario, Scenario::TemporalOnly);
}

#[test]
fn fig1b_spatial_under_mapping_detected() {
    // Unroll only K2 on the 4-MAC toy array: 50% spatial mapping.
    let chip = presets::toy_chip();
    let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
    let spatial = SpatialUnroll::new(vec![(Dim::K, 2)]);
    let stack = LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 4), (Dim::K, 2)]);
    let mapping = Mapping::with_greedy_alloc(&chip.arch, &layer, spatial, stack).unwrap();
    let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
    let r = LatencyModel::new().evaluate(&view);
    assert!((r.spatial_utilization - 0.5).abs() < 1e-12);
    assert!(r.spatial_stall > 0.0);
    assert!(matches!(r.scenario, Scenario::SpatialOnly | Scenario::Both));
}

/// Table I: a double-buffered memory keeps `ReqBW = BW0` even under an
/// irrelevant top loop, while a non-DB memory's `ReqBW` scales by the
/// consecutive irrelevant-loop run; the mapper sees half the capacity.
#[test]
fn table1_reqbw_rules() {
    // Build two otherwise-identical 2-level designs, W-Reg DB vs non-DB.
    let build = |db: bool| {
        let mut b = MemoryHierarchy::builder();
        let mut w_reg = Memory::new("W-Reg", MemoryKind::RegisterFile, 8 * 64)
            .with_ports(vec![Port::read(512), Port::write(16)]);
        if db {
            w_reg = w_reg.double_buffered();
        }
        let w_reg = b.add_memory(w_reg);
        let top = b.add_memory(
            Memory::new("TOP", MemoryKind::Sram, 1 << 22)
                .with_ports(vec![Port::read(64), Port::write(64)])
                .as_backing_store(),
        );
        b.set_chain(Operand::W, vec![w_reg, top]);
        b.set_chain(Operand::I, vec![top]);
        b.set_chain(Operand::O, vec![top]);
        Architecture::new(
            if db { "db" } else { "sb" },
            MacArray::square(2),
            b.build().unwrap(),
        )
    };
    let layer = Layer::matmul("mm", 8, 8, 16, Precision::uniform(8));
    let spatial = SpatialUnroll::new(vec![(Dim::K, 2), (Dim::B, 2)]);
    // B4 (ir to W) on top of the W-Reg level, C16 inner (r).
    let stack = LoopStack::from_pairs(&[(Dim::C, 4), (Dim::B, 4), (Dim::C, 4), (Dim::K, 4)]);

    let arch_db = build(true);
    let arch_sb = build(false);
    // The same explicit allocation for both: W-Reg holds [C4, B4].
    let allocs = PerOperand::new(
        OperandAlloc::new(vec![2, 4]),
        OperandAlloc::new(vec![4]),
        OperandAlloc::new(vec![4]),
    );
    let mapping = Mapping::new(spatial, stack, allocs);

    let view_db = MappedLayer::new(&layer, &arch_db, &mapping).unwrap();
    let view_sb = MappedLayer::new(&layer, &arch_sb, &mapping).unwrap();
    let r_db = LatencyModel::new().evaluate(&view_db);
    let r_sb = LatencyModel::new().evaluate(&view_sb);

    let refill = |r: &LatencyReport| {
        r.dtls
            .iter()
            .find(|d| d.operand == Operand::W && d.kind == DtlKind::RefillDown && d.period == 16)
            .expect("W-Reg refill present")
            .clone()
    };
    let d_db = refill(&r_db);
    let d_sb = refill(&r_sb);
    // BW0 = Mem_DATA / Mem_CC = (2*4 words x 8b) / 16 = 4 bits/cycle.
    assert!((d_db.req_bw - 4.0).abs() < 1e-9, "{}", d_db.req_bw);
    // Non-DB with top-ir run B4: ReqBW = BW0 x 4.
    assert!((d_sb.req_bw - 16.0).abs() < 1e-9, "{}", d_sb.req_bw);
    // With a 16 b/cy link the DB variant has slack, the non-DB stalls at
    // exactly (X_REAL − X_REQ) x Z = (4 − 4) ... check sign ordering:
    assert!(d_sb.ss_u >= d_db.ss_u);
}

#[test]
fn table1_mapper_seen_capacity_halved() {
    let db = Memory::new("m", MemoryKind::Sram, 4096).double_buffered();
    assert_eq!(db.capacity_bits(), 4096);
    assert_eq!(db.mapper_capacity_bits(), 2048);
}

/// Fig. 3: `SS_u` is zero when `X_REAL = X_REQ`, negative (slack) when the
/// link is faster than required, positive (stall) when slower.
#[test]
fn fig3_ssu_sign_cases() {
    let chip = presets::toy_chip();
    let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
    let mapping = Mapping::with_greedy_alloc(
        &chip.arch,
        &layer,
        SpatialUnroll::new(chip.spatial.clone()),
        LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]),
    )
    .unwrap();
    let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
    let r = LatencyModel::new().evaluate(&view);
    // W refill: X_REAL (2) > X_REQ (1) -> positive stall.
    let w = r
        .dtls
        .iter()
        .find(|d| d.operand == Operand::W && d.kind == DtlKind::RefillDown)
        .unwrap();
    assert!(w.ss_u > 0.0);
    // Compute feeds have generous ports -> slack (negative).
    let feed = r
        .dtls
        .iter()
        .find(|d| d.kind == DtlKind::ComputeFeed)
        .unwrap();
    assert!(feed.ss_u <= 0.0);
}

#[test]
fn double_buffered_weights_swap_without_keep_out() {
    // The TPU-like preset double-buffers its weight registers: even with
    // an irrelevant (B) loop on top of the tile, the refill window spans
    // the whole period (Table I's DB column) and tile swaps overlap
    // compute. C = 2 tiles forces an actual swap.
    let chip = presets::tpu_like_chip(64);
    let layer = Layer::matmul("t", 1024, 64, 128, Precision::int8_acc24());
    let spatial = SpatialUnroll::new(chip.spatial.clone());
    let stack = LoopStack::from_pairs(&[(Dim::B, 1024), (Dim::C, 2)]);
    let mapping = Mapping::with_greedy_alloc(&chip.arch, &layer, spatial, stack).unwrap();
    let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
    let r = LatencyModel::new().evaluate(&view);
    let w = r
        .dtls
        .iter()
        .find(|d| {
            d.operand == Operand::W && d.kind == DtlKind::RefillDown && d.label.contains("W-Reg")
        })
        .expect("weight refill exists");
    // DB: ReqBW = BW0 (no top-ir multiplier), so X_REQ = Mem_CC: with a
    // 1024-cycle period the 4096-word tile streams at 32 b/cy << 512.
    assert!(
        (w.req_bw - (4096.0 * 8.0 / 1024.0)).abs() < 1e-6,
        "{}",
        w.req_bw
    );
    assert!(w.ss_u <= 0.0, "DB tile swap must not stall: {}", w.ss_u);
    // And the simulator agrees end to end.
    let sim = Simulator::new().simulate(&view).unwrap();
    let err = (r.cc_total - sim.total_cycles as f64).abs() / sim.total_cycles as f64;
    assert!(
        err < 0.1,
        "model {} vs sim {}",
        r.cc_total,
        sim.total_cycles
    );
}

#[test]
fn bandwidth_monotonicity() {
    // Raising GB bandwidth can only reduce (or keep) the latency of a
    // fixed mapping — the crux of Case 3.
    let layer = Layer::matmul("l", 64, 96, 640, Precision::int8_out24());
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    let stack = LoopStack::from_pairs(&[(Dim::C, 320), (Dim::B, 8), (Dim::K, 6)]);
    let mut prev = f64::INFINITY;
    for bw in [64u64, 128, 256, 512, 1024] {
        let arch = presets::case_study_chip(bw);
        let mapping =
            Mapping::with_greedy_alloc(&arch, &layer, spatial.clone(), stack.clone()).unwrap();
        let view = MappedLayer::new(&layer, &arch, &mapping).unwrap();
        let r = LatencyModel::new().evaluate(&view);
        assert!(
            r.cc_total <= prev + 1e-9,
            "latency must not increase with bandwidth (bw={bw})"
        );
        prev = r.cc_total;
    }
}

#[test]
fn bw_unaware_model_is_a_lower_bound() {
    // Case 2's cyan dotted line: ignoring temporal stalls always predicts
    // at most the BW-aware latency.
    let layer = Layer::matmul("l", 128, 128, 8, Precision::int8_out24());
    let arch = presets::case_study_chip(128);
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    let mapper = Mapper::new(&arch, &layer, spatial.clone());
    let aware = mapper.search(Objective::Latency).unwrap();
    let view = MappedLayer::new(&layer, &arch, &aware.best.mapping).unwrap();
    let unaware = LatencyModel::bw_unaware().evaluate(&view);
    assert!(unaware.cc_total <= aware.best.latency.cc_total);
    // And for this output-dominant layer the gap is large (paper: 7.4x).
    assert!(
        aware.best.latency.cc_total / unaware.cc_total > 2.0,
        "expected a large stall-induced gap, got {} vs {}",
        aware.best.latency.cc_total,
        unaware.cc_total
    );
}

#[test]
fn psum_free_mapping_beats_psum_heavy_mapping() {
    // Case 1's core claim: with identical CC_ideal, the fully
    // output-stationary mapping (all C at the O level) beats one that
    // splits C across the GB.
    let layer = Layer::matmul("l", 64, 96, 640, Precision::int8_out24());
    let arch = presets::case_study_chip(128);
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    let os = LoopStack::from_pairs(&[(Dim::C, 320), (Dim::B, 8), (Dim::K, 6)]);
    let split = LoopStack::from_pairs(&[(Dim::C, 20), (Dim::B, 8), (Dim::K, 6), (Dim::C, 16)]);
    let m_os = Mapping::with_greedy_alloc(&arch, &layer, spatial.clone(), os).unwrap();
    let m_sp = Mapping::with_greedy_alloc(&arch, &layer, spatial, split).unwrap();
    let v_os = MappedLayer::new(&layer, &arch, &m_os).unwrap();
    let v_sp = MappedLayer::new(&layer, &arch, &m_sp).unwrap();
    let r_os = LatencyModel::new().evaluate(&v_os);
    let r_sp = LatencyModel::new().evaluate(&v_sp);
    // Identical ideal latency…
    assert_eq!(v_os.cc_spatial(), v_sp.cc_spatial());
    // …but the split-C mapping stalls more.
    assert!(
        r_sp.ss_overall > r_os.ss_overall,
        "split-C {} vs output-stationary {}",
        r_sp.ss_overall,
        r_os.ss_overall
    );
}
