//! Property tests spanning the whole stack: on randomized AHM points the
//! analytical model must stay structurally sound and within a bounded
//! factor of the discrete-event simulator.

use proptest::prelude::*;
use ulm::prelude::*;

/// A random small matmul layer, spatial unrolling and loop ordering on the
/// toy chip, built so most draws are legal.
fn arb_point() -> impl Strategy<Value = (Layer, Vec<(Dim, u64)>)> {
    // Dims as exponents of 2 to keep factorization mild.
    (1u32..4, 1u32..4, 1u32..5, any::<u64>()).prop_map(|(b, k, c, seed)| {
        let layer = Layer::matmul("p", 1 << b, 1 << k, 1 << c, Precision::int8_acc24());
        // Random ordering of the temporal factors (after K2|B2 spatial).
        let mut factors = Vec::new();
        for _ in 0..b.saturating_sub(1) {
            factors.push((Dim::B, 2u64));
        }
        for _ in 0..k.saturating_sub(1) {
            factors.push((Dim::K, 2));
        }
        for _ in 0..c {
            factors.push((Dim::C, 2));
        }
        // Deterministic shuffle from the seed.
        let mut s = seed;
        for i in (1..factors.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            factors.swap(i, j);
        }
        (layer, factors)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn model_structure_holds((layer, stack) in arb_point()) {
        let chip = presets::toy_chip();
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let Ok(mapping) = Mapping::with_greedy_alloc(
            &chip.arch, &layer, spatial, LoopStack::from_pairs(&stack))
        else { return Ok(()); };
        let Ok(view) = MappedLayer::new(&layer, &chip.arch, &mapping) else {
            return Ok(());
        };
        let r = LatencyModel::new().evaluate(&view);
        // Composition and bounds.
        prop_assert!(r.ss_overall >= 0.0);
        prop_assert!(r.cc_total >= r.cc_spatial as f64);
        prop_assert!(r.cc_spatial as f64 >= r.cc_ideal - 1e-9);
        prop_assert!(r.utilization > 0.0 && r.utilization <= 1.0 + 1e-12);
        prop_assert!(
            (r.cc_total
                - (r.preload as f64 + r.cc_spatial as f64 + r.ss_overall + r.offload as f64))
                .abs() < 1e-6
        );
        // The BW-unaware baseline never exceeds the full model.
        let base = LatencyModel::bw_unaware().evaluate(&view);
        prop_assert!(base.cc_total <= r.cc_total + 1e-9);
    }

    #[test]
    fn model_tracks_simulator((layer, stack) in arb_point()) {
        let chip = presets::toy_chip();
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let Ok(mapping) = Mapping::with_greedy_alloc(
            &chip.arch, &layer, spatial, LoopStack::from_pairs(&stack))
        else { return Ok(()); };
        let Ok(view) = MappedLayer::new(&layer, &chip.arch, &mapping) else {
            return Ok(());
        };
        let r = LatencyModel::new().evaluate(&view);
        let sim = Simulator::new().simulate(&view).expect("small schedules");
        let m = r.cc_total;
        let s = sim.total_cycles as f64;
        // Within a factor of 2 in both directions on arbitrary (including
        // adversarially bad) mappings; the validation experiment measures
        // the much tighter agreement on optimized mappings.
        prop_assert!(m < 2.0 * s + 16.0, "model {m} far above sim {s}");
        prop_assert!(s < 2.5 * m + 16.0, "sim {s} far above model {m}");
    }

    #[test]
    fn energy_is_mapping_invariant_at_mac_level((layer, stack) in arb_point()) {
        let chip = presets::toy_chip();
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let Ok(mapping) = Mapping::with_greedy_alloc(
            &chip.arch, &layer, spatial, LoopStack::from_pairs(&stack))
        else { return Ok(()); };
        let Ok(view) = MappedLayer::new(&layer, &chip.arch, &mapping) else {
            return Ok(());
        };
        let e = EnergyModel::new().evaluate(&view);
        // MAC energy depends only on the layer.
        prop_assert!((e.mac_fj - 50.0 * layer.total_macs() as f64).abs() < 1e-6);
        // Total traffic at the top memory is at least one pass of each
        // tensor (compulsory traffic).
        let lb = e.memories.iter().find(|m| m.memory == "LB").unwrap();
        let w_bits = layer.tensor_bits(Operand::W);
        let i_bits = layer.tensor_bits(Operand::I);
        prop_assert!(lb.read_bits >= w_bits + i_bits);
    }
}
