//! Property tests for the mapper: every enumerated mapping is legal,
//! search never returns something worse than the seeds, and factorization
//! invariants hold.

use proptest::prelude::*;
use ulm::mapper::enumerate::{for_each_ordering, sample_orderings, seeded_orderings};
use ulm::mapper::factorize::{factorize, ordering_count, temporal_factors};
use ulm::prelude::*;

proptest! {
    #[test]
    fn factorization_reconstructs_n(n in 1u64..100_000) {
        let f = factorize(n);
        prop_assert_eq!(f.iter().product::<u64>().max(1), n);
        // All factors prime.
        for &p in &f {
            prop_assert!(p >= 2);
            prop_assert!((2..p).take_while(|d| d * d <= p).all(|d| p % d != 0));
        }
        // Sorted ascending.
        prop_assert!(f.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn temporal_factors_cover_ceil(b in 1u64..64, k in 1u64..64, c in 1u64..64) {
        let dims = DimSizes::new(b, k, c, 1, 1, 1, 1);
        let spatial = SpatialUnroll::new(vec![(Dim::K, 4), (Dim::B, 2)]);
        let f = temporal_factors(&dims, &spatial);
        for (dim, bound) in dims.iter() {
            let prod: u64 = f.iter().filter(|(d, _)| *d == dim).map(|(_, p)| p).product();
            let needed = bound.div_ceil(spatial.extent(dim));
            prop_assert_eq!(prod, needed, "dim {}", dim);
        }
    }

    #[test]
    fn every_enumerated_mapping_is_legal(seed in any::<u64>()) {
        let chip = ulm::arch::presets::toy_chip();
        // Layer dims derived from the seed, kept small.
        let b = 1 << (seed % 3 + 1);
        let k = 1 << (seed / 3 % 3 + 1);
        let c = 1 << (seed / 9 % 4 + 1);
        let layer = Layer::matmul("p", b, k, c, Precision::int8_acc24());
        let mapper = Mapper::new(&chip.arch, &layer, SpatialUnroll::new(chip.spatial.clone()));
        if let Ok(all) = mapper.enumerate_all() {
            for em in &all {
                // Re-validating must succeed: enumerate_all only returns
                // mappings that passed MappedLayer::new.
                prop_assert!(MappedLayer::new(&layer, &chip.arch, &em.mapping).is_ok());
                prop_assert!(em.latency.cc_total > 0.0);
            }
        }
    }

    #[test]
    fn search_beats_or_matches_every_seed(kexp in 1u32..4, cexp in 2u32..6) {
        let chip = ulm::arch::presets::toy_chip();
        let layer = Layer::matmul("p", 4, 1u64 << kexp, 1u64 << cexp, Precision::int8_acc24());
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let mapper = Mapper::new(&chip.arch, &layer, spatial.clone());
        let Ok(best) = mapper.search(Objective::Latency) else { return Ok(()); };
        for seed_ordering in seeded_orderings(&mapper.factors()) {
            if let Some(em) = mapper.evaluate_ordering(&seed_ordering) {
                prop_assert!(
                    best.best.latency.cc_total <= em.latency.cc_total + 1e-9,
                    "search ({}) must not lose to a seed ({})",
                    best.best.latency.cc_total,
                    em.latency.cc_total
                );
            }
        }
    }
}

#[test]
fn ordering_enumeration_counts_are_exact() {
    // Cross-check the closed-form multiset count against actual
    // enumeration on a handful of multisets.
    let cases: Vec<Vec<(Dim, u64)>> = vec![
        vec![(Dim::B, 2), (Dim::B, 2), (Dim::K, 2)],
        vec![(Dim::B, 2), (Dim::K, 3), (Dim::C, 5), (Dim::C, 5)],
        vec![(Dim::C, 2); 6],
    ];
    for f in cases {
        let expected = ordering_count(&f) as u64;
        let mut n = 0u64;
        for_each_ordering(&f, |_| {
            n += 1;
            true
        });
        assert_eq!(n, expected, "{f:?}");
    }
}

#[test]
fn samples_are_valid_permutations() {
    let f = vec![(Dim::B, 2), (Dim::K, 3), (Dim::C, 5), (Dim::C, 2)];
    for s in sample_orderings(&f, 20, 7) {
        let mut a = s.clone();
        let mut b = f.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
