//! Property tests pinning [`SpecializedModel`] bit-identical to the
//! generic `evaluate_fast` path across workload dims and every
//! matmul-capable built-in preset (including the KV-cache and fusion-chip
//! paths), plus a calibration round-trip that recovers known constants
//! with zero training residuals.

use proptest::prelude::*;
use ulm::model::ObservedBusy;
use ulm::prelude::*;

/// The matmul-capable built-in presets. The fusion chip covers the
/// deeper LB-pinning hierarchy; the TPU-like chip covers systolic-style
/// port layouts.
fn preset(idx: usize) -> ulm::arch::presets::PresetChip {
    match idx {
        0 => presets::toy_chip(),
        1 => presets::validation_chip(),
        2 => presets::scaled_case_study_chip(16, 128),
        3 => presets::tpu_like_chip(16),
        _ => presets::fusion_chip(),
    }
}

/// One draw: a preset, a template layer, a handful of query points and
/// the model/layer flavor knobs.
type Case = (
    usize,
    (u64, u64, u64),
    Vec<(u64, u64, u64)>,
    bool,
    bool,
    bool,
);

fn arb_case() -> impl Strategy<Value = Case> {
    (
        0usize..5,
        (1u64..=96, 1u64..=96, 1u64..=384),
        proptest::collection::vec((1u64..=256, 1u64..=128, 1u64..=768), 1..4),
        any::<bool>(), // KV-cache-resident weights
        any::<bool>(), // accumulator-precision variant
        any::<bool>(), // bandwidth-unaware model
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `query` must match `query_oracle` — the generic from-scratch
    /// `Mapping::with_greedy_alloc` + `MappedLayer::new` +
    /// `evaluate_fast` path — bit for bit, on every feasible point, and
    /// agree with it on which points are infeasible.
    #[test]
    fn specialized_matches_evaluate_fast_bit_for_bit(
        (idx, (tb, tk, tc), queries, kv, acc, bw_unaware) in arb_case()
    ) {
        let chip = preset(idx);
        let precision = if acc {
            Precision::int8_acc24()
        } else {
            Precision::int8_out24()
        };
        let mut template = Layer::matmul("t", tb, tk, tc, precision);
        if kv {
            template = template.with_kv_cache(Operand::W);
        }
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let opts = MapperOptions {
            max_exhaustive: 100,
            samples: 10,
            ..MapperOptions::default()
        };
        let Ok(result) = Mapper::new(&chip.arch, &template, spatial)
            .with_options(opts)
            .search(Objective::Latency)
        else {
            return Ok(()); // template does not fit this preset at all
        };
        let shape = MappingShape::from_mapping(&result.best.mapping)
            .expect("search incumbents have well-formed shapes");
        let model = if bw_unaware {
            LatencyModel::bw_unaware()
        } else {
            LatencyModel::new()
        };
        let mut spec = SpecializedModel::prepare(model, &chip.arch, &template, shape)
            .expect("matmul templates specialize");
        for (b, k, c) in queries {
            match (spec.query(b, k, c), spec.query_oracle(b, k, c)) {
                (Ok(fast), Ok(oracle)) => {
                    prop_assert_eq!(fast.cc_total.to_bits(), oracle.cc_total.to_bits(),
                        "cc_total diverged at {}x{}x{} on preset {}", b, k, c, idx);
                    prop_assert_eq!(fast.cc_ideal.to_bits(), oracle.cc_ideal.to_bits());
                    prop_assert_eq!(fast.cc_spatial, oracle.cc_spatial);
                    prop_assert_eq!(fast.ss_overall.to_bits(), oracle.ss_overall.to_bits());
                    prop_assert_eq!(fast.preload, oracle.preload);
                    prop_assert_eq!(fast.offload, oracle.offload);
                    prop_assert_eq!(fast.utilization.to_bits(), oracle.utilization.to_bits());
                }
                (Err(_), Err(_)) => {} // both reject the point
                (fast, oracle) => prop_assert!(
                    false,
                    "feasibility diverged at {}x{}x{}: {:?} vs {:?}",
                    b, k, c, fast, oracle
                ),
            }
        }
    }
}

/// Per-port busy cycles that a hypothetical machine with `bw(port)`
/// effective bandwidth would report for this mapped layer: exactly
/// `traffic / bw`, the calibrator's own linear model.
fn synthetic_busy(
    arch: &Architecture,
    view: &MappedLayer<'_>,
    model: &LatencyModel,
    bw: impl Fn(&str, usize) -> u64,
) -> Vec<ObservedBusy> {
    let h = arch.hierarchy();
    let lowered = LoweredLayer::build(view, model.dtl_options());
    let mut traffic: std::collections::BTreeMap<(usize, usize), f64> = Default::default();
    for d in lowered.dtls() {
        let weight = d.data_bits as f64 * d.z_stall as f64;
        for e in &d.endpoints {
            *traffic.entry((e.mem.0, e.port)).or_insert(0.0) += weight;
        }
    }
    traffic
        .into_iter()
        .filter(|&(_, t)| t > 0.0)
        .map(|((mem, port), t)| {
            let name = h.mem(MemoryId(mem)).name().to_string();
            let busy = t / bw(&name, port) as f64;
            ObservedBusy {
                mem: name,
                port,
                busy_cycles: busy,
            }
        })
        .collect()
}

/// Fitting against traces synthesized from known effective bandwidths
/// must recover those bandwidths exactly, leave zero residuals on the
/// training set, and flow into both evaluation paths: the applied
/// architecture drives the generic model and the surrogate to the same
/// bit-identical answers.
#[test]
fn calibration_roundtrip_recovers_known_constants() {
    let chip = presets::scaled_case_study_chip(16, 128);
    let arch = &chip.arch;
    let model = LatencyModel::new();
    // Ground truth: every port runs at half its nominal bandwidth.
    let half = |name: &str, port: usize| -> u64 {
        let h = arch.hierarchy();
        let id = h.find(name).expect("port names come from the hierarchy");
        (h.mem(id).ports()[port].bw_bits / 2).max(1)
    };

    let opts = MapperOptions {
        max_exhaustive: 200,
        samples: 20,
        ..MapperOptions::default()
    };
    let training = [(32u64, 48u64, 160u64), (64, 96, 640), (48, 64, 320)];
    let mut cal = Calibrator::new(arch, LatencyModel::new());
    let mut mappings = Vec::new();
    for &(b, k, c) in &training {
        let layer = Layer::matmul(format!("({b},{k},{c})"), b, k, c, Precision::int8_out24());
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let mapping = Mapper::new(arch, &layer, spatial)
            .with_options(opts)
            .search(Objective::Latency)
            .expect("training layers fit the case-study chip")
            .best
            .mapping;
        mappings.push((layer, mapping));
    }
    for (layer, mapping) in &mappings {
        let view = MappedLayer::new(layer, arch, mapping).unwrap();
        let observed = synthetic_busy(arch, &view, &model, half);
        cal.add_trace(&view, &observed).unwrap();
    }
    let fit = cal.fit().unwrap();

    // Round trip: the fit recovers the ground-truth constants exactly …
    assert!(!fit.calibration.ports.is_empty());
    for p in &fit.calibration.ports {
        assert_eq!(
            p.bw_bits,
            half(&p.mem, p.port),
            "port {}[{}] missed the known bandwidth",
            p.mem,
            p.port
        );
    }
    // … with zero residuals on the training set.
    for r in &fit.residuals {
        assert!(
            r.error_pct.abs() < 1e-9,
            "layer {} left a residual of {}%",
            r.layer,
            r.error_pct
        );
    }
    // The fit is a fixed point: identical constants, identical stable id.
    let mut again = Calibrator::new(arch, LatencyModel::new());
    for (layer, mapping) in &mappings {
        let view = MappedLayer::new(layer, arch, mapping).unwrap();
        let observed = synthetic_busy(arch, &view, &model, half);
        again.add_trace(&view, &observed).unwrap();
    }
    assert_eq!(again.fit().unwrap().calibration, fit.calibration);

    // The calibrated constants feed both paths: the applied architecture
    // carries the fitted bandwidths, and generic vs specialized
    // evaluation stay bit-identical on it.
    let (applied, delta) = fit.calibration.apply(arch).unwrap();
    assert!(!delta.is_empty());
    for p in &fit.calibration.ports {
        let id = applied.hierarchy().find(&p.mem).unwrap();
        assert_eq!(
            applied.hierarchy().mem(id).ports()[p.port].bw_bits,
            p.bw_bits
        );
    }
    let (layer, mapping) = &mappings[1];
    let shape = MappingShape::from_mapping(mapping).unwrap();
    let mut spec = SpecializedModel::prepare(LatencyModel::new(), &applied, layer, shape).unwrap();
    let dims = layer.shape();
    let (b, k, c) = (dims.dim(Dim::B), dims.dim(Dim::K), dims.dim(Dim::C));
    let fast = spec.query(b, k, c).unwrap();
    let oracle = spec.query_oracle(b, k, c).unwrap();
    assert_eq!(fast.cc_total.to_bits(), oracle.cc_total.to_bits());
    // Halving every effective bandwidth can only slow the layer down
    // relative to the nominal machine.
    let view = MappedLayer::new(layer, arch, mapping).unwrap();
    let nominal = LatencyModel::new().evaluate_fast(&view, &mut ModelScratch::default());
    assert!(fast.cc_total >= nominal.cc_total);
}
