//! Cross-consumer consistency of the shared `LoweredLayer` IR.
//!
//! The latency model's DTLs, the energy model's access counts and the
//! simulator's scheduled transfer volumes are all views of the same
//! per-(operand, level) residency tables. These properties pin that
//! contract: on randomized mappings, every consumer must read *identical*
//! block data — `Mem_DATA × Z` in the DTLs, `words × bits × refills` in
//! the energy traffic, and the same products summed over the scheduled
//! transfers — from one shared lowering.

//! A fourth property closes the loop on incremental lowering:
//! [`LoweredLayer::rebuild_dirty`] over a random knob override must leave
//! an IR that all three consumers read bit-identically to a from-scratch
//! lowering of the modified design.

use proptest::prelude::*;
use std::collections::BTreeMap;
use ulm::model::{apply_overrides, DtlKind, DtlOptions};
use ulm::prelude::*;
use ulm::sim::{build_schedule_lowered, TransferKind};

/// A random small matmul layer and loop ordering on the toy chip, built
/// so most draws are legal (same scheme as `model_vs_sim_prop`).
fn arb_point() -> impl Strategy<Value = (Layer, Vec<(Dim, u64)>)> {
    (1u32..4, 1u32..4, 1u32..5, any::<u64>()).prop_map(|(b, k, c, seed)| {
        let layer = Layer::matmul("p", 1 << b, 1 << k, 1 << c, Precision::int8_acc24());
        let mut factors = Vec::new();
        for _ in 0..b.saturating_sub(1) {
            factors.push((Dim::B, 2u64));
        }
        for _ in 0..k.saturating_sub(1) {
            factors.push((Dim::K, 2));
        }
        for _ in 0..c {
            factors.push((Dim::C, 2));
        }
        let mut s = seed;
        for i in (1..factors.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            factors.swap(i, j);
        }
        (layer, factors)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every inter-memory DTL's `Mem_DATA`/`Mem_CC`/`Z` equals the shared
    /// residency table row it was lowered from.
    #[test]
    fn dtls_read_the_shared_tables((layer, stack) in arb_point()) {
        let chip = presets::toy_chip();
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let Ok(mapping) = Mapping::with_greedy_alloc(
            &chip.arch, &layer, spatial, LoopStack::from_pairs(&stack))
        else { return Ok(()); };
        let Ok(view) = MappedLayer::new(&layer, &chip.arch, &mapping) else {
            return Ok(());
        };
        let model = LatencyModel::new();
        let lowered = LoweredLayer::build(&view, model.dtl_options());
        for d in lowered.dtls() {
            let expected_bits = match d.kind {
                DtlKind::RefillDown => {
                    let row = lowered.level(d.operand, d.level);
                    prop_assert_eq!(d.period, row.period);
                    prop_assert_eq!(d.z, row.z);
                    row.words * layer.precision().bits(d.operand)
                }
                DtlKind::DrainUp => {
                    let row = lowered.level(d.operand, d.level);
                    prop_assert_eq!(d.period, row.period);
                    prop_assert_eq!(d.z, row.z);
                    row.words * layer.precision().output_bits(row.final_above)
                }
                DtlKind::PsumReadback => {
                    let row = lowered.level(d.operand, d.level);
                    prop_assert!(!row.final_above, "read-backs only below accumulation");
                    row.words * layer.precision().partial_sum_bits()
                }
                // Compute-facing links move the per-cycle feed, not blocks.
                DtlKind::ComputeFeed | DtlKind::ComputeWriteback => continue,
            };
            prop_assert_eq!(d.data_bits, expected_bits, "dtl {}", d.kind);
        }
        // The slow path over the shared lowering is the canonical result.
        let from_shared = model.evaluate_lowered(&view, &lowered);
        let standalone = model.evaluate(&view);
        prop_assert_eq!(from_shared.cc_total.to_bits(), standalone.cc_total.to_bits());
    }

    /// The simulator's scheduled transfers move exactly the table's
    /// distinct-content block counts and volumes.
    #[test]
    fn sim_schedule_matches_the_shared_tables((layer, stack) in arb_point()) {
        let chip = presets::toy_chip();
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let Ok(mapping) = Mapping::with_greedy_alloc(
            &chip.arch, &layer, spatial, LoopStack::from_pairs(&stack))
        else { return Ok(()); };
        let Ok(view) = MappedLayer::new(&layer, &chip.arch, &mapping) else {
            return Ok(());
        };
        let lowered = LoweredLayer::build(&view, DtlOptions::default());
        let schedule = build_schedule_lowered(&view, &lowered, u64::MAX)
            .expect("uncapped");
        prop_assert_eq!(schedule.total_cycles, lowered.cc_spatial());

        let h = chip.arch.hierarchy();
        for op in Operand::all() {
            let chain = h.chain(op);
            for level in 0..chain.len().saturating_sub(1) {
                let row = lowered.level(op, level);
                let count = |kind: TransferKind| {
                    schedule
                        .transfers
                        .iter()
                        .filter(|t| t.operand == op && t.level == level && t.kind == kind)
                        .count() as u64
                };
                let volume = |kind: TransferKind| {
                    schedule
                        .transfers
                        .iter()
                        .filter(|t| t.operand == op && t.level == level && t.kind == kind)
                        .map(|t| t.bits)
                        .sum::<u64>()
                };
                match op {
                    Operand::W | Operand::I => {
                        prop_assert_eq!(count(TransferKind::Refill), row.refills);
                        prop_assert_eq!(
                            volume(TransferKind::Refill),
                            row.words * layer.precision().bits(op) * row.refills
                        );
                    }
                    Operand::O => {
                        let out_bits = layer.precision().output_bits(row.final_above);
                        prop_assert_eq!(count(TransferKind::Drain), row.refills);
                        prop_assert_eq!(
                            volume(TransferKind::Drain),
                            row.words * out_bits * row.refills
                        );
                        let revisits = row.refills - row.distinct_above;
                        prop_assert_eq!(count(TransferKind::Readback), revisits);
                        prop_assert_eq!(
                            volume(TransferKind::Readback),
                            row.words * layer.precision().partial_sum_bits() * revisits
                        );
                    }
                }
            }
        }
    }

    /// The energy model's per-memory access counts are exactly the table
    /// products (block traffic) plus the compute-feed term.
    #[test]
    fn energy_counts_match_the_shared_tables((layer, stack) in arb_point()) {
        let chip = presets::toy_chip();
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let Ok(mapping) = Mapping::with_greedy_alloc(
            &chip.arch, &layer, spatial, LoopStack::from_pairs(&stack))
        else { return Ok(()); };
        let Ok(view) = MappedLayer::new(&layer, &chip.arch, &mapping) else {
            return Ok(());
        };
        let lowered = LoweredLayer::build(&view, DtlOptions::default());
        let report = EnergyModel::new().evaluate_lowered(&view, &lowered);

        // Reconstruct the expected per-memory (read, write) bits from the
        // IR rows alone, mirroring the documented traffic contract.
        let h = chip.arch.hierarchy();
        let mut expected: BTreeMap<usize, (u64, u64)> = BTreeMap::new();
        let mut add = |mid: MemoryId, rd: u64, wr: u64| {
            let e = expected.entry(mid.0).or_insert((0, 0));
            e.0 += rd;
            e.1 += wr;
        };
        for op in Operand::all() {
            let chain = h.chain(op);
            for level in 0..chain.len().saturating_sub(1) {
                let row = lowered.level(op, level);
                match op {
                    Operand::W | Operand::I => {
                        let bits = row.words * layer.precision().bits(op) * row.refills;
                        add(chain[level + 1], bits, 0);
                        add(chain[level], 0, bits);
                    }
                    Operand::O => {
                        let out_bits = layer.precision().output_bits(row.final_above);
                        let drain = row.words * out_bits * row.refills;
                        add(chain[level], drain, 0);
                        add(chain[level + 1], 0, drain);
                        let revisits = row.refills - row.distinct_above;
                        let rb = row.words * layer.precision().partial_sum_bits() * revisits;
                        add(chain[level + 1], rb, 0);
                        add(chain[level], 0, rb);
                    }
                }
            }
            let feed =
                lowered.words_per_cycle(op) * layer.precision().bits(op) * lowered.cc_spatial();
            match op {
                Operand::W | Operand::I => add(chain[0], feed, 0),
                Operand::O => add(chain[0], feed, feed),
            }
        }

        prop_assert_eq!(report.memories.len(), expected.len());
        for (m, (&mid, &(rd, wr))) in report.memories.iter().zip(expected.iter()) {
            prop_assert_eq!(m.memory.as_str(), h.mem(MemoryId(mid)).name());
            prop_assert_eq!(m.read_bits, rd, "{} reads", m.memory);
            prop_assert_eq!(m.write_bits, wr, "{} writes", m.memory);
        }
    }

    /// `rebuild_dirty` over a random knob override is bit-identical to a
    /// from-scratch lowering of the modified design — for the latency
    /// model, the energy model *and* the simulator's schedule.
    #[test]
    fn rebuild_dirty_matches_from_scratch_lowering(
        (layer, stack) in arb_point(),
        knob_seed in any::<u64>(),
    ) {
        let chip = presets::toy_chip();
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let Ok(mapping) = Mapping::with_greedy_alloc(
            &chip.arch, &layer, spatial, LoopStack::from_pairs(&stack))
        else { return Ok(()); };
        let Ok(base_view) = MappedLayer::new(&layer, &chip.arch, &mapping) else {
            return Ok(());
        };

        // Derive one override from the seed: memory × knob × value. Size
        // scales stay >= 1x so the incumbent mapping remains legal.
        let mems = ["W-Reg", "I-Reg", "O-Reg", "LB"];
        let knobs = ["size", "bw", "read_bw", "write_bw"];
        let values = ["2x", "4x", "0.5x", "3x"];
        let mem = mems[(knob_seed % mems.len() as u64) as usize];
        let knob = knobs[((knob_seed >> 8) % knobs.len() as u64) as usize];
        let value = if knob == "size" {
            values[((knob_seed >> 16) % 2) as usize]
        } else {
            values[((knob_seed >> 16) % values.len() as u64) as usize]
        };
        let set = format!("mem.{mem}.{knob}={value}");
        let (modified, delta) =
            apply_overrides(&chip.arch, &[set.as_str()]).expect("grammar-valid knob");
        let Ok(view) = MappedLayer::new(&layer, &modified, &mapping) else {
            return Ok(());
        };

        let model = LatencyModel::new();
        // Incremental: lower the base design, then patch only the stages
        // the delta invalidates.
        let mut incremental = LoweredLayer::build(&base_view, model.dtl_options());
        let stats = incremental.rebuild_dirty(&view, model.dtl_options(), delta);
        prop_assert_eq!(stats.stages_rebuilt + stats.stages_skipped, 4);
        // Cold: lower the modified design from scratch.
        let cold = LoweredLayer::build(&view, model.dtl_options());

        // Latency: every composed field agrees bit for bit.
        let inc = model.evaluate_lowered(&view, &incremental);
        let ref_ = model.evaluate_lowered(&view, &cold);
        prop_assert_eq!(inc.cc_total.to_bits(), ref_.cc_total.to_bits(), "{set}");
        prop_assert_eq!(inc.ss_overall.to_bits(), ref_.ss_overall.to_bits(), "{set}");
        prop_assert_eq!(inc.utilization.to_bits(), ref_.utilization.to_bits(), "{set}");

        // Energy: total and per-memory traffic agree bit for bit.
        let e_inc = EnergyModel::new().evaluate_lowered(&view, &incremental);
        let e_ref = EnergyModel::new().evaluate_lowered(&view, &cold);
        prop_assert_eq!(e_inc.total_fj.to_bits(), e_ref.total_fj.to_bits(), "{set}");
        prop_assert_eq!(e_inc.memories.len(), e_ref.memories.len());
        for (a, b) in e_inc.memories.iter().zip(e_ref.memories.iter()) {
            prop_assert_eq!(&a.memory, &b.memory);
            prop_assert_eq!(a.read_bits, b.read_bits, "{} reads after {set}", a.memory);
            prop_assert_eq!(a.write_bits, b.write_bits, "{} writes after {set}", a.memory);
        }

        // Sim: the schedules are structurally identical, transfer by
        // transfer (`Transfer` has no `PartialEq`, so compare fields).
        let s_inc = build_schedule_lowered(&view, &incremental, u64::MAX).expect("uncapped");
        let s_ref = build_schedule_lowered(&view, &cold, u64::MAX).expect("uncapped");
        prop_assert_eq!(s_inc.total_cycles, s_ref.total_cycles, "{set}");
        prop_assert_eq!(s_inc.transfers.len(), s_ref.transfers.len(), "{set}");
        for (a, b) in s_inc.transfers.iter().zip(s_ref.transfers.iter()) {
            prop_assert_eq!(a.operand, b.operand);
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(a.level, b.level);
            prop_assert_eq!(a.period, b.period);
            prop_assert_eq!(a.ready_cycle, b.ready_cycle, "transfer {} after {set}", a.id);
            prop_assert_eq!(a.need_cycle, b.need_cycle, "transfer {} after {set}", a.id);
            prop_assert_eq!(a.bits, b.bits);
            prop_assert_eq!(a.link_bw, b.link_bw, "transfer {} after {set}", a.id);
            prop_assert_eq!(&a.ports, &b.ports);
            prop_assert_eq!(&a.deps, &b.deps);
        }
    }

    /// A degenerate residency pin — at the backing store, the top of every
    /// chain — elides nothing, so the pinned lowering must be bit-identical
    /// to the unpinned oracle for all three consumers. Run on the fusion
    /// chip, whose three-level chains make the pin level meaningful.
    #[test]
    fn degenerate_pins_match_the_unpinned_oracle((layer, stack) in arb_point()) {
        let chip = presets::fusion_chip();
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let Ok(mapping) = Mapping::with_greedy_alloc(
            &chip.arch, &layer, spatial, LoopStack::from_pairs(&stack))
        else { return Ok(()); };
        let Ok(view) = MappedLayer::new(&layer, &chip.arch, &mapping) else {
            return Ok(());
        };
        let model = LatencyModel::new();
        let oracle = LoweredLayer::build(&view, model.dtl_options());
        // Pin every operand at the DRAM level (the top of each chain).
        let top = chip.arch.hierarchy().depth() - 1;
        let pinned = LoweredLayer::build_pinned(
            &view, model.dtl_options(), [Some(top); 3]);
        for op in Operand::all() {
            prop_assert_eq!(
                pinned.active_interfaces(op),
                oracle.active_interfaces(op)
            );
        }

        let l_pin = model.evaluate_lowered(&view, &pinned);
        let l_ref = model.evaluate_lowered(&view, &oracle);
        prop_assert_eq!(l_pin.cc_total.to_bits(), l_ref.cc_total.to_bits());
        prop_assert_eq!(l_pin.preload, l_ref.preload);

        let e_pin = EnergyModel::new().evaluate_lowered(&view, &pinned);
        let e_ref = EnergyModel::new().evaluate_lowered(&view, &oracle);
        prop_assert_eq!(e_pin.total_fj.to_bits(), e_ref.total_fj.to_bits());

        let s_pin = build_schedule_lowered(&view, &pinned, u64::MAX).expect("uncapped");
        let s_ref = build_schedule_lowered(&view, &oracle, u64::MAX).expect("uncapped");
        prop_assert_eq!(s_pin.total_cycles, s_ref.total_cycles);
        prop_assert_eq!(s_pin.transfers.len(), s_ref.transfers.len());
    }

    /// A real pin (at the shared LB, below the backing store) drops the
    /// pinned operand's top interface from every consumer consistently:
    /// the schedule carries no transfers at elided levels, the energy
    /// model charges no traffic across them, and neither latency, energy
    /// nor transfer count ever exceeds the unpinned oracle's.
    #[test]
    fn resident_pins_elide_the_top_interface_everywhere((layer, stack) in arb_point()) {
        let chip = presets::fusion_chip();
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let Ok(mapping) = Mapping::with_greedy_alloc(
            &chip.arch, &layer, spatial, LoopStack::from_pairs(&stack))
        else { return Ok(()); };
        let Ok(view) = MappedLayer::new(&layer, &chip.arch, &mapping) else {
            return Ok(());
        };
        let model = LatencyModel::new();
        let oracle = LoweredLayer::build(&view, model.dtl_options());
        // Pin O at the LB, as a fused producer would be lowered.
        let pinned = LoweredLayer::build_pinned(
            &view, model.dtl_options(), [None, None, Some(1)]);
        prop_assert_eq!(pinned.active_interfaces(Operand::O), 1);

        let s_pin = build_schedule_lowered(&view, &pinned, u64::MAX).expect("uncapped");
        prop_assert!(
            s_pin.transfers.iter().all(|t| t.operand != Operand::O || t.level < 1),
            "no O transfers above the pin"
        );

        // Residency tables stay full-length: the elided rows still exist,
        // so a later un-pinned rebuild has nothing to recompute.
        let h = chip.arch.hierarchy();
        for level in 0..h.chain(Operand::O).len() - 1 {
            let p = pinned.level(Operand::O, level);
            let o = oracle.level(Operand::O, level);
            prop_assert_eq!(p.words, o.words);
            prop_assert_eq!(p.refills, o.refills);
        }

        let l_pin = model.evaluate_lowered(&view, &pinned);
        let l_ref = model.evaluate_lowered(&view, &oracle);
        prop_assert!(l_pin.cc_total <= l_ref.cc_total);
        let e_pin = EnergyModel::new().evaluate_lowered(&view, &pinned);
        let e_ref = EnergyModel::new().evaluate_lowered(&view, &oracle);
        prop_assert!(e_pin.total_fj <= e_ref.total_fj);
        let s_ref = build_schedule_lowered(&view, &oracle, u64::MAX).expect("uncapped");
        prop_assert!(s_pin.transfers.len() <= s_ref.transfers.len());
    }
}

/// KV-cache resident operands (decode-step K/V caches) behave exactly
/// like pinned operands: the latency fast path, the energy model and the
/// simulator all skip the cache operand's top interface, and the slow
/// standalone evaluation agrees with the shared-IR evaluation bit for bit.
#[test]
fn attention_decode_layers_lower_consistently() {
    let chip = presets::toy_chip();
    let h = chip.arch.hierarchy();
    for layer in ulm::workload::networks::attention_decode() {
        let mapper = Mapper::new(&chip.arch, &layer, SpatialUnroll::new(chip.spatial.clone()))
            .with_options(MapperOptions {
                max_exhaustive: 200,
                samples: 20,
                ..MapperOptions::default()
            });
        let best = mapper.search(Objective::Latency).expect("mappable").best;
        let view = MappedLayer::new(&layer, &chip.arch, &best.mapping).unwrap();
        let model = LatencyModel::new();
        let lowered = LoweredLayer::build(&view, model.dtl_options());

        // Shared-IR and standalone evaluations agree bit for bit even
        // with KV-resident operands.
        let shared = model.evaluate_lowered(&view, &lowered);
        let standalone = model.evaluate(&view);
        assert_eq!(
            shared.cc_total.to_bits(),
            standalone.cc_total.to_bits(),
            "{}",
            layer.name()
        );

        // A KV-cache operand's top interface is inactive: the simulator
        // schedules no refills for it there.
        let schedule = build_schedule_lowered(&view, &lowered, u64::MAX).expect("uncapped");
        for op in Operand::all() {
            let active = lowered.active_interfaces(op);
            let chain_len = h.chain(op).len();
            if layer.is_kv_cache(op) {
                assert_eq!(active, chain_len.saturating_sub(2), "{}", layer.name());
            } else {
                assert_eq!(active, chain_len - 1, "{}", layer.name());
            }
            assert!(
                schedule
                    .transfers
                    .iter()
                    .all(|t| t.operand != op || t.level < active),
                "{}: no {op} transfers above the active interfaces",
                layer.name()
            );
        }
    }
}
