//! Whole-network evaluation: run the hand-tracking workload (the paper's
//! validation network) through Im2Col, optimize a mapping per layer on
//! the validation chip, and print a per-layer latency/utilization table
//! with a simulator cross-check.
//!
//! ```sh
//! cargo run --release --example handtracking_network
//! ```

use ulm::prelude::*;

fn main() -> Result<(), ulm::error::UlmError> {
    let chip = presets::validation_chip();
    println!("architecture: {}", chip.arch);
    let spatial = SpatialUnroll::new(chip.spatial.clone());
    println!("spatial unrolling: {spatial}\n");

    let layers = networks::handtracking_validation_layers();
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>7} {:>8}",
        "layer", "MAC ops", "model cc", "sim cc", "U[%]", "acc[%]"
    );

    let mut total_model = 0.0;
    let mut total_sim = 0u64;
    let mut acc_sum = 0.0;
    let mut n = 0usize;
    for layer in &layers {
        let mapper = Mapper::new(&chip.arch, layer, spatial.clone()).with_options(MapperOptions {
            max_exhaustive: 3_000,
            samples: 120,
            ..MapperOptions::default()
        });
        let result = match mapper.search(Objective::Latency) {
            Ok(r) => r,
            Err(e) => {
                println!("{:<22} skipped: {e}", layer.name());
                continue;
            }
        };
        let report = &result.best.latency;
        let view = MappedLayer::new(layer, &chip.arch, &result.best.mapping)?;
        let sim = Simulator::new().simulate(&view)?;
        let acc = (1.0
            - (report.cc_total - sim.total_cycles as f64).abs() / sim.total_cycles as f64)
            * 100.0;
        println!(
            "{:<22} {:>12} {:>12.0} {:>12} {:>7.1} {:>8.1}",
            layer.name(),
            layer.total_macs(),
            report.cc_total,
            sim.total_cycles,
            report.utilization * 100.0,
            acc
        );
        total_model += report.cc_total;
        total_sim += sim.total_cycles;
        acc_sum += acc;
        n += 1;
    }
    println!(
        "\nnetwork total: model {:.0} cc vs sim {} cc | mean per-layer accuracy {:.1}%",
        total_model,
        total_sim,
        acc_sum / n as f64
    );
    Ok(())
}
