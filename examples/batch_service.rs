//! The batch-evaluation service, driven programmatically.
//!
//! Demonstrates the three pillars of `ulm-serve`:
//!
//! 1. NDJSON batch evaluation through [`run_batch`] — mixed
//!    eval/search/stats requests, answers in input order;
//! 2. the content-addressed cache — the repeated request is answered
//!    without re-running the mapping search;
//! 3. deterministic parallelism — a DSE sweep on N threads is
//!    byte-identical to the serial sweep.
//!
//! Run with `cargo run --release --example batch_service`.

use ulm::dse::{enumerate_designs, explore, ExploreOptions, MemoryPool};
use ulm::prelude::*;
use ulm::serve::{run_batch, EvalService, ServeOptions};

fn main() -> Result<(), ulm::error::UlmError> {
    // --- 1. + 2. NDJSON batch with a cache hit -------------------------
    let service = EvalService::new(ServeOptions {
        parallelism: Some(4),
        cache_capacity: 1024,
        queue_capacity: None,
        ..ServeOptions::default()
    });

    let requests = concat!(
        r#"{"id":1,"kind":"search","arch":"case16","layer":"64x96x640","objective":"latency"}"#,
        "\n",
        r#"{"id":2,"kind":"search","arch":"case16","layer":"64x96x640","objective":"latency"}"#,
        "\n",
        r#"{"id":3,"kind":"search","arch":"toy","layer":"4x4x8","objective":"edp"}"#,
        "\n",
        r#"{"id":4,"kind":"stats"}"#,
        "\n",
    );

    let mut out = Vec::new();
    let summary = run_batch(&service, requests.as_bytes(), &mut out)?;
    println!(
        "processed {} requests ({} errors)",
        summary.requests, summary.errors
    );
    for line in String::from_utf8_lossy(&out).lines() {
        // The full payloads are large; print the interesting prefix.
        let head: String = line.chars().take(120).collect();
        println!("  {head}…");
    }

    let stats = service.cache_stats();
    println!(
        "cache: {} hits / {} misses ({:.0}% hit rate) — request 2 was free",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );
    assert!(stats.hits >= 1, "the repeated request must hit the cache");

    // --- 3. Parallel DSE is bit-deterministic --------------------------
    let layer = Layer::matmul("dse", 256, 256, 64, Precision::int8_out24());
    let pool = MemoryPool {
        w_reg_words_per_mac: vec![1, 2],
        i_reg_words_per_mac: vec![1, 2],
        o_reg_words_per_pe: vec![1],
        w_lb_kb: vec![4, 16],
        i_lb_kb: vec![4, 16],
    };
    let designs = enumerate_designs(&pool, &[16], 128);
    let serial = explore(&designs, &layer, &ExploreOptions::default());
    let parallel = explore(
        &designs,
        &layer,
        &ExploreOptions {
            parallelism: Some(8),
            ..ExploreOptions::default()
        },
    );
    assert_eq!(
        serial, parallel,
        "8-thread sweep must equal the serial sweep"
    );
    println!(
        "DSE: {} designs explored — 8-thread result identical to serial",
        serial.len()
    );
    Ok(())
}
