//! Multi-core scaling (the paper's "cross-layer multi-core DNN mapping"
//! future work): partition layers across 1–8 identical cores and watch
//! how shared backing-store bandwidth caps the speedup — the multi-core
//! variant of the paper's BW-awareness argument.
//!
//! ```sh
//! cargo run --release --example multicore_scaling
//! ```

use ulm::network::{scaling_sweep, BackingStore, MultiCoreEvaluator, Partition};
use ulm::prelude::*;

fn factory(gb_bw: u64) -> (Architecture, SpatialUnroll) {
    let bw = gb_bw.min(1 << 20);
    let chip = presets::scaled_case_study_chip(16, bw);
    (chip.arch, SpatialUnroll::new(chip.spatial))
}

fn main() -> Result<(), ulm::error::UlmError> {
    let layers = vec![
        Layer::matmul("gemm-a", 512, 128, 256, Precision::int8_acc24()),
        Layer::matmul("gemm-b", 512, 256, 128, Precision::int8_acc24()),
    ];

    for (label, total_bw) in [("shared 256 b/cy", 256u64), ("shared 2048 b/cy", 2048)] {
        println!("\n=== backing store: {label} ===");
        println!(
            "{:>6} {:>14} {:>10} {:>12}",
            "cores", "cycles", "speedup", "efficiency"
        );
        let rows = scaling_sweep(factory, &[1, 2, 4, 8], Partition::Batch, total_bw, &layers)?;
        let base = rows[0].1;
        for (n, cycles, eff) in &rows {
            println!(
                "{n:>6} {cycles:>14.0} {:>9.2}x {:>11.0}%",
                base / cycles,
                eff * 100.0
            );
        }
    }

    println!("\n=== partition choice on a K-heavy layer (4 cores, 1024 b/cy shared) ===");
    let kheavy = Layer::matmul("k-heavy", 16, 2048, 256, Precision::int8_acc24());
    for partition in [Partition::Batch, Partition::OutputChannels] {
        let mc = MultiCoreEvaluator::new(
            factory,
            4,
            partition,
            BackingStore::Shared {
                total_bw_bits: 1024,
            },
        );
        let r = mc.evaluate_layer(&kheavy)?;
        println!(
            "  {partition:<14} {:>12.0} cc on {} active cores  [{}]",
            r.cycles, r.active_cores, r.sub_layer
        );
    }
    println!(
        "\nBatch-splitting a B=16 layer leaves cores starved; K-splitting keeps\n\
         all four busy — partitioning must follow the workload's parallel slack."
    );
    Ok(())
}
