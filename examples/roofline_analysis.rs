//! Roofline vs the full stall model: the roofline (steady-state bandwidth
//! bound) catches *fundamental* memory limits, while the 3-step model
//! additionally prices burstiness, keep-out windows and port sharing. The
//! gap between the two is exactly the schedule-induced stall the paper
//! argues prior idealized models miss.
//!
//! ```sh
//! cargo run --release --example roofline_analysis
//! ```

use ulm::model::roofline;
use ulm::prelude::*;

fn main() -> Result<(), ulm::error::UlmError> {
    let arch = presets::case_study_chip(128);
    println!("architecture: {arch}\n");
    println!(
        "{:>14} {:>10} {:>12} {:>12} {:>12} {:>26}",
        "(B,K,C)", "ideal", "roofline", "full model", "sched. gap", "roofline bottleneck"
    );

    for (b, k, c) in [
        (8u64, 8u64, 512u64),
        (64, 96, 640),
        (128, 128, 128),
        (128, 128, 8),
        (512, 512, 8),
    ] {
        let layer = Layer::matmul(format!("({b},{k},{c})"), b, k, c, Precision::int8_out24());
        let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
        let best = Mapper::new(&arch, &layer, spatial)
            .with_options(MapperOptions {
                max_exhaustive: 2_000,
                samples: 100,
                ..MapperOptions::default()
            })
            .search(Objective::Latency)?
            .best;
        let view = MappedLayer::new(&layer, &arch, &best.mapping)?;
        let rl = roofline(&view);
        let full = best.latency.cc_total;
        println!(
            "{:>14} {:>10.0} {:>12.0} {:>12.0} {:>11.0}% {:>26}",
            layer.name(),
            view.cc_ideal(),
            rl.bound_cycles(),
            full,
            (full / rl.bound_cycles() - 1.0) * 100.0,
            rl.bottleneck()
        );
    }
    println!(
        "\nThe schedule gap is the stall the roofline cannot see: bursty output\n\
         drains and keep-out refill windows, priced only by the 3-step model."
    );
    Ok(())
}
