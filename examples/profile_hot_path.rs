//! Quick phase-level timing of the mapper hot path (dev aid, not a bench).

use std::time::Instant;
use ulm::mapper::enumerate;
use ulm::prelude::*;

fn main() {
    let arch = presets::case_study_chip(128);
    let layer = Layer::matmul("fig8-dse", 64, 96, 640, Precision::int8_out24());
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    let opts = MapperOptions {
        max_exhaustive: 1_000_000,
        ..MapperOptions::default()
    };
    let mapper = Mapper::new(&arch, &layer, spatial.clone()).with_options(opts);
    let factors = mapper.factors();
    println!("space = {}", mapper.space_size());

    // Full search timing, scalar then batched lanes.
    for lanes in [Some(1), None] {
        let mapper = Mapper::new(&arch, &layer, spatial.clone())
            .with_options(opts)
            .with_batch_lanes(lanes);
        let t = Instant::now();
        let r = mapper.search(Objective::Latency).unwrap();
        let full = t.elapsed().as_secs_f64();
        println!(
            "search[{} lanes]: {:.3}s ({:.0}/s), evaluated {}, pruned {}",
            r.stats.batch_lanes,
            full,
            r.stats.generated as f64 / full,
            r.stats.evaluated,
            r.stats.pruned
        );
    }
    let r = mapper.search(Objective::Latency).unwrap();

    // Batch kernel with real incumbent threading: split push vs drain time.
    {
        use ulm::model::{BatchKernel, LaneOutcome};
        let model = LatencyModel::new();
        let mut kernel = BatchKernel::new(&arch, &layer, &spatial, model, &factors, 64);
        let mut push_t = 0.0f64;
        let mut drain_t = 0.0f64;
        let mut inc: Option<f64> = None;
        let mut evaluated = 0u64;
        let t0 = Instant::now();
        let mut drain = |k: &mut BatchKernel, inc: &mut Option<f64>, evaluated: &mut u64| {
            let t = Instant::now();
            k.drain(*inc, |_, outcome| {
                if let LaneOutcome::Scored(s) = outcome {
                    *evaluated += 1;
                    if inc.map(|b| s < b).unwrap_or(true) {
                        *inc = Some(s);
                    }
                }
                *inc
            });
            drain_t += t.elapsed().as_secs_f64();
        };
        enumerate::for_each_ordering(&factors, |o| {
            if kernel.is_full() {
                drain(&mut kernel, &mut inc, &mut evaluated);
            }
            let t = Instant::now();
            kernel.push(o);
            push_t += t.elapsed().as_secs_f64();
            true
        });
        drain(&mut kernel, &mut inc, &mut evaluated);
        let total = t0.elapsed().as_secs_f64();
        println!(
            "kernel split: total {:.3}s, push {:.3}s, drain {:.3}s, evaluated {evaluated}, best {:?}",
            total, push_t, drain_t, inc
        );
    }

    // Batch kernel: push + bounds only (incumbent 0.0 prunes everything).
    {
        use ulm::model::BatchKernel;
        let model = LatencyModel::new();
        let mut kernel = BatchKernel::new(&arch, &layer, &spatial, model, &factors, 64);
        let t = Instant::now();
        let mut pruned = 0u64;
        enumerate::for_each_ordering(&factors, |o| {
            if kernel.is_full() {
                kernel.drain(Some(0.0), |_, _| {
                    pruned += 1;
                    Some(0.0)
                });
            }
            kernel.push(o);
            true
        });
        kernel.drain(Some(0.0), |_, _| {
            pruned += 1;
            Some(0.0)
        });
        let dt = t.elapsed().as_secs_f64();
        println!(
            "kernel push+bounds: {:.3}s ({:.0}/s) [{pruned}]",
            dt,
            110880.0 / dt
        );
    }

    // Pure enumeration cost.
    let t = Instant::now();
    let mut n = 0u64;
    enumerate::for_each_ordering(&factors, |o| {
        n += std::hint::black_box(o.len() as u64);
        true
    });
    println!("enumerate only: {:.3}s ({n})", t.elapsed().as_secs_f64());

    // Per-ordering front-end: prefixes + greedy + validate (no eval).
    let mut scratch = mapper.scratch();
    let t = Instant::now();
    let mut legal = 0u64;
    enumerate::for_each_ordering(&factors, |o| {
        if mapper
            .evaluate_ordering_fast(o, Objective::Latency, &mut scratch)
            .is_some()
        {
            legal += 1;
        }
        false // stop after one; we just want the fn to be linked
    });
    let _ = legal;
    let _ = t;

    // evaluate_fast on the winner, repeated.
    let view = MappedLayer::new(&layer, &arch, &r.best.mapping).unwrap();
    let model = LatencyModel::new();
    let mut ms = ModelScratch::default();
    let iters = 200_000u64;
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..iters {
        acc ^= model.evaluate_fast(&view, &mut ms).cc_total.to_bits();
    }
    let dt = t.elapsed().as_secs_f64();
    println!(
        "evaluate_fast: {:.0}/s ({:.2}us each) [{acc:x}]",
        iters as f64 / dt,
        dt / iters as f64 * 1e6
    );

    // phase_floor only.
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..iters {
        acc ^= model.phase_floor(&view).to_bits();
    }
    let dt = t.elapsed().as_secs_f64();
    println!(
        "phase_floor: {:.0}/s ({:.2}us each) [{acc:x}]",
        iters as f64 / dt,
        dt / iters as f64 * 1e6
    );

    // roofline_bound only.
    let t = Instant::now();
    let mut acc = 0u64;
    for _ in 0..iters {
        acc ^= roofline_bound(&view).to_bits();
    }
    let dt = t.elapsed().as_secs_f64();
    println!(
        "roofline_bound: {:.0}/s ({:.2}us each) [{acc:x}]",
        iters as f64 / dt,
        dt / iters as f64 * 1e6
    );
}
