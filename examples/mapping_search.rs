//! Mapping search: explore a layer's full dataflow space on a fixed
//! accelerator and expose the energy/latency trade-off the paper's Case
//! study 1 is about — the energy-optimal mapping is *not* the
//! latency-optimal one once temporal stalls are modeled.
//!
//! ```sh
//! cargo run --release --example mapping_search
//! ```

use ulm::prelude::*;

fn main() -> Result<(), ulm::error::UlmError> {
    let arch = presets::case_study_chip(128);
    let layer = Layer::matmul("l", 64, 96, 640, Precision::int8_out24());
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);

    let mapper = Mapper::new(&arch, &layer, spatial);
    println!(
        "mapping space: {} orderings of {} loop factors",
        mapper.space_size(),
        mapper.factors().len()
    );

    // All legal mappings, exhaustively (the space here is enumerable).
    let all = mapper.enumerate_all()?;
    println!("legal mappings evaluated: {}", all.len());

    let by = |f: fn(&EvaluatedMapping) -> f64, all: &[EvaluatedMapping]| {
        let mut idx: Vec<usize> = (0..all.len()).collect();
        idx.sort_by(|&a, &b| f(&all[a]).total_cmp(&f(&all[b])));
        idx
    };
    let by_latency = by(|em| em.latency.cc_total, &all);
    let by_energy = by(|em| em.energy.total_fj, &all);

    let lat_best = &all[by_latency[0]];
    let lat_worst = &all[*by_latency.last().unwrap()];
    let en_best = &all[by_energy[0]];

    println!("\nlatency-optimal mapping: {}", lat_best.mapping);
    println!(
        "  latency {:>10.0} cc | energy {:>8.1} nJ | U {:>5.1}%",
        lat_best.latency.cc_total,
        lat_best.energy.total_pj() / 1000.0,
        lat_best.latency.utilization * 100.0
    );
    println!("energy-optimal mapping:  {}", en_best.mapping);
    println!(
        "  latency {:>10.0} cc | energy {:>8.1} nJ | U {:>5.1}%",
        en_best.latency.cc_total,
        en_best.energy.total_pj() / 1000.0,
        en_best.latency.utilization * 100.0
    );
    println!("latency-worst mapping:   {}", lat_worst.mapping);
    println!(
        "  latency {:>10.0} cc | energy {:>8.1} nJ | U {:>5.1}%",
        lat_worst.latency.cc_total,
        lat_worst.energy.total_pj() / 1000.0,
        lat_worst.latency.utilization * 100.0
    );

    let spread = lat_worst.latency.cc_total / lat_best.latency.cc_total;
    println!("\nlatency spread across the mapping space: {spread:.1}x");
    if en_best.latency.cc_total > lat_best.latency.cc_total {
        println!(
            "the energy-optimal mapping is {:.0}% slower than the latency-optimal one — \
             exactly the trap Case study 1 warns about",
            (en_best.latency.cc_total / lat_best.latency.cc_total - 1.0) * 100.0
        );
    }
    Ok(())
}
