//! Quickstart: evaluate the latency of one DNN layer on one accelerator
//! with one mapping, and read the full breakdown.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ulm::prelude::*;

fn main() -> Result<(), ulm::error::UlmError> {
    // Hardware: the paper's scaled-down case-study accelerator — 16x16
    // MACs (8x16 PEs x 2), 16 KB W-LB, 8 KB I-LB, 1 MB GB with
    // 128 bit/cycle read/write bandwidth.
    let arch = presets::case_study_chip(128);
    println!("architecture: {arch}");

    // Algorithm: a GEMM layer (every conv becomes one after Im2Col).
    // INT8 weights/inputs, 24-bit outputs.
    let layer = Layer::matmul("demo", 64, 96, 640, Precision::int8_out24());
    println!("layer: {layer} ({} MACs)", layer.total_macs());

    // Mapping, written by hand: spatially unroll K16 | B8 | C2 across the
    // array, then iterate C320 innermost (output stationary), B8, K6.
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    let stack = LoopStack::from_pairs(&[(Dim::C, 320), (Dim::B, 8), (Dim::K, 6)]);
    let mapping = Mapping::with_greedy_alloc(&arch, &layer, spatial, stack)?;
    println!("mapping: {mapping}");

    // Bind and evaluate.
    let view = MappedLayer::new(&layer, &arch, &mapping)?;
    let report = LatencyModel::new().evaluate(&view);
    println!("\n--- analytical latency model ---");
    print!("{report}");

    // Where does the stall come from?
    println!("\nper-memory stalls:");
    for m in &report.memories {
        println!("  {:8} SS = {:>12.0} cycles", m.memory, m.ss);
    }

    // And what would fix it? (Section V-A: match ReqBW with RealBW.)
    for fix in report.bandwidth_fixes() {
        println!(
            "  fix: raise {} from {:.0} to {:.0} bits/cycle to remove a {:.0}-cycle stall",
            fix.port, fix.current_bw, fix.required_bw, fix.stall
        );
    }

    // Energy for the same mapping.
    let energy = EnergyModel::new().evaluate(&view);
    println!("\n--- analytical energy model ---");
    print!("{energy}");

    // Cross-check against the discrete-event reference simulator.
    let sim = Simulator::new().simulate(&view)?;
    println!("\n--- reference simulator ---");
    println!(
        "simulated {} cycles (compute {}, stalls {}, tail {})",
        sim.total_cycles, sim.compute_cycles, sim.stall_cycles, sim.tail_cycles
    );
    let err = (report.cc_total - sim.total_cycles as f64).abs() / sim.total_cycles as f64;
    println!("model vs sim: {:.1}% agreement", (1.0 - err) * 100.0);
    Ok(())
}
