//! Fig. 4-style memory-compute timelines: simulate a small mapped layer
//! with full tracing and render the per-port activity against the compute
//! lane — first with a bandwidth-starved link (visible stalls), then with
//! a comfortable one.
//!
//! ```sh
//! cargo run --release --example timeline_trace
//! ```

use ulm::prelude::*;
use ulm::sim::Trace;

fn show(arch: &Architecture, layer: &Layer, spatial: SpatialUnroll, stack: LoopStack) {
    let mapping =
        Mapping::with_greedy_alloc(arch, layer, spatial, stack).expect("mapping is legal");
    let view = MappedLayer::new(layer, arch, &mapping).expect("valid");
    let (report, trace): (SimReport, Trace) = Simulator::new()
        .simulate_traced(&view)
        .expect("small schedule");
    let h = arch.hierarchy();
    println!(
        "{} on {}: {} cycles ({} compute, {} stall, {} tail), {:.0}% stalled",
        layer.name(),
        arch.name(),
        report.total_cycles,
        report.compute_cycles,
        report.stall_cycles,
        report.tail_cycles,
        trace.stall_fraction() * 100.0
    );
    print!(
        "{}",
        trace.render_ascii(96, |m, p| format!("{} p{p}", h.mem(m).name()))
    );
}

fn main() {
    let chip = presets::toy_chip();
    let layer = Layer::matmul("tight", 4, 4, 8, Precision::int8_acc24());
    println!("=== bandwidth-starved: the shared LB read port throttles both refills ===");
    show(
        &chip.arch,
        &layer,
        SpatialUnroll::new(chip.spatial.clone()),
        LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]),
    );

    println!(
        "\n=== reordered: B-inner shifts the bottleneck to the output drains ===\n\
         (B under the C loops forces partial sums through the LB every other\n\
         cycle — visibly busier O lanes, even more stall)"
    );
    show(
        &chip.arch,
        &layer,
        SpatialUnroll::new(chip.spatial.clone()),
        LoopStack::from_pairs(&[(Dim::B, 2), (Dim::C, 8), (Dim::K, 2)]),
    );
    println!("\nLegend: '#' transfer in flight, '.' port idle, '=' computing, '!' stalled.");
}
