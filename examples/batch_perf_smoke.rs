//! CI perf smoke: the batched SoA kernel must not be slower than the
//! scalar search on the Fig. 8 case-study workload, and the two must
//! agree bit for bit. Exits nonzero on a regression, so `scripts/ci.sh`
//! can gate on it; thresholds are deliberately loose (>= 1.5x) to stay
//! robust on slow or loaded machines while still catching a batched
//! path that has degraded to scalar speed.

use std::time::Instant;
use ulm::prelude::*;

fn main() {
    let arch = presets::case_study_chip(128);
    let layer = Layer::matmul("fig8-dse", 64, 96, 640, Precision::int8_out24());
    let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
    let opts = MapperOptions {
        max_exhaustive: 1_000_000,
        ..MapperOptions::default()
    };
    let run = |lanes: Option<usize>| {
        let mapper = Mapper::new(&arch, &layer, spatial.clone())
            .with_options(opts)
            .with_batch_lanes(lanes);
        // Best of two runs each, to shrink scheduler noise.
        let mut best_secs = f64::INFINITY;
        let mut result = None;
        for _ in 0..2 {
            let t = Instant::now();
            let r = mapper.search(Objective::Latency).expect("search succeeds");
            best_secs = best_secs.min(t.elapsed().as_secs_f64());
            result = Some(r);
        }
        (result.unwrap(), best_secs)
    };

    let (scalar, scalar_secs) = run(Some(1));
    let (batched, batched_secs) = run(None);

    let orderings = scalar.stats.generated as f64;
    let speedup = scalar_secs / batched_secs;
    println!(
        "scalar: {:.3}s ({:.0}/s) | batched[{} lanes]: {:.3}s ({:.0}/s) | speedup {:.2}x",
        scalar_secs,
        orderings / scalar_secs,
        batched.stats.batch_lanes,
        batched_secs,
        orderings / batched_secs,
        speedup,
    );

    let mut failures = Vec::new();
    if scalar.best.mapping != batched.best.mapping {
        failures.push("best mapping diverged between scalar and batched".to_string());
    }
    if scalar.best.latency.cc_total.to_bits() != batched.best.latency.cc_total.to_bits() {
        failures.push(format!(
            "cc_total bits diverged: scalar {} vs batched {}",
            scalar.best.latency.cc_total, batched.best.latency.cc_total
        ));
    }
    if scalar.stats.evaluated != batched.stats.evaluated
        || scalar.stats.pruned != batched.stats.pruned
    {
        failures.push(format!(
            "counters diverged: scalar {}/{} vs batched {}/{} (evaluated/pruned)",
            scalar.stats.evaluated,
            scalar.stats.pruned,
            batched.stats.evaluated,
            batched.stats.pruned
        ));
    }
    if speedup < 1.5 {
        failures.push(format!(
            "batched search only {speedup:.2}x the scalar path (want >= 1.5x)"
        ));
    }
    if failures.is_empty() {
        println!("batch perf smoke OK");
    } else {
        for f in &failures {
            eprintln!("batch perf smoke FAILED: {f}");
        }
        std::process::exit(1);
    }
}
