//! Smoke-test client for `ulm serve --reactor`, used by `scripts/ci.sh`.
//!
//! Drives a running server through the scenarios the event loop exists
//! for, from a plain blocking client:
//!
//! 1. **scale** — hold thousands of idle connections open (adaptive to the
//!    process fd limit) while a working connection still gets answers;
//! 2. **protocol** — a pipelined batch: fresh search, repeat search
//!    (`cached` must flip to `true`), an unknown kind, all answered in
//!    request order;
//! 3. **warm restarts** — `--expect-cached true|false` asserts whether the
//!    standard request was answered from a warmed disk cache;
//! 4. **slow clients** — `--slow-client-ms <n>` writes half a request and
//!    then just waits; the server's idle timeout must close the socket.
//!
//! Exits non-zero (panics) on any violated expectation.
//!
//! ```sh
//! cargo run --release --example reactor_smoke -- 127.0.0.1:7878 \
//!     --idle 10000 --expect-cached false --slow-client-ms 900
//! ```

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

const SMOKE_SEARCH: &str = r#"{"id":100,"kind":"search","arch":"toy","layer":"4x4x8","mapper":{"max_exhaustive":100,"samples":10}}"#;

fn main() {
    let mut argv = std::env::args().skip(1);
    let addr = argv.next().expect("usage: reactor_smoke <addr> [options]");
    let mut idle_target = 0usize;
    let mut expect_cached: Option<bool> = None;
    let mut slow_client_ms = 0u64;
    while let Some(arg) = argv.next() {
        let mut value = || argv.next().expect("option needs a value");
        match arg.as_str() {
            "--idle" => idle_target = value().parse().expect("--idle <n>"),
            "--expect-cached" => {
                expect_cached = Some(value().parse().expect("--expect-cached true|false"));
            }
            "--slow-client-ms" => slow_client_ms = value().parse().expect("--slow-client-ms <n>"),
            other => panic!("unknown option {other}"),
        }
    }

    // 1. Scale: park idle connections, staying under the fd limit with
    // headroom for the working sockets and stdio.
    let budget = fd_limit().saturating_sub(64);
    let idle_count = idle_target.min(budget);
    if idle_count < idle_target {
        eprintln!("reactor_smoke: fd limit clamps idle connections {idle_target} -> {idle_count}");
    }
    let start = Instant::now();
    let mut parked = Vec::with_capacity(idle_count);
    for i in 0..idle_count {
        match TcpStream::connect(&addr) {
            Ok(s) => parked.push(s),
            Err(e) => panic!("idle connection {i} refused: {e}"),
        }
    }
    println!(
        "reactor_smoke: {} idle connections up in {:?}",
        parked.len(),
        start.elapsed()
    );

    // 2. Protocol: a pipelined batch on one more connection, answered in
    // order while every idle connection stays parked.
    let mut work = TcpStream::connect(&addr).expect("working connection");
    let batch = format!(
        "{SMOKE_SEARCH}\n{}\n{}\n",
        SMOKE_SEARCH.replace("\"id\":100", "\"id\":101"),
        r#"{"id":102,"kind":"frobnicate"}"#
    );
    work.write_all(batch.as_bytes()).expect("write batch");
    work.shutdown(Shutdown::Write).expect("half-close");
    let responses: Vec<String> = BufReader::new(&work)
        .lines()
        .map(|l| l.expect("read response"))
        .collect();
    assert_eq!(responses.len(), 3, "{responses:#?}");
    for (response, id) in responses.iter().zip([100, 101, 102]) {
        assert!(
            response.contains(&format!("\"id\":{id}")),
            "out of order: {response}"
        );
    }
    assert!(responses[0].contains("\"ok\":true"), "{}", responses[0]);
    assert!(
        responses[1].contains("\"cached\":true"),
        "repeat must hit the cache: {}",
        responses[1]
    );
    assert!(responses[2].contains("\"ok\":false"), "{}", responses[2]);

    // 3. Warm restart: was the *first* answer served from a prior run's
    // disk cache?
    if let Some(expected) = expect_cached {
        let marker = format!("\"cached\":{expected}");
        assert!(
            responses[0].contains(&marker),
            "expected {marker} in {}",
            responses[0]
        );
        println!("reactor_smoke: first answer had {marker}, as expected");
    }

    // 4. Slow client: half a request, then silence. The server must hang
    // up (EOF) within the grace period rather than hold the socket forever.
    if slow_client_ms > 0 {
        let mut slow = TcpStream::connect(&addr).expect("slow connection");
        slow.write_all(b"{\"id\":999,\"kind\":\"sea")
            .expect("partial write");
        slow.set_read_timeout(Some(Duration::from_millis(slow_client_ms)))
            .expect("read timeout");
        let mut sink = Vec::new();
        match slow.read_to_end(&mut sink) {
            Ok(_) => println!("reactor_smoke: slow client reaped by the server"),
            Err(e) => panic!("server kept the slow client past {slow_client_ms}ms: {e}"),
        }
    }

    drop(parked);
    println!("reactor_smoke: OK");
}

/// The soft fd limit, from /proc on Linux (std has no getrlimit); a safe
/// default elsewhere.
fn fd_limit() -> usize {
    if let Ok(limits) = std::fs::read_to_string("/proc/self/limits") {
        for line in limits.lines() {
            if line.starts_with("Max open files") {
                if let Some(soft) = line.split_whitespace().nth(3) {
                    if let Ok(n) = soft.parse() {
                        return n;
                    }
                }
            }
        }
    }
    1024
}
