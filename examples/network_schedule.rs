//! Cross-layer scheduling (the paper's stated future work): evaluate a
//! whole network end to end, comparing strictly sequential execution
//! against weight-prefetch overlap between layers.
//!
//! ```sh
//! cargo run --release --example network_schedule
//! ```

use ulm::prelude::*;

fn main() -> Result<(), ulm::error::UlmError> {
    let chip = presets::validation_chip();
    let spatial = SpatialUnroll::new(chip.spatial.clone());
    let layers = networks::handtracking_validation_layers();
    println!(
        "scheduling {} layers of the hand-tracking workload on {}",
        layers.len(),
        chip.arch
    );

    let sequential = NetworkEvaluator::new(&chip.arch, spatial.clone()).evaluate(&layers)?;
    let overlapped = NetworkEvaluator::new(&chip.arch, spatial)
        .with_overlap(InterLayerOverlap::WeightPrefetch)
        .evaluate(&layers)?;

    println!("\n--- sequential ---");
    print!("{sequential}");
    println!("\n--- with weight-prefetch overlap ---");
    print!("{overlapped}");

    let saved = sequential.total_cycles() - overlapped.total_cycles();
    println!(
        "\nweight prefetch hides {:.0} cycles ({:.2}% of the network)",
        saved,
        saved / sequential.total_cycles() * 100.0
    );
    println!(
        "network utilization: {:.1}% sequential vs {:.1}% overlapped",
        sequential.utilization() * 100.0,
        overlapped.utilization() * 100.0
    );
    Ok(())
}
