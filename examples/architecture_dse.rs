//! Architecture design-space exploration: sweep register/local-buffer
//! capacities and array sizes, optimize the mapping of each design, and
//! print the latency-area Pareto front at two GB bandwidths — a compact
//! version of the paper's Case study 3.
//!
//! ```sh
//! cargo run --release --example architecture_dse
//! ```

use ulm::prelude::*;

fn main() {
    // A reduced pool so the example runs in seconds; the fig8 bench runs
    // the full one.
    let pool = MemoryPool {
        w_reg_words_per_mac: vec![1, 2],
        i_reg_words_per_mac: vec![1, 2],
        o_reg_words_per_pe: vec![1],
        w_lb_kb: vec![4, 16, 64],
        i_lb_kb: vec![4, 16, 64],
    };
    let layer = Layer::matmul("l", 64, 128, 256, Precision::int8_out24());
    let opts = ExploreOptions::default();

    for gb_bw in [128u64, 1024] {
        let designs = enumerate_designs(&pool, &[16, 32], gb_bw);
        let points = explore(&designs, &layer, &opts);
        let front = pareto_front(&points);
        println!(
            "\nGB BW = {gb_bw} bit/cycle: {} designs evaluated, {} on the Pareto front",
            points.len(),
            front.len()
        );
        println!(
            "{:>6} {:>5} {:>5} {:>5} {:>6} {:>6} {:>12} {:>10} {:>7}",
            "array", "wReg", "iReg", "wLB", "iLB", "", "latency[cc]", "area[mm2]", "U[%]"
        );
        for &i in &front {
            let p = &points[i];
            println!(
                "{:>4}x{:<3} {:>4} {:>5} {:>5} {:>6} {:>12.0} {:>10.3} {:>7.1}",
                p.params.array_side,
                p.params.array_side,
                p.params.w_reg_words,
                p.params.i_reg_words,
                p.params.w_lb_kb,
                p.params.i_lb_kb,
                p.latency,
                p.area_mm2,
                p.utilization * 100.0
            );
        }
    }
    println!(
        "\nNote how at low GB bandwidth the front spans many memory \
         configurations (local reuse matters), while at high bandwidth \
         designs of one array size collapse toward a single latency."
    );
}
