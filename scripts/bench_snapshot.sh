#!/usr/bin/env bash
# Performance snapshot of the DSE hot path: runs the mapper_hot_path
# bench (baseline allocating search vs optimized scratch+pruned+parallel
# search on the Fig. 8 case-study workload, report-assembling
# `LatencyModel::evaluate` vs scratch-based `evaluate_fast` throughput,
# and full vs incremental delta-evaluation of a one-knob GB-bandwidth
# neighbor) and leaves the machine-readable numbers in BENCH_mapper.json
# at the repo root (override the destination with BENCH_MAPPER_JSON).
#
# Everything runs offline — all dependencies are path crates vendored
# under vendor/, so no registry access is required.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -p ulm-bench --bench mapper_hot_path

echo
echo "==> ${BENCH_MAPPER_JSON:-BENCH_mapper.json}"
cat "${BENCH_MAPPER_JSON:-BENCH_mapper.json}"
