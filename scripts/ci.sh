#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, build and the full test suite.
#
# Everything runs offline — all dependencies are path crates vendored
# under vendor/, so no registry access is required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> no Box<dyn Error> in library crates (use ulm_error::UlmError)"
if grep -rnE "Box<dyn (std::error::)?Error" crates/*/src --include="*.rs" | grep -v "^crates/cli/src/main.rs:"; then
    echo "error: library code must use the typed UlmError, not Box<dyn Error>" >&2
    exit 1
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> cargo bench --no-run (benches compile)"
cargo bench --workspace --no-run

echo "==> search-equivalence + allocation-free gates (release)"
cargo test --release -q -p ulm-mapper --test search_equivalence --test alloc_free --test batch_alloc_free

echo "==> batch-vs-scalar equivalence gate (release)"
cargo test --release -q -p ulm --test batch_equivalence

echo "==> lowered-IR consistency proptests (release: pins, fusion, KV-cache)"
cargo test --release -q -p ulm --test lowered_consistency

echo "==> surrogate-vs-evaluate_fast differential proptests (release)"
cargo test --release -q -p ulm --test surrogate_props

echo "==> batch perf smoke (batched kernel must beat the scalar search)"
cargo run --release -q -p ulm --example batch_perf_smoke

echo "==> reactor serve smoke (epoll transport + durable cache)"
if [[ "$(uname -s)" == "Linux" ]]; then
    cargo build --release -q -p ulm --example reactor_smoke
    SMOKE_TMP="$(mktemp -d)"
    trap 'rm -rf "$SMOKE_TMP"' EXIT
    serve_log="$SMOKE_TMP/serve.log"

    # Starts `ulm serve --reactor` on an ephemeral port with its stdin on a
    # fifo we hold open (closing it is the graceful-shutdown signal) and
    # parses the bound address off stderr. Sets SERVE_PID and ADDR.
    start_reactor() {
        local tag="$1"
        shift
        mkfifo "$SMOKE_TMP/stdin.$tag"
        timeout 300 target/release/ulm serve --reactor --port 0 --no-timing \
            --shutdown-on-stdin-close --cache-dir "$SMOKE_TMP/cache" "$@" \
            <"$SMOKE_TMP/stdin.$tag" 2>"$serve_log" &
        SERVE_PID=$!
        exec {SERVE_STDIN}>"$SMOKE_TMP/stdin.$tag"
        ADDR=""
        for _ in $(seq 1 100); do
            ADDR="$(sed -nE 's/.*serving NDJSON evaluation requests on (127\.0\.0\.1:[0-9]+).*/\1/p' "$serve_log" | head -n1)"
            [[ -n "$ADDR" ]] && return 0
            sleep 0.1
        done
        echo "error: reactor server never reported its address" >&2
        cat "$serve_log" >&2
        return 1
    }

    # Closes the server's stdin and requires a clean (drained) exit.
    stop_reactor() {
        exec {SERVE_STDIN}>&-
        wait "$SERVE_PID"
        grep -q "drained=true" "$serve_log"
    }

    # Run 1: cold cache — 10k idle connections held open around a working
    # pipelined batch that must be answered fresh (cached:false).
    start_reactor run1
    target/release/examples/reactor_smoke "$ADDR" --idle 10000 --expect-cached false
    stop_reactor

    # Run 2: restart on the same cache dir — the same request must now be
    # answered from the warmed disk cache without re-evaluation — plus a
    # slow client that the idle timeout has to reap.
    start_reactor run2 --idle-timeout-ms 300
    grep -q "warmed 1 entries" "$serve_log"
    target/release/examples/reactor_smoke "$ADDR" --expect-cached true --slow-client-ms 2000
    stop_reactor
else
    echo "    (skipped: the epoll reactor needs Linux)"
fi

echo "==> attention + fusion smoke (fused vs layer-by-layer differential)"
fused_out="$(target/release/ulm network --net attention-decode --arch fusion --fuse logit+attend@LB)"
base_out="$(target/release/ulm network --net attention-decode --arch fusion)"
grep -q "fused @LB: 1 edge(s)" <<<"$fused_out"
fused_cc="$(sed -nE 's/^network: .*, ([0-9]+) cycles .*/\1/p' <<<"$fused_out")"
base_cc="$(sed -nE 's/^network: .*, ([0-9]+) cycles .*/\1/p' <<<"$base_out")"
if (( fused_cc >= base_cc )); then
    echo "error: fusing logit+attend at the LB did not cut network latency (${fused_cc} vs ${base_cc})" >&2
    exit 1
fi
# An unknown layer in a fuse spec must exit non-zero with a fuse/* code.
fuse_err="$(mktemp)"
if target/release/ulm network --net attention-decode --arch fusion \
    --fuse nope+attend@LB >/dev/null 2>"$fuse_err"; then
    echo "error: ulm network accepted a fusion over an unknown layer" >&2
    exit 1
fi
grep -q "error\[fuse/unknown-layer\]" "$fuse_err"
rm -f "$fuse_err"

echo "==> whatif smoke (incremental delta path vs cold evaluation)"
# --verify re-evaluates the modified design from scratch inside the CLI
# and fails unless the incremental result is bit-identical.
target/release/ulm whatif --arch case16 --layer 64x96x640 \
    --max-exhaustive 2000 --samples 50 \
    --set mem.GB.bw=2x --verify >/dev/null
# A bogus knob path must exit non-zero with a namespaced knob/* code.
whatif_err="$(mktemp)"
if target/release/ulm whatif --arch case16 --layer 64x96x640 \
    --set mem.NOPE.bw=2x >/dev/null 2>"$whatif_err"; then
    echo "error: ulm whatif accepted an unknown memory" >&2
    exit 1
fi
grep -q "error\[knob/unknown-memory\]" "$whatif_err"
rm -f "$whatif_err"

echo "==> calibrate + surrogate smoke (fit, verify, surrogate-vs-full differential)"
CAL_TMP="$(mktemp -d)"
# Fit RealBW constants against sim traces; --verify asserts the applied
# architecture carries exactly the fitted per-port bandwidths.
target/release/ulm calibrate --arch case16 --verify \
    --out "$CAL_TMP/case16.cal.json" >/dev/null
grep -q '"id": "cal-' "$CAL_TMP/case16.cal.json"
# Specialize once, sweep the batch dim; --verify re-derives every point
# through the generic from-scratch path and fails on any bit mismatch —
# both uncalibrated and with the fitted constants applied.
target/release/ulm surrogate --arch case16 --layer 64x96x640 \
    --b-list 16,32,64,128,256 --verify >/dev/null
target/release/ulm surrogate --arch case16 --layer 64x96x640 \
    --calibration "$CAL_TMP/case16.cal.json" --b-list 16,64,256 --verify >/dev/null
# A malformed measurement CSV must exit non-zero with a calibrate/* code.
cal_err="$(mktemp)"
printf 'layer,b,k,c,mem,port,busy_cycles\nl1,4,4,8,GB,notaport,12.5\n' >"$CAL_TMP/bad.csv"
if target/release/ulm calibrate --arch case16 \
    --measurements "$CAL_TMP/bad.csv" >/dev/null 2>"$cal_err"; then
    echo "error: ulm calibrate accepted a malformed measurements CSV" >&2
    exit 1
fi
grep -q "error\[calibrate/" "$cal_err"
rm -rf "$CAL_TMP" "$cal_err"

echo "CI OK"
