#!/usr/bin/env bash
# Tier-1 CI gate: formatting, lints, build and the full test suite.
#
# Everything runs offline — all dependencies are path crates vendored
# under vendor/, so no registry access is required.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> no Box<dyn Error> in library crates (use ulm_error::UlmError)"
if grep -rnE "Box<dyn (std::error::)?Error" crates/*/src --include="*.rs" | grep -v "^crates/cli/src/main.rs:"; then
    echo "error: library code must use the typed UlmError, not Box<dyn Error>" >&2
    exit 1
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q

echo "==> cargo bench --no-run (benches compile)"
cargo bench --workspace --no-run

echo "==> search-equivalence + allocation-free gates (release)"
cargo test --release -q -p ulm-mapper --test search_equivalence --test alloc_free

echo "CI OK"
