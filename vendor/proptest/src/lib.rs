//! Offline std-only stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, `pat in strategy` arguments,
//! [`prop_assert!`]/[`prop_assert_eq!`], range/tuple/[`Just`]/[`any`]
//! strategies, `prop_map`/`prop_flat_map`, and [`collection::vec`].
//!
//! Differences from real proptest: cases are generated from a deterministic
//! per-test seed (derived from the test name), and failing cases are reported
//! but **not shrunk**.

use std::fmt;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Error returned by a failing property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

/// Per-proptest-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    /// Deterministic splitmix64 stream used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Seed derived from the test name so every test gets an independent
        /// but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

use test_runner::TestRng;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// [`Strategy::prop_flat_map`] adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                ((self.start as u128).wrapping_add((rng.next_u64() as u128) % span)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 wrap can't happen for <=64-bit types + 1,
                    // except the degenerate full-domain case.
                    return rng.next_u64() as $t;
                }
                ((lo as u128).wrapping_add((rng.next_u64() as u128) % span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical full-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Full-domain strategy for a type, e.g. `any::<u64>()`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Define property tests. Each `fn name(pat in strategy, ...) { body }` turns
/// into a `#[test]` that runs the body for `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__e) = __result {
                    panic!(
                        "proptest '{}' failed on case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}

/// Assert a condition inside a proptest body; failure aborts only this case
/// with a descriptive error instead of panicking the whole harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+),
                __l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0u32..=4, z in 1usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((1..9).contains(&z));
        }

        #[test]
        fn composite_strategies(v in crate::collection::vec((1u64..5, Just(7u8)), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for (a, b) in &v {
                prop_assert!((1..5).contains(a));
                prop_assert_eq!(*b, 7);
            }
        }

        #[test]
        fn flat_map_respects_dependency(pair in (2u64..20).prop_flat_map(|n| (Just(n), 0..n))) {
            let (n, k) = pair;
            prop_assert!(k < n, "k={} must stay below n={}", k, n);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::from_name("t");
        let mut b = crate::test_runner::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::from_name("u");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
