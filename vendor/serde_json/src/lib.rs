//! Offline std-only stand-in for `serde_json`.
//!
//! Provides the subset of the real crate's API that this workspace uses:
//! [`from_str`], [`to_string`], [`to_string_pretty`], [`to_value`],
//! [`from_value`], the [`json!`] macro, and the [`Value`]/[`Error`] types.
//! The data model is the [`serde::Value`] tree from the sibling serde shim;
//! this crate adds the JSON text syntax on top of it.

pub use serde::Value;

#[doc(hidden)]
pub use serde as __serde;

use std::fmt;

/// Error produced while parsing or printing JSON.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error { msg: e.to_string() }
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{} at byte {}", msg, self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek() {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > 128 {
            return Err(self.err("recursion limit exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => break,
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
                Ok(Value::Array(items))
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let val = self.parse_value(depth + 1)?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => break,
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
                Ok(Value::Object(entries))
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected character '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        if self.bump() != Some(b'"') {
            return Err(self.err("expected '\"'"));
        }
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair.
                            self.expect_keyword("\\u")?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(cp).ok_or_else(|| self.err("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: copy raw bytes of the code point.
                    let len = if b >= 0xF0 {
                        4
                    } else if b >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 sequence"))?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self
                .bump()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err("invalid number"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            // Negative integer.
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|m| {
                    if m <= i64::MAX as u64 + 1 {
                        Some(Value::I64((m as i128).wrapping_neg() as i64))
                    } else {
                        None
                    }
                })
                .map(Ok)
                .unwrap_or_else(|| {
                    text.parse::<f64>()
                        .map(Value::F64)
                        .map_err(|_| self.err("invalid number"))
                })
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Value::U64(u)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| self.err("invalid number")),
            }
        }
    }
}

/// Parse a JSON document into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    T::from_value(&v).map_err(Error::from)
}

/// Convert any [`serde::Serialize`] type into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Convert a [`Value`] tree into any [`serde::Deserialize`] type.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(Error::from)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_f64(f: f64) -> String {
    if f.is_nan() || f.is_infinite() {
        // Real serde_json errors on non-finite floats; we print null like
        // JavaScript's JSON.stringify to keep printing infallible.
        "null".to_string()
    } else if f == f.trunc() && f.abs() < 1e15 {
        format!("{:.1}", f)
    } else {
        let s = format!("{}", f);
        s
    }
}

fn write_compact(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::F64(f) => out.push_str(&fmt_f64(*f)),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, val);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&mut out, &value.to_value());
    Ok(out)
}

/// Serialize a value to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Construct a [`Value`] from a JSON-like literal.
///
/// Supports objects with literal string keys, arrays, `null`, nested
/// object/array literals, and arbitrary expressions as values (converted
/// through [`serde::Serialize`]).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        // A closure so one lint scope covers the whole push sequence.
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let __build = || {
            let mut __items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
            $crate::__json_arr!(__items, $($tt)*);
            __items
        };
        $crate::Value::Array(__build())
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let __build = || {
            let mut __entries: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::__json_obj!(__entries, $($tt)*);
            __entries
        };
        $crate::Value::Object(__build())
    }};
    ($other:expr) => {
        $crate::__serde::Serialize::to_value(&$other)
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_obj {
    ($entries:ident,) => {};
    ($entries:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $entries.push((($key).to_string(), $crate::Value::Null));
        $crate::__json_obj!($entries, $($($rest)*)?);
    };
    ($entries:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $entries.push((($key).to_string(), $crate::json!({ $($inner)* })));
        $crate::__json_obj!($entries, $($($rest)*)?);
    };
    ($entries:ident, $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $entries.push((($key).to_string(), $crate::json!([ $($inner)* ])));
        $crate::__json_obj!($entries, $($($rest)*)?);
    };
    ($entries:ident, $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $entries.push((($key).to_string(), $crate::__serde::Serialize::to_value(&$val)));
        $crate::__json_obj!($entries, $($($rest)*)?);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __json_arr {
    ($items:ident,) => {};
    ($items:ident, null $(, $($rest:tt)*)?) => {
        $items.push($crate::Value::Null);
        $crate::__json_arr!($items, $($($rest)*)?);
    };
    ($items:ident, { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::__json_arr!($items, $($($rest)*)?);
    };
    ($items:ident, [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::__json_arr!($items, $($($rest)*)?);
    };
    ($items:ident, $val:expr $(, $($rest:tt)*)?) => {
        $items.push($crate::__serde::Serialize::to_value(&$val));
        $crate::__json_arr!($items, $($($rest)*)?);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trip() {
        let src = r#"{"a": [1, -2, 3.5, true, null], "b": {"c": "x\ny"}}"#;
        let v: Value = from_str(src).unwrap();
        let compact = to_string(&v).unwrap();
        let v2: Value = from_str(&compact).unwrap();
        assert_eq!(v, v2);
        assert_eq!(compact, r#"{"a":[1,-2,3.5,true,null],"b":{"c":"x\ny"}}"#);
    }

    #[test]
    fn pretty_round_trip() {
        let v = json!({"k": [1, 2], "empty": {}, "s": "hi"});
        let pretty = to_string_pretty(&v).unwrap();
        let v2: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v2);
        assert!(pretty.contains("\n"));
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(v, Value::String("Aé😀".to_string()));
    }

    #[test]
    fn number_edges() {
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v, Value::U64(u64::MAX));
        let v: Value = from_str("-9223372036854775808").unwrap();
        assert_eq!(v, Value::I64(i64::MIN));
        let v: Value = from_str("1e3").unwrap();
        assert_eq!(v, Value::F64(1000.0));
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "name": "x",
            "n": 3u64,
            "list": [1u64, 2u64],
            "nested": {"inner": null},
        });
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            r#"{"name":"x","n":3,"list":[1,2],"nested":{"inner":null}}"#
        );
    }
}
