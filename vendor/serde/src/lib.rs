//! Offline stand-in for [`serde`](https://serde.rs) with the API surface
//! this workspace uses.
//!
//! The build environment has no registry access, so the real `serde`
//! cannot be downloaded. This crate keeps the workspace's serialization
//! code source-compatible by re-implementing the subset it relies on:
//!
//! * [`Serialize`] / [`Deserialize`] traits, routed through a concrete
//!   JSON-like [`Value`] data model instead of serde's visitor machinery;
//! * `#[derive(Serialize, Deserialize)]` proc macros (in `serde_derive`)
//!   honouring the `#[serde(rename/default/with)]` field attributes the
//!   workspace uses;
//! * generic [`Serializer`] / [`Deserializer`] traits so hand-written
//!   `with = "module"` impls keep their generic signatures.
//!
//! The data model is [`Value`]; `serde_json` (the sibling shim) adds the
//! text format on top.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like dynamically typed value: the shim's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (preserves full `u64` precision).
    U64(u64),
    /// Negative integer (preserves full `i64` precision).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as an ordered key/value list (preserves insertion
    /// order, which keeps derive output deterministic).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, converting lossless integer forms.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// The value as an `i64`, converting lossless integer forms.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) if n <= i64::MAX as u64 => Some(n as i64),
            Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(f as i64),
            _ => None,
        }
    }

    /// The value as an `f64`, converting any numeric form.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object (ordered field list).
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short name of the value's type for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }

    /// A missing-field error.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Self::custom(format!("missing field `{field}` in `{ty}`"))
    }

    /// A wrong-type error.
    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        Self::custom(format!("expected {expected}, got {}", got.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A data format that [`Serialize`] writes into. The shim has exactly one
/// meaningful implementation ([`ValueSerializer`]); the trait exists so
/// hand-written `with = "module"` helpers keep serde's generic signature.
pub trait Serializer: Sized {
    /// The success type.
    type Ok;
    /// The error type.
    type Error: From<Error>;
    /// Consumes a fully built [`Value`].
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;
}

/// The canonical serializer: yields the [`Value`] itself.
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    fn serialize_value(self, v: Value) -> Result<Value, Error> {
        Ok(v)
    }
}

/// A data format that [`Deserialize`] reads from. As with [`Serializer`],
/// the only meaningful implementation is [`ValueDeserializer`].
pub trait Deserializer<'de>: Sized {
    /// The error type.
    type Error: From<Error>;
    /// Yields the underlying [`Value`].
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// The canonical deserializer: wraps a borrowed [`Value`].
pub struct ValueDeserializer<'de> {
    value: &'de Value,
}

impl<'de> ValueDeserializer<'de> {
    /// Wraps a value.
    pub fn new(value: &'de Value) -> Self {
        Self { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer<'de> {
    type Error = Error;
    fn take_value(self) -> Result<Value, Error> {
        Ok(self.value.clone())
    }
}

/// A type that can be converted into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`]. Infallible: the in-memory model
    /// can represent everything the workspace serializes.
    fn to_value(&self) -> Value;

    /// serde-compatible entry point used by `with = "module"` helpers.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// A type that can be reconstructed from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// serde-compatible entry point used by `with = "module"` helpers.
    ///
    /// # Errors
    ///
    /// Propagates [`Deserializer::take_value`] and shape errors.
    fn deserialize<'de, D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.take_value()?;
        Self::from_value(&v).map_err(D::Error::from)
    }
}

/// Derive-internal helper: object field lookup.
#[doc(hidden)]
pub fn __get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::invalid_type("bool", v))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::invalid_type("unsigned integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::invalid_type("integer", v))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

// u128 exceeds the JSON number range: values that fit in u64 serialize as
// numbers, larger ones fall back to a decimal string.
impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(n) => Value::U64(n),
            Err(_) => Value::String(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        if let Some(n) = v.as_u64() {
            return Ok(u128::from(n));
        }
        if let Value::String(s) = v {
            return s
                .parse::<u128>()
                .map_err(|_| Error::custom(format!("invalid u128 string `{s}`")));
        }
        Err(Error::invalid_type("unsigned integer or decimal string", v))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::invalid_type("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::invalid_type("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::invalid_type("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::invalid_type("array", v))?;
                let expected = [$(stringify!($t)),+].len();
                if arr.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of length {expected}, got {}", arr.len()
                    )));
                }
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::invalid_type("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::invalid_type("object", v))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip_precisely() {
        let big = u64::MAX - 1;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
        let neg = -42i64;
        assert_eq!(i64::from_value(&neg.to_value()).unwrap(), neg);
        let f = 0.1f64;
        assert_eq!(f64::from_value(&f.to_value()).unwrap(), f);
        // Cross-type: u64 value reads as f64, integral f64 reads as u64.
        assert_eq!(f64::from_value(&Value::U64(8)).unwrap(), 8.0);
        assert_eq!(u64::from_value(&Value::F64(8.0)).unwrap(), 8);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let back = Vec::<(u64, String)>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let arr = [3u64, 1, 2];
        assert_eq!(<[u64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&opt.to_value()).unwrap(), None);
    }

    #[test]
    fn errors_name_the_mismatch() {
        let e = u64::from_value(&Value::String("x".into())).unwrap_err();
        assert!(e.to_string().contains("unsigned integer"), "{e}");
        let e = <[u64; 2]>::from_value(&vec![1u64].to_value()).unwrap_err();
        assert!(e.to_string().contains("length 2"), "{e}");
    }

    #[test]
    fn out_of_range_integers_rejected() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
