//! Offline std-only stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`]/[`sample_size`](BenchmarkGroup::sample_size),
//! [`Bencher::iter`], and [`black_box`] — backed by a simple adaptive
//! wall-clock timer instead of criterion's statistical machinery. Results are
//! printed as mean ns/iter per benchmark.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Mutable timing context handed to the closure of
/// [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the harness-chosen number of iterations, timing the batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver; collects per-benchmark reports.
pub struct Criterion {
    /// Soft time budget per benchmark (measurement phase).
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
            sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Ungrouped convenience entry point.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let budget = self.measurement_time;
        let samples = self.sample_size;
        run_bench(name, budget, samples, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Lower the per-benchmark sample count (for slow benchmarks).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&full, self.criterion.measurement_time, samples, f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, budget: Duration, samples: usize, mut f: F) {
    // Calibrate: time a single iteration to pick a batch size that keeps the
    // whole measurement phase near the budget.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = budget.as_nanos() / samples.max(1) as u128;
    let iters = (per_sample / once.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    let mut best = f64::INFINITY;
    for _ in 0..samples.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
        let per_iter = b.elapsed.as_nanos() as f64 / iters as f64;
        if per_iter < best {
            best = per_iter;
        }
    }
    let mean = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!(
        "bench {name}: mean {:.1} ns/iter, best {:.1} ns/iter ({total_iters} iters)",
        mean, best
    );
}

/// Collect benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running one or more [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
            sample_size: 3,
        };
        let mut calls = 0u64;
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls > 0);
    }
}
