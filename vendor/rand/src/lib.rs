//! Offline std-only stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements a deterministic xoshiro256** generator seeded through
//! splitmix64, exposed via the same trait/module layout the workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range}`,
//! and `seq::SliceRandom::shuffle`.
//!
//! The numbers differ from the real `rand` crate's `StdRng` stream, but the
//! workspace only relies on determinism-for-a-seed, not on a specific stream.

use std::ops::Range;

/// Core RNG trait: anything that can produce 64 random bits.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sample type for [`Rng::gen_range`]: integer types over a `Range`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // i128 holds the full domain of every <=64-bit integer type,
                // signed or unsigned, so the span math cannot overflow.
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                // Debiased via rejection sampling on the top bits.
                let zone = u128::MAX - (u128::MAX % span);
                loop {
                    let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    if raw < zone {
                        return ((self.start as i128) + (raw % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform sampling of a full type domain, for [`Rng::gen`].
pub trait Standard {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait providing in-place Fisher-Yates shuffling.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean of 1000 uniform samples should be near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
