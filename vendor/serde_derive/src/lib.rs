//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! Hand-rolled on bare `proc_macro` (the build environment has no
//! registry access, so `syn`/`quote` are unavailable). Supports the
//! shapes this workspace uses:
//!
//! * structs with named fields (including generics such as
//!   `PerOperand<T>`), tuple/newtype structs, unit structs;
//! * enums with unit, newtype, tuple and struct variants (externally
//!   tagged, like serde's default);
//! * field attributes `#[serde(rename = "…")]`, `#[serde(default)]`,
//!   `#[serde(default = "path")]` and `#[serde(with = "module")]`.
//!
//! Codegen is string-based: the derive builds Rust source and parses it
//! back into a `TokenStream`.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    rename: Option<String>,
    /// `None` = no default; `Some(None)` = `Default::default()`;
    /// `Some(Some(path))` = call `path()`.
    default: Option<Option<String>>,
    with: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<Field>),
    Unnamed(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Data {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug, Clone)]
enum Param {
    Lifetime(String),
    Const { decl: String, name: String },
    Type { name: String, bounds: String },
}

#[derive(Debug)]
struct Input {
    name: String,
    params: Vec<Param>,
    data: Data,
}

struct Cursor {
    trees: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Self {
            trees: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.trees.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.trees.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if self.peek_ident(word) {
            self.pos += 1;
            return true;
        }
        false
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected identifier, got {other:?}"),
        }
    }

    /// Consumes leading attributes, returning the merged serde attrs.
    fn eat_attrs(&mut self) -> FieldAttrs {
        let mut out = FieldAttrs::default();
        while self.eat_punct('#') {
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    parse_serde_attr(g.stream(), &mut out);
                }
                other => panic!("serde_derive: malformed attribute, got {other:?}"),
            }
        }
        out
    }

    /// Skips `pub`, `pub(crate)`, `pub(in …)`.
    fn eat_visibility(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skips a type (or any token run) up to a top-level `,`, counting
    /// `<`/`>` depth so generic arguments don't terminate early.
    fn skip_until_toplevel_comma(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                let c = p.as_char();
                if c == '<' {
                    depth += 1;
                } else if c == '>' {
                    depth -= 1;
                } else if c == ',' && depth <= 0 {
                    return;
                }
            }
            self.pos += 1;
        }
    }
}

/// Extracts `rename`/`default`/`with` from one `#[serde(…)]` attribute
/// body; non-serde attributes (docs, `#[default]`, …) are ignored.
fn parse_serde_attr(body: TokenStream, out: &mut FieldAttrs) {
    let mut c = Cursor::new(body);
    if !c.eat_ident("serde") {
        return;
    }
    let group = match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        _ => return,
    };
    let mut c = Cursor::new(group.stream());
    loop {
        let key = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(_) => continue,
            None => break,
        };
        let value = if c.eat_punct('=') {
            match c.next() {
                Some(TokenTree::Literal(l)) => {
                    let s = l.to_string();
                    Some(s.trim_matches('"').to_string())
                }
                other => panic!("serde_derive: expected literal after `{key} =`, got {other:?}"),
            }
        } else {
            None
        };
        match key.as_str() {
            "rename" => out.rename = value,
            "default" => out.default = Some(value),
            "with" => out.with = value,
            other => panic!("serde_derive: unsupported serde attribute `{other}`"),
        }
        c.eat_punct(',');
    }
}

fn parse_generics(c: &mut Cursor) -> Vec<Param> {
    let mut params = Vec::new();
    if !c.eat_punct('<') {
        return params;
    }
    let mut depth = 1i32;
    let mut current: Vec<TokenTree> = Vec::new();
    loop {
        let t = c.next().expect("serde_derive: unterminated generics");
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        if !current.is_empty() {
                            params.push(parse_param(&current));
                        }
                        break;
                    }
                }
                ',' if depth == 1 => {
                    params.push(parse_param(&current));
                    current.clear();
                    continue;
                }
                _ => {}
            }
        }
        current.push(t);
    }
    params
}

fn tokens_to_string(trees: &[TokenTree]) -> String {
    let mut s = String::new();
    for t in trees {
        let piece = t.to_string();
        if !s.is_empty() && !piece.starts_with(',') {
            s.push(' ');
        }
        s.push_str(&piece);
    }
    s
}

fn parse_param(trees: &[TokenTree]) -> Param {
    match trees.first() {
        Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
            Param::Lifetime(tokens_to_string(trees).replace("' ", "'"))
        }
        Some(TokenTree::Ident(i)) if i.to_string() == "const" => {
            let name = match trees.get(1) {
                Some(TokenTree::Ident(n)) => n.to_string(),
                other => panic!("serde_derive: malformed const param {other:?}"),
            };
            Param::Const {
                decl: tokens_to_string(trees),
                name,
            }
        }
        Some(TokenTree::Ident(i)) => {
            let name = i.to_string();
            let bounds = if matches!(trees.get(1), Some(TokenTree::Punct(p)) if p.as_char() == ':')
            {
                tokens_to_string(&trees[2..])
            } else {
                String::new()
            };
            Param::Type { name, bounds }
        }
        other => panic!("serde_derive: malformed generic parameter {other:?}"),
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let attrs = c.eat_attrs();
        if c.peek().is_none() {
            break;
        }
        c.eat_visibility();
        let name = c.expect_ident();
        assert!(
            c.eat_punct(':'),
            "serde_derive: expected `:` after field `{name}`"
        );
        c.skip_until_toplevel_comma();
        c.eat_punct(',');
        fields.push(Field { name, attrs });
    }
    fields
}

fn parse_unnamed_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    let mut count = 0;
    while c.peek().is_some() {
        let _attrs = c.eat_attrs();
        if c.peek().is_none() {
            break;
        }
        c.eat_visibility();
        c.skip_until_toplevel_comma();
        c.eat_punct(',');
        count += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        let _attrs = c.eat_attrs();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = parse_unnamed_fields(g.stream());
                c.pos += 1;
                Fields::Unnamed(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                c.pos += 1;
                Fields::Named(f)
            }
            _ => Fields::Unit,
        };
        if c.eat_punct('=') {
            // Skip an explicit discriminant expression.
            c.skip_until_toplevel_comma();
        }
        c.eat_punct(',');
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut c = Cursor::new(input);
    let _container_attrs = c.eat_attrs();
    c.eat_visibility();
    let kind = c.expect_ident();
    let name = c.expect_ident();
    let params = parse_generics(&mut c);
    match kind.as_str() {
        "struct" => {
            let fields = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Unnamed(parse_unnamed_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: malformed struct body {other:?}"),
            };
            Input {
                name,
                params,
                data: Data::Struct(fields),
            }
        }
        "enum" => {
            let variants = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde_derive: malformed enum body {other:?}"),
            };
            Input {
                name,
                params,
                data: Data::Enum(variants),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

/// `impl<…>` parameter list with `extra_bound` added to each type param,
/// and the `Name<…>` usage list.
fn generics_split(params: &[Param], extra_bound: &str) -> (String, String) {
    if params.is_empty() {
        return (String::new(), String::new());
    }
    let mut decl = Vec::new();
    let mut usage = Vec::new();
    for p in params {
        match p {
            Param::Lifetime(l) => {
                decl.push(l.clone());
                usage.push(l.split(':').next().unwrap().trim().to_string());
            }
            Param::Const { decl: d, name } => {
                decl.push(d.clone());
                usage.push(name.clone());
            }
            Param::Type { name, bounds } => {
                if bounds.is_empty() {
                    decl.push(format!("{name}: {extra_bound}"));
                } else {
                    decl.push(format!("{name}: {bounds} + {extra_bound}"));
                }
                usage.push(name.clone());
            }
        }
    }
    (
        format!("<{}>", decl.join(", ")),
        format!("<{}>", usage.join(", ")),
    )
}

fn json_key(f: &Field) -> &str {
    f.attrs.rename.as_deref().unwrap_or(&f.name)
}

/// `(key, to_value-expression)` pair for one named field.
fn ser_named_field(f: &Field, access: &str) -> String {
    let key = json_key(f);
    let expr = match &f.attrs.with {
        Some(path) => format!(
            "match {path}::serialize(&{access}, ::serde::ValueSerializer) {{ \
               ::std::result::Result::Ok(v) => v, \
               ::std::result::Result::Err(_) => ::serde::Value::Null }}"
        ),
        None => format!("::serde::Serialize::to_value(&{access})"),
    };
    format!("(::std::string::String::from(\"{key}\"), {expr})")
}

/// Expression reconstructing one named field out of `fields` (an object's
/// entry list), honouring `default`/`with` attributes.
fn de_named_field(f: &Field, ty_name: &str) -> String {
    let key = json_key(f);
    let found = match &f.attrs.with {
        Some(path) => format!("{path}::deserialize(::serde::ValueDeserializer::new(__x))?"),
        None => "::serde::Deserialize::from_value(__x)?".to_string(),
    };
    let missing = match &f.attrs.default {
        Some(Some(path)) => format!("{path}()"),
        Some(None) => "::std::default::Default::default()".to_string(),
        None => format!(
            "return ::std::result::Result::Err(::std::convert::From::from(\
             ::serde::Error::missing_field(\"{key}\", \"{ty_name}\")))"
        ),
    };
    format!(
        "{name}: match ::serde::__get(__fields, \"{key}\") {{ \
           ::std::option::Option::Some(__x) => {found}, \
           ::std::option::Option::None => {missing} }}",
        name = f.name
    )
}

fn derive_serialize_impl(input: &Input) -> String {
    let (decl, usage) = generics_split(&input.params, "::serde::Serialize");
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Fields::Named(fields)) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| ser_named_field(f, &format!("self.{}", f.name)))
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Data::Struct(Fields::Unnamed(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::Struct(Fields::Unnamed(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Data::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(
                            arms,
                            "{name}::{vname} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vname}\")),"
                        );
                    }
                    Fields::Unnamed(1) => {
                        let _ = write!(
                            arms,
                            "{name}::{vname}(__b0) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), \
                              ::serde::Serialize::to_value(__b0))]),"
                        );
                    }
                    Fields::Unnamed(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__b{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), \
                              ::serde::Value::Array(::std::vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        );
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .enumerate()
                            .map(|(i, f)| format!("{}: __b{i}", f.name))
                            .collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .enumerate()
                            .map(|(i, f)| {
                                let key = json_key(f);
                                format!(
                                    "(::std::string::String::from(\"{key}\"), \
                                     ::serde::Serialize::to_value(__b{i}))"
                                )
                            })
                            .collect();
                        let _ = write!(
                            arms,
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), \
                              ::serde::Value::Object(::std::vec![{}]))]),",
                            binds.join(", "),
                            entries.join(", ")
                        );
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl{decl} ::serde::Serialize for {name}{usage} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn derive_deserialize_impl(input: &Input) -> String {
    let (decl, usage) = generics_split(&input.params, "::serde::Deserialize");
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields.iter().map(|f| de_named_field(f, name)).collect();
            format!(
                "let __fields = __v.as_object().ok_or_else(|| \
                   ::serde::Error::invalid_type(\"object\", __v))?; \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Data::Struct(Fields::Unnamed(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Data::Struct(Fields::Unnamed(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| \
                   ::serde::Error::invalid_type(\"array\", __v))?; \
                 if __arr.len() != {n} {{ \
                   return ::std::result::Result::Err(::serde::Error::custom(\
                     ::std::format!(\"expected array of length {n}, got {{}}\", __arr.len()))); }} \
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Data::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        let _ = write!(
                            unit_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),"
                        );
                    }
                    Fields::Unnamed(1) => {
                        let _ = write!(
                            payload_arms,
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__payload)?)),"
                        );
                    }
                    Fields::Unnamed(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        let _ = write!(
                            payload_arms,
                            "\"{vname}\" => {{ \
                               let __arr = __payload.as_array().ok_or_else(|| \
                                 ::serde::Error::invalid_type(\"array\", __payload))?; \
                               if __arr.len() != {n} {{ \
                                 return ::std::result::Result::Err(::serde::Error::custom(\
                                   ::std::format!(\"variant {vname}: expected {n} elements, \
                                    got {{}}\", __arr.len()))); }} \
                               ::std::result::Result::Ok({name}::{vname}({})) }},",
                            items.join(", ")
                        );
                    }
                    Fields::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| de_named_field(f, &format!("{name}::{vname}")))
                            .collect();
                        let _ = write!(
                            payload_arms,
                            "\"{vname}\" => {{ \
                               let __fields = __payload.as_object().ok_or_else(|| \
                                 ::serde::Error::invalid_type(\"object\", __payload))?; \
                               ::std::result::Result::Ok({name}::{vname} {{ {} }}) }},",
                            inits.join(", ")
                        );
                    }
                }
            }
            format!(
                "match __v {{ \
                   ::serde::Value::String(__s) => match __s.as_str() {{ \
                     {unit_arms} \
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                       ::std::format!(\"unknown variant `{{__other}}` of {name}\"))), \
                   }}, \
                   ::serde::Value::Object(__entries) if __entries.len() == 1 => {{ \
                     let (__tag, __payload) = &__entries[0]; \
                     match __tag.as_str() {{ \
                       {payload_arms} \
                       __other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown variant `{{__other}}` of {name}\"))), \
                     }} \
                   }}, \
                   __other => ::std::result::Result::Err(\
                     ::serde::Error::invalid_type(\"enum representation\", __other)), \
                 }}"
            )
        }
    };
    format!(
        "impl{decl} ::serde::Deserialize for {name}{usage} {{ \
           fn from_value(__v: &::serde::Value) -> \
             ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}

/// Derives `serde::Serialize` (shim flavour: `to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    derive_serialize_impl(&parsed)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (shim flavour: `from_value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    derive_deserialize_impl(&parsed)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}
