//! The architecture-constant *slot* view of the lowering pipeline.
//!
//! The phase and DTL-graph stages are the only places the pipeline reads
//! the architecture's port tables (which port serves an interface, at what
//! bandwidth, under what buffering). For a fixed `(architecture, mapping
//! shape)` those answers never change between queries, so the stages are
//! written against the [`ArchSlots`] trait instead of the hierarchy
//! directly:
//!
//! * [`LiveSlots`] answers by the same chain-and-port lookups the
//!   pipeline always did — the generic path, bit-identical to before;
//! * the surrogate's folded table (built *through* `LiveSlots`, so it
//!   holds the very same numbers) answers by array indexing.
//!
//! Because both implementations feed identical values into one shared
//! arithmetic body, the partial evaluation is bit-identical to the
//! generic path by construction.

use crate::dtl::{Endpoint, Endpoints};
use ulm_arch::{MemoryHierarchy, PortUse};
use ulm_workload::Operand;

/// The architecture-constant inputs of one data-transfer link: the
/// narrower of the two port bandwidths, the ports it occupies, and
/// whether the window-defining (lower) memory is double-buffered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct LinkConsts {
    /// Link bandwidth in bits/cycle: the `u64` min of the two ports.
    pub bw_bits: u64,
    /// The one or two ports the link occupies.
    pub endpoints: Endpoints,
    /// Whether the lower (window-defining) memory is double-buffered.
    pub lower_db: bool,
}

/// Per-interface architecture constants, keyed the way the DTL build
/// walks them. `interface` covers the refill (W/I) and drain (O)
/// direction of `(op, level)`; `psum` the read-back direction of an O
/// interface; `compute` the MAC-array-facing link of `op`'s innermost
/// level.
pub(crate) trait ArchSlots {
    fn interface(&self, op: Operand, level: usize) -> LinkConsts;
    fn psum(&self, level: usize) -> LinkConsts;
    fn compute(&self, op: Operand) -> LinkConsts;
}

/// [`ArchSlots`] answered by live hierarchy lookups — the generic path.
pub(crate) struct LiveSlots<'a> {
    h: &'a MemoryHierarchy,
}

impl<'a> LiveSlots<'a> {
    pub(crate) fn new(h: &'a MemoryHierarchy) -> Self {
        Self { h }
    }
}

impl ArchSlots for LiveSlots<'_> {
    fn interface(&self, op: Operand, level: usize) -> LinkConsts {
        let chain = self.h.chain(op);
        let (lower, upper) = (chain[level], chain[level + 1]);
        match op {
            Operand::W | Operand::I => {
                // Refill: upper read -> lower write.
                let (wp, wbw) = self.h.port(lower, op, PortUse::WriteIn);
                let (rp, rbw) = self.h.port(upper, op, PortUse::ReadOut);
                LinkConsts {
                    bw_bits: wbw.min(rbw),
                    endpoints: Endpoints::two(
                        Endpoint {
                            mem: upper,
                            port: rp,
                            usage: PortUse::ReadOut,
                        },
                        Endpoint {
                            mem: lower,
                            port: wp,
                            usage: PortUse::WriteIn,
                        },
                    ),
                    lower_db: self.h.mem(lower).is_double_buffered(),
                }
            }
            Operand::O => {
                // Drain: lower read -> upper write.
                let (rp, rbw) = self.h.port(lower, op, PortUse::ReadOut);
                let (wp, wbw) = self.h.port(upper, op, PortUse::WriteIn);
                LinkConsts {
                    bw_bits: rbw.min(wbw),
                    endpoints: Endpoints::two(
                        Endpoint {
                            mem: lower,
                            port: rp,
                            usage: PortUse::ReadOut,
                        },
                        Endpoint {
                            mem: upper,
                            port: wp,
                            usage: PortUse::WriteIn,
                        },
                    ),
                    lower_db: self.h.mem(lower).is_double_buffered(),
                }
            }
        }
    }

    fn psum(&self, level: usize) -> LinkConsts {
        let chain = self.h.chain(Operand::O);
        let (lower, upper) = (chain[level], chain[level + 1]);
        let (rp, rbw) = self.h.port(upper, Operand::O, PortUse::ReadOut);
        let (wp, wbw) = self.h.port(lower, Operand::O, PortUse::WriteIn);
        LinkConsts {
            bw_bits: rbw.min(wbw),
            endpoints: Endpoints::two(
                Endpoint {
                    mem: upper,
                    port: rp,
                    usage: PortUse::ReadOut,
                },
                Endpoint {
                    mem: lower,
                    port: wp,
                    usage: PortUse::WriteIn,
                },
            ),
            lower_db: self.h.mem(lower).is_double_buffered(),
        }
    }

    fn compute(&self, op: Operand) -> LinkConsts {
        let innermost = self.h.chain(op)[0];
        let usage = match op {
            Operand::W | Operand::I => PortUse::ReadOut,
            Operand::O => PortUse::WriteIn,
        };
        let (p, bw) = self.h.port(innermost, op, usage);
        LinkConsts {
            bw_bits: bw,
            endpoints: Endpoints::one(Endpoint {
                mem: innermost,
                port: p,
                usage,
            }),
            lower_db: false,
        }
    }
}

/// [`ArchSlots`] folded into flat per-interface tables once per
/// specialization: every entry is captured through [`LiveSlots`], so the
/// values are the generic path's values and queries reduce to indexing.
#[derive(Debug, Default)]
pub(crate) struct FoldedSlots {
    /// `interface(op, level)`, operand-major, one row per chain interface.
    interfaces: Vec<LinkConsts>,
    /// Interface-row offsets per operand (`offsets[op] .. offsets[op+1]`).
    offsets: [usize; 4],
    /// `psum(level)` for every O interface.
    psums: Vec<LinkConsts>,
    /// `compute(op)` per operand.
    computes: [Option<LinkConsts>; 3],
}

impl FoldedSlots {
    /// Folds every slot of `h` the lowering can touch, reading through
    /// [`LiveSlots`] so the captured constants are the live values.
    pub(crate) fn fold(h: &MemoryHierarchy) -> Self {
        let live = LiveSlots::new(h);
        let mut out = Self::default();
        for op in Operand::all() {
            out.offsets[op.index()] = out.interfaces.len();
            let interfaces = h.chain(op).len().saturating_sub(1);
            for level in 0..interfaces {
                out.interfaces.push(live.interface(op, level));
            }
            out.computes[op.index()] = Some(live.compute(op));
        }
        out.offsets[3] = out.interfaces.len();
        let o_interfaces = h.chain(Operand::O).len().saturating_sub(1);
        for level in 0..o_interfaces {
            out.psums.push(live.psum(level));
        }
        out
    }
}

impl ArchSlots for FoldedSlots {
    fn interface(&self, op: Operand, level: usize) -> LinkConsts {
        self.interfaces[self.offsets[op.index()] + level]
    }

    fn psum(&self, level: usize) -> LinkConsts {
        self.psums[level]
    }

    fn compute(&self, op: Operand) -> LinkConsts {
        self.computes[op.index()].expect("folded for every operand")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;

    #[test]
    fn folded_slots_capture_live_values() {
        for chip in [
            presets::toy_chip(),
            presets::fusion_chip(),
            presets::scaled_case_study_chip(16, 128),
            presets::tpu_like_chip(8),
        ] {
            let h = chip.arch.hierarchy();
            let live = LiveSlots::new(h);
            let folded = FoldedSlots::fold(h);
            for op in Operand::all() {
                for level in 0..h.chain(op).len().saturating_sub(1) {
                    assert_eq!(folded.interface(op, level), live.interface(op, level));
                }
                assert_eq!(folded.compute(op), live.compute(op));
            }
            for level in 0..h.chain(Operand::O).len().saturating_sub(1) {
                assert_eq!(folded.psum(level), live.psum(level));
            }
        }
    }
}
