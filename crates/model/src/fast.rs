//! Allocation-free scalar evaluation for mapping search.
//!
//! Both [`LatencyModel::evaluate`] and [`LatencyModel::evaluate_fast`]
//! run the **same** core: lower the view into the [`LoweredLayer`] IR
//! (Step 1), combine-and-
//! integrate the stall pipeline over its DTLs (Steps 2–3), and compose
//! the phase totals with [`FastLatency::compose`]. `evaluate` then
//! assembles the human-readable diagnostic report on top; `evaluate_fast`
//! stops at the scalars, reusing a [`ModelScratch`] so the steady-state
//! path performs zero heap allocations. The numbers are bit-identical by
//! construction — they come out of one code path, not two kept in sync.

use crate::delta::{InputDelta, RebuildStats};
use crate::lower::LoweredLayer;
use crate::phases;
use crate::stall::StallScratch;
use crate::LatencyModel;
use ulm_arch::Architecture;
use ulm_mapping::MappedLayer;

/// Reusable buffers for [`LatencyModel::evaluate_fast`]: the lowered IR
/// plus the Step-2/3 stall pipeline buffers.
#[derive(Debug, Default)]
pub struct ModelScratch {
    lowered: LoweredLayer,
    stall: StallScratch,
}

impl ModelScratch {
    /// The IR produced by the most recent evaluation through this
    /// scratch. Other consumers (energy, sim) can read the same lowering
    /// instead of re-deriving it.
    pub fn lowered(&self) -> &LoweredLayer {
        &self.lowered
    }

    pub(crate) fn parts(&mut self) -> (&LoweredLayer, &mut StallScratch) {
        (&self.lowered, &mut self.stall)
    }

    pub(crate) fn lowered_mut(&mut self) -> &mut LoweredLayer {
        &mut self.lowered
    }
}

/// The scalar subset of a latency report, produced without allocating.
///
/// Every field is bit-identical to the corresponding
/// [`LatencyReport`](crate::LatencyReport) field from
/// [`LatencyModel::evaluate`] on the same view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastLatency {
    /// `CC_ideal` (may be fractional).
    pub cc_ideal: f64,
    /// `CC_spatial`: the temporal iteration count.
    pub cc_spatial: u64,
    /// `SS_overall` after the zero clamp (0 for bw-unaware models).
    pub ss_overall: f64,
    /// Pre-load phase cycles.
    pub preload: u64,
    /// Off-load phase cycles.
    pub offload: u64,
    /// End-to-end latency in cycles.
    pub cc_total: f64,
    /// `CC_ideal / CC_total`.
    pub utilization: f64,
}

impl FastLatency {
    /// The one place the latency composition
    /// `CC_total = preload + CC_spatial + SS_overall + offload` (and the
    /// derived utilization) is written down. Every evaluation path —
    /// slow, fast, and the mapper's pruning floor — goes through here, so
    /// their floats agree bit for bit.
    pub fn compose(
        preload: u64,
        offload: u64,
        cc_ideal: f64,
        cc_spatial: u64,
        ss_overall: f64,
    ) -> Self {
        let cc_total = preload as f64 + cc_spatial as f64 + ss_overall + offload as f64;
        let utilization = cc_ideal / cc_total;
        FastLatency {
            cc_ideal,
            cc_spatial,
            ss_overall,
            preload,
            offload,
            cc_total,
            utilization,
        }
    }
}

impl LatencyModel {
    /// Evaluates the mapped layer to scalar totals only, reusing
    /// `scratch` buffers so the steady-state path allocates nothing.
    ///
    /// Returns the same numbers (bit for bit) as
    /// [`evaluate`](Self::evaluate); only the diagnostic report layer is
    /// skipped.
    pub fn evaluate_fast(&self, view: &MappedLayer<'_>, scratch: &mut ModelScratch) -> FastLatency {
        LoweredLayer::build_into(view, self.dtl_options(), &mut scratch.lowered);
        self.core(view.arch(), &scratch.lowered, &mut scratch.stall, false)
    }

    /// Incremental [`evaluate_fast`](Self::evaluate_fast): rebuilds
    /// only the IR stages invalidated by `delta` and, when only
    /// bandwidths moved, reuses the cached per-port window unions from
    /// the scratch's previous Step 2. Bit-identical to a from-scratch
    /// `evaluate_fast` on the same view — the reused pieces are exactly
    /// the ones the changed inputs cannot reach.
    ///
    /// `scratch` must hold the previous evaluation of the *same* layer
    /// and mapping (a fresh scratch degrades gracefully to a full
    /// rebuild); `delta` describes what changed since then — typically
    /// [`InputDelta::between`] the two architectures.
    pub fn evaluate_delta_fast(
        &self,
        view: &MappedLayer<'_>,
        delta: InputDelta,
        scratch: &mut ModelScratch,
    ) -> (FastLatency, RebuildStats) {
        let stats = scratch
            .lowered
            .rebuild_dirty(view, self.dtl_options(), delta);
        let opts = self.options();
        let ss_overall = if opts.bw_aware {
            let (lowered, stall) = scratch.parts();
            let recombined = if stats.was_full_rebuild() {
                None
            } else {
                stall.recombine_and_integrate(
                    view.arch(),
                    lowered.dtls(),
                    opts.eq2_oversubscription_bound,
                )
            };
            let raw = match recombined {
                Some(v) => v,
                None => stall.combine_and_integrate(
                    view.arch(),
                    lowered.dtls(),
                    opts.union,
                    opts.eq2_oversubscription_bound,
                ),
            };
            raw.max(0.0)
        } else {
            0.0
        };
        (scratch.lowered.totals(ss_overall), stats)
    }

    /// [`evaluate_fast`](Self::evaluate_fast) over an already-lowered
    /// layer: Steps 2–3 plus the phase composition, no re-lowering.
    pub fn evaluate_lowered_fast(
        &self,
        arch: &Architecture,
        lowered: &LoweredLayer,
        stall: &mut StallScratch,
    ) -> FastLatency {
        self.core(arch, lowered, stall, false)
    }

    /// Steps 2–3 and the phase composition — THE shared core.
    ///
    /// `force_combine` runs the port analysis even for bandwidth-unaware
    /// models so the report path can surface port/memory diagnostics;
    /// `ss_overall` is still forced to zero in that case, exactly as the
    /// unaware model defines it.
    pub(crate) fn core(
        &self,
        arch: &Architecture,
        lowered: &LoweredLayer,
        stall: &mut StallScratch,
        force_combine: bool,
    ) -> FastLatency {
        let opts = self.options();
        let ss_overall = if opts.bw_aware || force_combine {
            let raw = stall.combine_and_integrate(
                arch,
                lowered.dtls(),
                opts.union,
                opts.eq2_oversubscription_bound,
            );
            if opts.bw_aware {
                raw.max(0.0)
            } else {
                0.0
            }
        } else {
            0.0
        };
        lowered.totals(ss_overall)
    }

    /// An exact, allocation-free lower bound on
    /// [`evaluate`](Self::evaluate)`.cc_total`: the latency with the
    /// temporal stall assumed zero. Since `SS_overall >= 0` and the total
    /// is the float sum `((preload + cc_spatial) + ss) + offload`, this
    /// bound can never exceed the true total — the branch-and-bound
    /// search prunes on it without risking the argmin. Computed straight
    /// from the view (no DTL/window construction), so pruned candidates
    /// never pay for a full lowering.
    pub fn phase_floor(&self, view: &MappedLayer<'_>) -> f64 {
        FastLatency::compose(
            phases::preload_cycles(view),
            phases::offload_cycles(view),
            view.cc_ideal(),
            view.cc_spatial(),
            0.0,
        )
        .cc_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_mapping::{LoopStack, Mapping, SpatialUnroll};
    use ulm_workload::{Dim, Layer, Precision};

    fn views() -> Vec<(ulm_arch::Architecture, Layer, Mapping)> {
        let mut out = Vec::new();
        let toy = presets::toy_chip();
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        for stack in [
            vec![(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)],
            vec![(Dim::B, 2), (Dim::K, 2), (Dim::C, 8)],
            vec![(Dim::C, 4), (Dim::B, 2), (Dim::K, 2), (Dim::C, 2)],
        ] {
            let mapping = Mapping::with_greedy_alloc(
                &toy.arch,
                &layer,
                SpatialUnroll::new(toy.spatial.clone()),
                LoopStack::from_pairs(&stack),
            )
            .unwrap();
            out.push((toy.arch.clone(), layer.clone(), mapping));
        }
        let cs = presets::case_study_chip(128);
        let big = Layer::matmul("big", 64, 96, 640, Precision::int8_out24());
        let mapping = Mapping::with_greedy_alloc(
            &cs,
            &big,
            SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]),
            LoopStack::from_pairs(&[(Dim::C, 320), (Dim::B, 8), (Dim::K, 6)]),
        )
        .unwrap();
        out.push((cs, big, mapping));
        out
    }

    #[test]
    fn fast_matches_full_bitwise() {
        let mut scratch = ModelScratch::default();
        for model in [LatencyModel::new(), LatencyModel::bw_unaware()] {
            for (arch, layer, mapping) in views() {
                let view = MappedLayer::new(&layer, &arch, &mapping).unwrap();
                let full = model.evaluate(&view);
                let fast = model.evaluate_fast(&view, &mut scratch);
                assert_eq!(full.cc_total.to_bits(), fast.cc_total.to_bits());
                assert_eq!(full.ss_overall.to_bits(), fast.ss_overall.to_bits());
                assert_eq!(full.utilization.to_bits(), fast.utilization.to_bits());
                assert_eq!(full.preload, fast.preload);
                assert_eq!(full.offload, fast.offload);
                assert_eq!(full.cc_spatial, fast.cc_spatial);
            }
        }
    }

    #[test]
    fn lowered_fast_matches_fast() {
        let model = LatencyModel::new();
        let mut scratch = ModelScratch::default();
        for (arch, layer, mapping) in views() {
            let view = MappedLayer::new(&layer, &arch, &mapping).unwrap();
            let fast = model.evaluate_fast(&view, &mut scratch);
            let lowered = LoweredLayer::build(&view, model.dtl_options());
            let mut stall = StallScratch::default();
            let via_ir = model.evaluate_lowered_fast(&arch, &lowered, &mut stall);
            assert_eq!(fast.cc_total.to_bits(), via_ir.cc_total.to_bits());
            assert_eq!(fast.ss_overall.to_bits(), via_ir.ss_overall.to_bits());
        }
    }

    #[test]
    fn delta_fast_matches_cold_eval_on_knob_neighbors() {
        use crate::whatif::apply_overrides;
        for model in [LatencyModel::new(), LatencyModel::bw_unaware()] {
            let mut scratch = ModelScratch::default();
            for (arch, layer, mapping) in views() {
                let overrides: Vec<String> = arch
                    .hierarchy()
                    .memories()
                    .iter()
                    .flat_map(|m| {
                        ["bw=2x", "bw=0.5x", "size=2x", "read_bw=3x"]
                            .iter()
                            .map(|s| format!("mem.{}.{}", m.name(), s))
                            .collect::<Vec<_>>()
                    })
                    .collect();
                for over in overrides {
                    // Establish the base lowering in the scratch.
                    let view = MappedLayer::new(&layer, &arch, &mapping).unwrap();
                    model.evaluate_fast(&view, &mut scratch);
                    let Ok((modified, delta)) = apply_overrides(&arch, &[over.as_str()]) else {
                        continue; // e.g. read_bw on a write-only memory
                    };
                    let mview = MappedLayer::new(&layer, &modified, &mapping).unwrap();
                    let (fast, stats) = model.evaluate_delta_fast(&mview, delta, &mut scratch);
                    let mut cold_scratch = ModelScratch::default();
                    let cold = model.evaluate_fast(&mview, &mut cold_scratch);
                    assert_eq!(
                        cold.cc_total.to_bits(),
                        fast.cc_total.to_bits(),
                        "{over}: delta vs cold diverged"
                    );
                    assert_eq!(cold.ss_overall.to_bits(), fast.ss_overall.to_bits());
                    assert_eq!(cold.utilization.to_bits(), fast.utilization.to_bits());
                    assert_eq!(cold.preload, fast.preload);
                    assert_eq!(cold.offload, fast.offload);
                    // Knob deltas never force a full rebuild.
                    assert!(
                        !stats.was_full_rebuild(),
                        "{over}: knob delta rebuilt everything"
                    );
                    if over.contains("size") {
                        assert_eq!(stats.stages_rebuilt, 0, "{over}: capacity is eval-free");
                    }
                    // The retained diagnostics must match a cold Step 2.
                    if model.options().bw_aware {
                        assert_eq!(
                            scratch.stall.port_groups(),
                            cold_scratch.stall.port_groups()
                        );
                        assert_eq!(
                            scratch.stall.memory_stalls(),
                            cold_scratch.stall.memory_stalls()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn phase_floor_lower_bounds_total() {
        let model = LatencyModel::new();
        let mut scratch = ModelScratch::default();
        for (arch, layer, mapping) in views() {
            let view = MappedLayer::new(&layer, &arch, &mapping).unwrap();
            let floor = model.phase_floor(&view);
            let fast = model.evaluate_fast(&view, &mut scratch);
            assert!(floor <= fast.cc_total, "{floor} > {}", fast.cc_total);
        }
    }
}
