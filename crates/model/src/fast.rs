//! Allocation-free scalar evaluation for mapping search.
//!
//! [`LatencyModel::evaluate`] builds a full [`LatencyReport`] with
//! human-readable diagnostics — per-DTL labels, port tables, bottleneck
//! names — all of which allocate and none of which a mapping search
//! reads. [`LatencyModel::evaluate_fast`] runs the identical Step-1/2/3
//! pipeline (the same functions, in the same order, on the same floats)
//! but stops at the scalar totals, reusing a [`ModelScratch`] so the
//! steady-state path performs zero heap allocations.
//!
//! [`LatencyReport`]: crate::LatencyReport

use crate::dtl::{self, Dtl, DtlOptions};
use crate::stall::StallScratch;
use crate::{phases, LatencyModel};
use ulm_mapping::MappedLayer;

/// Reusable buffers for [`LatencyModel::evaluate_fast`].
#[derive(Debug, Default)]
pub struct ModelScratch {
    dtls: Vec<Dtl>,
    stall: StallScratch,
}

/// The scalar subset of a latency report, produced without allocating.
///
/// Every field is bit-identical to the corresponding
/// [`LatencyReport`](crate::LatencyReport) field from
/// [`LatencyModel::evaluate`] on the same view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FastLatency {
    /// `CC_ideal` (may be fractional).
    pub cc_ideal: f64,
    /// `CC_spatial`: the temporal iteration count.
    pub cc_spatial: u64,
    /// `SS_overall` after the zero clamp (0 for bw-unaware models).
    pub ss_overall: f64,
    /// Pre-load phase cycles.
    pub preload: u64,
    /// Off-load phase cycles.
    pub offload: u64,
    /// End-to-end latency in cycles.
    pub cc_total: f64,
    /// `CC_ideal / CC_total`.
    pub utilization: f64,
}

impl LatencyModel {
    /// Evaluates the mapped layer to scalar totals only, reusing
    /// `scratch` buffers so the steady-state path allocates nothing.
    ///
    /// Returns the same numbers (bit for bit) as
    /// [`evaluate`](Self::evaluate); only the diagnostic report layer is
    /// skipped.
    pub fn evaluate_fast(&self, view: &MappedLayer<'_>, scratch: &mut ModelScratch) -> FastLatency {
        let opts = self.options();

        // Step 1: divide.
        dtl::build_dtls_into(
            view,
            DtlOptions {
                compute_links: opts.compute_links,
                phase_aware_z: opts.phase_aware_z,
            },
            &mut scratch.dtls,
        );

        // Steps 2 & 3: combine and integrate.
        let ss_overall = if opts.bw_aware {
            let raw = scratch.stall.combine_and_integrate(
                view.arch(),
                &scratch.dtls,
                opts.union,
                opts.eq2_oversubscription_bound,
            );
            raw.max(0.0)
        } else {
            0.0
        };

        scalar_totals(view, ss_overall)
    }

    /// An exact, allocation-free lower bound on
    /// [`evaluate`](Self::evaluate)`.cc_total`: the latency with the
    /// temporal stall assumed zero. Since `SS_overall >= 0` and the total
    /// is the float sum `((preload + cc_spatial) + ss) + offload`, this
    /// bound can never exceed the true total — the branch-and-bound
    /// search prunes on it without risking the argmin.
    pub fn phase_floor(&self, view: &MappedLayer<'_>) -> f64 {
        scalar_totals(view, 0.0).cc_total
    }
}

/// Phase/scenario arithmetic shared by `evaluate_fast` and `phase_floor`,
/// mirroring `evaluate`'s expressions exactly.
fn scalar_totals(view: &MappedLayer<'_>, ss_overall: f64) -> FastLatency {
    let preload = phases::preload_cycles(view);
    let offload = phases::offload_cycles(view);
    let cc_ideal = view.cc_ideal();
    let cc_spatial = view.cc_spatial();
    let cc_total = preload as f64 + cc_spatial as f64 + ss_overall + offload as f64;
    let utilization = cc_ideal / cc_total;
    FastLatency {
        cc_ideal,
        cc_spatial,
        ss_overall,
        preload,
        offload,
        cc_total,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_mapping::{LoopStack, Mapping, SpatialUnroll};
    use ulm_workload::{Dim, Layer, Precision};

    fn views() -> Vec<(ulm_arch::Architecture, Layer, Mapping)> {
        let mut out = Vec::new();
        let toy = presets::toy_chip();
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        for stack in [
            vec![(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)],
            vec![(Dim::B, 2), (Dim::K, 2), (Dim::C, 8)],
            vec![(Dim::C, 4), (Dim::B, 2), (Dim::K, 2), (Dim::C, 2)],
        ] {
            let mapping = Mapping::with_greedy_alloc(
                &toy.arch,
                &layer,
                SpatialUnroll::new(toy.spatial.clone()),
                LoopStack::from_pairs(&stack),
            )
            .unwrap();
            out.push((toy.arch.clone(), layer.clone(), mapping));
        }
        let cs = presets::case_study_chip(128);
        let big = Layer::matmul("big", 64, 96, 640, Precision::int8_out24());
        let mapping = Mapping::with_greedy_alloc(
            &cs,
            &big,
            SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]),
            LoopStack::from_pairs(&[(Dim::C, 320), (Dim::B, 8), (Dim::K, 6)]),
        )
        .unwrap();
        out.push((cs, big, mapping));
        out
    }

    #[test]
    fn fast_matches_full_bitwise() {
        let mut scratch = ModelScratch::default();
        for model in [LatencyModel::new(), LatencyModel::bw_unaware()] {
            for (arch, layer, mapping) in views() {
                let view = MappedLayer::new(&layer, &arch, &mapping).unwrap();
                let full = model.evaluate(&view);
                let fast = model.evaluate_fast(&view, &mut scratch);
                assert_eq!(full.cc_total.to_bits(), fast.cc_total.to_bits());
                assert_eq!(full.ss_overall.to_bits(), fast.ss_overall.to_bits());
                assert_eq!(full.utilization.to_bits(), fast.utilization.to_bits());
                assert_eq!(full.preload, fast.preload);
                assert_eq!(full.offload, fast.offload);
                assert_eq!(full.cc_spatial, fast.cc_spatial);
            }
        }
    }

    #[test]
    fn phase_floor_lower_bounds_total() {
        let model = LatencyModel::new();
        let mut scratch = ModelScratch::default();
        for (arch, layer, mapping) in views() {
            let view = MappedLayer::new(&layer, &arch, &mapping).unwrap();
            let floor = model.phase_floor(&view);
            let fast = model.evaluate_fast(&view, &mut scratch);
            assert!(floor <= fast.cc_total, "{floor} > {}", fast.cc_total);
        }
    }
}
