//! The latency report: totals, breakdown, per-DTL / per-port / per-memory
//! diagnostics and the Fig. 1b scenario classification.

use crate::dtl::DtlKind;
use std::fmt;
use ulm_workload::Operand;

/// The four computation-phase scenarios of Fig. 1(b), classified by
/// whether the MAC array is spatially and temporally fully mapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Scenario {
    /// Spatially and temporally fully mapped: `CC = CC_ideal`, `U = 100%`.
    FullyMapped,
    /// Temporally full, spatially under-mapped: `CC = CC_spatial`.
    SpatialOnly,
    /// Spatially full, temporally stalled: `CC = CC_ideal + SS_overall`.
    TemporalOnly,
    /// Under-mapped both ways: `CC = CC_spatial + SS_overall`.
    Both,
}

impl Scenario {
    /// Classifies from the two under-utilization indicators.
    pub fn classify(spatial_full: bool, temporal_full: bool) -> Self {
        match (spatial_full, temporal_full) {
            (true, true) => Scenario::FullyMapped,
            (false, true) => Scenario::SpatialOnly,
            (true, false) => Scenario::TemporalOnly,
            (false, false) => Scenario::Both,
        }
    }

    /// The scenario's number in Fig. 1(b) (1–4).
    pub fn number(&self) -> u8 {
        match self {
            Scenario::FullyMapped => 1,
            Scenario::SpatialOnly => 2,
            Scenario::TemporalOnly => 3,
            Scenario::Both => 4,
        }
    }
}

/// Per-DTL diagnostics (Step 1 outputs).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DtlReport {
    /// Human-readable label, e.g. `"W refill @W-Reg"`.
    pub label: String,
    /// The operand.
    pub operand: Operand,
    /// The link kind.
    pub kind: DtlKind,
    /// Bits per period.
    pub data_bits: u64,
    /// `Mem_CC`.
    pub period: u64,
    /// `Z`.
    pub z: u64,
    /// `ReqBW_u`, bits/cycle.
    pub req_bw: f64,
    /// `RealBW`, bits/cycle.
    pub real_bw: f64,
    /// `SS_u`, cycles (stall +, slack −).
    pub ss_u: f64,
}

/// Per-port diagnostics (Step 2 outputs).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PortReport {
    /// Memory name.
    pub memory: String,
    /// Port index within the memory.
    pub port: usize,
    /// `ReqBW_comb`, bits/cycle.
    pub req_bw_comb: f64,
    /// Physical port bandwidth, bits/cycle.
    pub real_bw: f64,
    /// `MUW_comb` measure, cycles.
    pub muw_comb: f64,
    /// Whether `MUW_comb` was exact.
    pub muw_exact: bool,
    /// `SS_comb`, cycles.
    pub ss_comb: f64,
    /// Minimum bandwidth (bits/cycle) that would make the port stall-free.
    pub min_stall_free_bw: f64,
    /// Labels of the DTLs sharing the port.
    pub dtls: Vec<String>,
}

/// Per-memory stall (input to Step 3).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MemReport {
    /// Memory name.
    pub memory: String,
    /// The memory's stall (max over its ports), cycles.
    pub ss: f64,
}

/// The complete result of a latency evaluation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LatencyReport {
    /// `CC_ideal` (may be fractional).
    pub cc_ideal: f64,
    /// `CC_spatial` (temporal iteration count).
    pub cc_spatial: u64,
    /// Spatial stall: `CC_spatial − CC_ideal`.
    pub spatial_stall: f64,
    /// `SS_overall` after the clamp at zero.
    pub ss_overall: f64,
    /// Pre-loading cycles.
    pub preload: u64,
    /// Off-loading cycles.
    pub offload: u64,
    /// Total latency: `preload + CC_spatial + SS_overall + offload`.
    pub cc_total: f64,
    /// Overall MAC-array utilization `CC_ideal / CC_total`.
    pub utilization: f64,
    /// Spatial utilization `CC_ideal / CC_spatial`.
    pub spatial_utilization: f64,
    /// Temporal utilization `CC_spatial / (CC_spatial + SS_overall)`.
    pub temporal_utilization: f64,
    /// Fig. 1b scenario.
    pub scenario: Scenario,
    /// Name of the memory bounding `SS_overall`, when stalled.
    pub bottleneck: Option<String>,
    /// Step-1 diagnostics.
    pub dtls: Vec<DtlReport>,
    /// Step-2 diagnostics.
    pub ports: Vec<PortReport>,
    /// Step-2/3 per-memory stalls.
    pub memories: Vec<MemReport>,
}

/// One actionable bandwidth fix (Section V-A: match `ReqBW` to `RealBW`).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BandwidthFix {
    /// The stalling memory and port.
    pub port: String,
    /// Its current bandwidth, bits/cycle.
    pub current_bw: f64,
    /// The minimum stall-free bandwidth, bits/cycle.
    pub required_bw: f64,
    /// The stall the port contributes, cycles.
    pub stall: f64,
}

impl LatencyReport {
    /// The paper's co-design guidance: for every stalling port, the
    /// bandwidth upgrade that would silence it, ordered by stall size.
    /// (The alternative fix — reducing the frequent access of the low-BW
    /// link by re-mapping — is what the mapper search explores.)
    pub fn bandwidth_fixes(&self) -> Vec<BandwidthFix> {
        let mut fixes: Vec<BandwidthFix> = self
            .ports
            .iter()
            .filter(|p| p.ss_comb > 0.0)
            .map(|p| BandwidthFix {
                port: format!("{} p{}", p.memory, p.port),
                current_bw: p.real_bw,
                required_bw: p.min_stall_free_bw,
                stall: p.ss_comb,
            })
            .collect();
        fixes.sort_by(|a, b| b.stall.total_cmp(&a.stall));
        fixes
    }

    /// Total latency rounded up to whole cycles.
    pub fn cc_total_cycles(&self) -> u64 {
        self.cc_total.ceil() as u64
    }

    /// Computation-phase latency (no load/offload): `CC_spatial +
    /// SS_overall`.
    pub fn cc_compute(&self) -> f64 {
        self.cc_spatial as f64 + self.ss_overall
    }
}

impl fmt::Display for LatencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "latency: {:.0} cycles (scenario {})",
            self.cc_total,
            self.scenario.number()
        )?;
        writeln!(
            f,
            "  preload {} | ideal {:.0} | spatial stall {:.0} | temporal stall {:.0} | offload {}",
            self.preload, self.cc_ideal, self.spatial_stall, self.ss_overall, self.offload
        )?;
        writeln!(
            f,
            "  utilization {:.1}% (spatial {:.1}%, temporal {:.1}%)",
            self.utilization * 100.0,
            self.spatial_utilization * 100.0,
            self.temporal_utilization * 100.0
        )?;
        if let Some(b) = &self.bottleneck {
            writeln!(f, "  bottleneck: {b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_classification_matrix() {
        assert_eq!(Scenario::classify(true, true), Scenario::FullyMapped);
        assert_eq!(Scenario::classify(false, true), Scenario::SpatialOnly);
        assert_eq!(Scenario::classify(true, false), Scenario::TemporalOnly);
        assert_eq!(Scenario::classify(false, false), Scenario::Both);
        assert_eq!(Scenario::FullyMapped.number(), 1);
        assert_eq!(Scenario::Both.number(), 4);
    }

    #[test]
    fn display_contains_breakdown() {
        let r = LatencyReport {
            cc_ideal: 100.0,
            cc_spatial: 120,
            spatial_stall: 20.0,
            ss_overall: 30.0,
            preload: 5,
            offload: 7,
            cc_total: 162.0,
            utilization: 100.0 / 162.0,
            spatial_utilization: 100.0 / 120.0,
            temporal_utilization: 120.0 / 150.0,
            scenario: Scenario::Both,
            bottleneck: Some("GB".into()),
            dtls: vec![],
            ports: vec![],
            memories: vec![],
        };
        let s = r.to_string();
        assert!(s.contains("162"), "{s}");
        assert!(s.contains("GB"), "{s}");
        assert_eq!(r.cc_total_cycles(), 162);
        assert!((r.cc_compute() - 150.0).abs() < 1e-12);
    }
}
