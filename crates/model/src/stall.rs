//! Steps 2 and 3: combine DTL attributes over shared ports and memory
//! modules (Eq. (1)/(2)), then integrate across the hierarchy into the
//! overall temporal stall `SS_overall`.

use crate::dtl::Dtl;
use std::collections::BTreeMap;
use ulm_arch::{Architecture, MemoryId, PortId, StallIntegration};
use ulm_periodic::PeriodicWindow;
use ulm_periodic::{union_measure_scratch, UnionOptions, UnionScratch};

/// Step-2 result for one physical memory port.
#[derive(Debug, Clone, PartialEq)]
pub struct PortGroup {
    /// The memory owning the port.
    pub mem: MemoryId,
    /// The port index within the memory.
    pub port: PortId,
    /// Indices (into the DTL list) of the links sharing this port.
    pub dtl_indices: Vec<usize>,
    /// `ReqBW_comb`: summed required bandwidth on the port, bits/cycle.
    pub req_bw_comb: f64,
    /// `MUW_comb`: measure of the union of the links' updating windows.
    pub muw_comb: f64,
    /// Whether `MUW_comb` was computed exactly.
    pub muw_exact: bool,
    /// `SS_comb`: combined stall (+) or slack (−) of the port, cycles.
    pub ss_comb: f64,
    /// The minimum physical port bandwidth (bits/cycle) that would make
    /// this port stall-free, assuming it is the binding link constraint:
    /// `max(max_i ReqBW_u(i), Σ(data·Z) / MUW_comb)` — the paper's
    /// Section V-A guidance of "matching ReqBW with RealBW".
    pub min_stall_free_bw: f64,
}

/// Step-2 result for one memory module: the maximum over its ports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemStall {
    /// The memory.
    pub mem: MemoryId,
    /// `max` of the memory's port `SS_comb` values, cycles.
    pub ss: f64,
}

/// The Step-2 numbers of one port group, without the member index list —
/// the `Copy` core shared by [`combine_ports_with`] and the mapper's
/// allocation-free fast path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PortGroupCore {
    /// The memory owning the port.
    pub mem: MemoryId,
    /// The port index within the memory.
    pub port: PortId,
    /// `ReqBW_comb`: summed required bandwidth on the port, bits/cycle.
    pub req_bw_comb: f64,
    /// `MUW_comb`: measure of the union of the links' updating windows.
    pub muw_comb: f64,
    /// Whether `MUW_comb` was computed exactly.
    pub muw_exact: bool,
    /// `SS_comb`: combined stall (+) or slack (−) of the port, cycles.
    pub ss_comb: f64,
    /// Minimum stall-free physical bandwidth (see [`PortGroup`]).
    pub min_stall_free_bw: f64,
}

/// Reusable buffers for the allocation-free Step-2/3 pipeline.
///
/// After [`combine_and_integrate`](Self::combine_and_integrate) the
/// scratch retains the per-port groups and per-memory stalls it computed,
/// so report assembly can read the very numbers that produced
/// `SS_overall` instead of re-running the pipeline.
#[derive(Debug, Default)]
pub struct StallScratch {
    keys: Vec<(MemoryId, PortId, usize)>,
    windows: Vec<PeriodicWindow>,
    union: UnionScratch,
    groups: Vec<PortGroupCore>,
    mem_stalls: Vec<MemStall>,
    grouped: Vec<MemoryId>,
}

impl StallScratch {
    /// The Step-2 port groups of the most recent
    /// [`combine_and_integrate`](Self::combine_and_integrate), in
    /// ascending `(memory, port)` order.
    pub fn port_groups(&self) -> &[PortGroupCore] {
        &self.groups
    }

    /// The per-memory maxima of the most recent
    /// [`combine_and_integrate`](Self::combine_and_integrate).
    pub fn memory_stalls(&self) -> &[MemStall] {
        &self.mem_stalls
    }
}

/// Groups DTLs by `(memory, port)` and applies Eq. (1)/(2), calling `f`
/// once per group in ascending `(memory, port)` order with the combined
/// numbers and the member entries (`(mem, port, dtl index)`, ascending by
/// index). Both `combine_ports_with` and the fast path run through here,
/// so they produce bit-identical floating-point results by construction.
fn for_each_port_group(
    dtls: &[Dtl],
    union_opts: UnionOptions,
    oversubscription_bound: bool,
    keys: &mut Vec<(MemoryId, PortId, usize)>,
    windows: &mut Vec<PeriodicWindow>,
    union: &mut UnionScratch,
    mut f: impl FnMut(PortGroupCore, &[(MemoryId, PortId, usize)]),
) {
    keys.clear();
    for (i, d) in dtls.iter().enumerate() {
        for ep in &d.endpoints {
            keys.push((ep.mem, ep.port, i));
        }
    }
    // Sorting on (mem, port, index) reproduces both the BTreeMap group
    // order and the per-group insertion order of the original grouping.
    keys.sort_unstable();
    let mut start = 0;
    while start < keys.len() {
        let (mem, port, _) = keys[start];
        let mut end = start + 1;
        while end < keys.len() && keys[end].0 == mem && keys[end].1 == port {
            end += 1;
        }
        let group = &keys[start..end];
        let member = |&(_, _, i): &(MemoryId, PortId, usize)| &dtls[i];
        windows.clear();
        windows.extend(group.iter().map(|k| member(k).window));
        let muw = union_measure_scratch(windows, union_opts, union);
        let core = group_scalars(
            dtls,
            group,
            mem,
            port,
            muw.value(),
            muw.is_exact(),
            oversubscription_bound,
        );
        f(core, group);
        start = end;
    }
}

/// The Eq. (1)/(2) scalar math of one port group, given its combined
/// window measure. The window union (`MUW_comb`) is the expensive,
/// bandwidth-*independent* half of Step 2; this function is the cheap,
/// bandwidth-*dependent* half — the full combine and the delta
/// recombine both run it, so their floats agree bit for bit.
fn group_scalars(
    dtls: &[Dtl],
    group: &[(MemoryId, PortId, usize)],
    mem: MemoryId,
    port: PortId,
    muw_comb: f64,
    muw_exact: bool,
    oversubscription_bound: bool,
) -> PortGroupCore {
    // One pass over the members; every accumulator folds in member order,
    // so the floats match the per-quantity iterator sums they replace.
    let (mut sum_pos, mut all_busy, mut neg_busy) = (0.0f64, 0.0f64, 0.0f64);
    let (mut req_bw_comb, mut per_link, mut total_bits) = (0.0f64, 0.0f64, 0.0f64);
    for &(_, _, i) in group {
        let d = &dtls[i];
        let busy = d.busy();
        all_busy += busy;
        if d.ss_u <= 0.0 {
            neg_busy += busy;
        } else {
            sum_pos += d.ss_u;
        }
        req_bw_comb += d.req_bw;
        per_link = per_link.max(d.req_bw);
        total_bits += d.data_bits as f64 * d.z_stall as f64;
    }
    let ss_comb = ss_comb_from(
        sum_pos,
        all_busy,
        neg_busy,
        muw_comb,
        oversubscription_bound,
    );
    // Stall-free condition: every link individually non-positive
    // (bw >= its ReqBW_u) and the port not oversubscribed
    // (total bits through the window).
    let min_stall_free_bw = if muw_comb > 0.0 {
        per_link.max(total_bits / muw_comb)
    } else {
        per_link
    };
    PortGroupCore {
        mem,
        port,
        req_bw_comb,
        muw_comb,
        muw_exact,
        ss_comb,
        min_stall_free_bw,
    }
}

/// The Eq. (1)/(2) decision over a group's stall accumulators.
fn ss_comb_from(
    sum_pos: f64,
    all_busy: f64,
    neg_busy: f64,
    muw_comb: f64,
    oversubscription_bound: bool,
) -> f64 {
    if sum_pos == 0.0 {
        // Eq. (1): Σ (MUW_u + SS_u) − MUW_comb = Σ busy − MUW_comb.
        all_busy - muw_comb
    } else {
        // Eq. (2): positive stalls survive; the rest combine as (1).
        let eq2 = sum_pos + (neg_busy - muw_comb).max(0.0);
        if oversubscription_bound {
            // Refinement over the paper's literal Eq. (2): a link
            // that stalls by itself still *occupies* the shared
            // window, so the port can never beat the Eq. (1)
            // oversubscription bound. Take the tighter (larger).
            eq2.max(all_busy - muw_comb)
        } else {
            eq2
        }
    }
}

impl StallScratch {
    /// Steps 2 and 3 without allocating: per-port Eq. (1)/(2), the
    /// per-memory max, and the cross-memory integration policy, all on
    /// internal buffers. Equivalent (bit for bit) to
    /// `integrate(arch, &combine_memories(&combine_ports_with(..)))`.
    pub fn combine_and_integrate(
        &mut self,
        arch: &Architecture,
        dtls: &[Dtl],
        union_opts: UnionOptions,
        oversubscription_bound: bool,
    ) -> f64 {
        let Self {
            keys,
            windows,
            union,
            groups,
            mem_stalls,
            grouped,
        } = self;
        groups.clear();
        mem_stalls.clear();
        for_each_port_group(
            dtls,
            union_opts,
            oversubscription_bound,
            keys,
            windows,
            union,
            |core, _| {
                groups.push(core);
                match mem_stalls.last_mut() {
                    Some(last) if last.mem == core.mem => last.ss = last.ss.max(core.ss_comb),
                    _ => mem_stalls.push(MemStall {
                        mem: core.mem,
                        ss: core.ss_comb,
                    }),
                }
            },
        );
        integrate_with(arch, mem_stalls, grouped)
    }

    /// Bandwidth-delta Steps 2–3: reuse everything the last
    /// [`combine_and_integrate`](Self::combine_and_integrate) computed
    /// that bandwidth cannot reach — the sorted port grouping itself, the
    /// per-port window unions (`MUW_comb`), `ReqBW_comb` and the
    /// stall-free bandwidth — and recompute only the Eq. (1)/(2) stall
    /// accumulators over the refreshed DTL columns.
    ///
    /// The cached grouping must still describe `dtls`; this is verified
    /// key by key against the current endpoint lists, and on any mismatch
    /// (or when nothing is cached) the call returns `None` so the caller
    /// falls back to the full combine. On success the retained
    /// [`port_groups`](Self::port_groups) and
    /// [`memory_stalls`](Self::memory_stalls) are updated exactly as a
    /// full combine would have left them.
    pub fn recombine_and_integrate(
        &mut self,
        arch: &Architecture,
        dtls: &[Dtl],
        oversubscription_bound: bool,
    ) -> Option<f64> {
        let Self {
            keys,
            windows: _,
            union: _,
            groups,
            mem_stalls,
            grouped,
        } = self;
        if groups.is_empty() && !dtls.is_empty() {
            return None;
        }
        // The cached sorted keys are reusable iff they are exactly the
        // endpoint multiset of `dtls`: same total count, every entry
        // present on its link. (Bandwidth refreshes never move endpoints,
        // so in the delta pipeline this always holds.)
        let total: usize = dtls.iter().map(|d| d.endpoints.len()).sum();
        if keys.len() != total {
            return None;
        }
        let covers = |&(mem, port, i): &(MemoryId, PortId, usize)| {
            dtls.get(i)
                .is_some_and(|d| d.endpoints.iter().any(|e| e.mem == mem && e.port == port))
        };
        if !keys.iter().all(covers) {
            return None;
        }
        mem_stalls.clear();
        let mut gi = 0;
        let mut start = 0;
        while start < keys.len() {
            let (mem, port, _) = keys[start];
            let mut end = start + 1;
            while end < keys.len() && keys[end].0 == mem && keys[end].1 == port {
                end += 1;
            }
            let cached = groups.get_mut(gi)?;
            if cached.mem != mem || cached.port != port {
                return None;
            }
            // Same accumulator order as `group_scalars`, restricted to
            // the bandwidth-dependent quantities.
            let (mut sum_pos, mut all_busy, mut neg_busy) = (0.0f64, 0.0f64, 0.0f64);
            for &(_, _, i) in &keys[start..end] {
                let d = &dtls[i];
                let busy = d.busy();
                all_busy += busy;
                if d.ss_u <= 0.0 {
                    neg_busy += busy;
                } else {
                    sum_pos += d.ss_u;
                }
            }
            cached.ss_comb = ss_comb_from(
                sum_pos,
                all_busy,
                neg_busy,
                cached.muw_comb,
                oversubscription_bound,
            );
            match mem_stalls.last_mut() {
                Some(last) if last.mem == cached.mem => last.ss = last.ss.max(cached.ss_comb),
                _ => mem_stalls.push(MemStall {
                    mem: cached.mem,
                    ss: cached.ss_comb,
                }),
            }
            gi += 1;
            start = end;
        }
        if gi != groups.len() {
            return None;
        }
        Some(integrate_with(arch, mem_stalls, grouped))
    }

    /// Workload-delta Steps 2–3 for the surrogate: reuse only the sorted
    /// port grouping (the endpoint keys) from the last
    /// [`combine_and_integrate`](Self::combine_and_integrate) and
    /// recompute everything else — windows, window unions and all group
    /// scalars change with the workload dims, unlike the bandwidth-delta
    /// case [`recombine_and_integrate`](Self::recombine_and_integrate)
    /// handles. What is saved is the per-endpoint key build and its sort.
    ///
    /// The cached keys must still be exactly the endpoint multiset of
    /// `dtls`; the same per-key check as the bandwidth recombine guards
    /// this, and any mismatch (e.g. a dim change that adds or removes a
    /// partial-sum link) returns `None` so the caller falls back to the
    /// full combine. On success the result and the retained
    /// [`port_groups`](Self::port_groups) /
    /// [`memory_stalls`](Self::memory_stalls) are bit-identical to a full
    /// combine: the group scan below is the post-sort half of the full
    /// path over the same keys.
    pub fn combine_with_cached_grouping(
        &mut self,
        arch: &Architecture,
        dtls: &[Dtl],
        union_opts: UnionOptions,
        oversubscription_bound: bool,
    ) -> Option<f64> {
        let Self {
            keys,
            windows,
            union,
            groups,
            mem_stalls,
            grouped,
        } = self;
        if keys.is_empty() && !dtls.is_empty() {
            return None;
        }
        let total: usize = dtls.iter().map(|d| d.endpoints.len()).sum();
        if keys.len() != total {
            return None;
        }
        let covers = |&(mem, port, i): &(MemoryId, PortId, usize)| {
            dtls.get(i)
                .is_some_and(|d| d.endpoints.iter().any(|e| e.mem == mem && e.port == port))
        };
        if !keys.iter().all(covers) {
            return None;
        }
        groups.clear();
        mem_stalls.clear();
        let mut start = 0;
        while start < keys.len() {
            let (mem, port, _) = keys[start];
            let mut end = start + 1;
            while end < keys.len() && keys[end].0 == mem && keys[end].1 == port {
                end += 1;
            }
            let group = &keys[start..end];
            windows.clear();
            windows.extend(group.iter().map(|&(_, _, i)| dtls[i].window));
            let muw = union_measure_scratch(windows, union_opts, union);
            let core = group_scalars(
                dtls,
                group,
                mem,
                port,
                muw.value(),
                muw.is_exact(),
                oversubscription_bound,
            );
            groups.push(core);
            match mem_stalls.last_mut() {
                Some(last) if last.mem == core.mem => last.ss = last.ss.max(core.ss_comb),
                _ => mem_stalls.push(MemStall {
                    mem: core.mem,
                    ss: core.ss_comb,
                }),
            }
            start = end;
        }
        Some(integrate_with(arch, mem_stalls, grouped))
    }
}

/// Groups DTLs by the physical ports they occupy and applies Eq. (1)/(2).
///
/// Equation (1) — no link stalls by itself (`SS_u ≤ 0` for all): the port
/// stalls by however much the summed busy time exceeds the combined
/// window. Equation (2) — some links already stall: their stalls add up
/// and can never be cancelled by other links' slack; the remaining links'
/// busy time is checked against the window as in Eq. (1).
pub fn combine_ports(dtls: &[Dtl], union_opts: UnionOptions) -> Vec<PortGroup> {
    combine_ports_with(dtls, union_opts, true)
}

/// [`combine_ports`] with the Eq. (2) oversubscription refinement
/// switchable (`false` reproduces the paper's literal Eq. (2); see the
/// ablation bench).
pub fn combine_ports_with(
    dtls: &[Dtl],
    union_opts: UnionOptions,
    oversubscription_bound: bool,
) -> Vec<PortGroup> {
    let mut out = Vec::new();
    let mut keys = Vec::new();
    let mut windows = Vec::new();
    let mut union = UnionScratch::default();
    for_each_port_group(
        dtls,
        union_opts,
        oversubscription_bound,
        &mut keys,
        &mut windows,
        &mut union,
        |core, group| {
            out.push(PortGroup {
                mem: core.mem,
                port: core.port,
                dtl_indices: group.iter().map(|&(_, _, i)| i).collect(),
                req_bw_comb: core.req_bw_comb,
                muw_comb: core.muw_comb,
                muw_exact: core.muw_exact,
                ss_comb: core.ss_comb,
                min_stall_free_bw: core.min_stall_free_bw,
            });
        },
    );
    out
}

/// Per memory module, takes the maximum `SS_comb` over its ports
/// ("Combine SS @same served mem", Fig. 2b).
pub fn combine_memories(groups: &[PortGroup]) -> Vec<MemStall> {
    let mut by_mem: BTreeMap<MemoryId, f64> = BTreeMap::new();
    for g in groups {
        by_mem
            .entry(g.mem)
            .and_modify(|s| *s = s.max(g.ss_comb))
            .or_insert(g.ss_comb);
    }
    by_mem
        .into_iter()
        .map(|(mem, ss)| MemStall { mem, ss })
        .collect()
}

/// Step 3: integrates per-memory stalls into the overall temporal stall
/// (before the final clamp at zero).
///
/// Concurrent memories hide each other's stalls (`max`); sequential ones
/// accumulate (`sum` of the positive parts — one memory's slack cannot
/// run another memory's transfers).
pub fn integrate(arch: &Architecture, mem_stalls: &[MemStall]) -> f64 {
    integrate_with(arch, mem_stalls, &mut Vec::new())
}

/// [`integrate`] reusing a caller-provided buffer for the Groups policy's
/// grouped-memory bookkeeping (the policy's only allocation).
pub fn integrate_with(
    arch: &Architecture,
    mem_stalls: &[MemStall],
    grouped: &mut Vec<MemoryId>,
) -> f64 {
    match arch.stall_integration() {
        StallIntegration::Concurrent => {
            if mem_stalls.is_empty() {
                0.0
            } else {
                mem_stalls
                    .iter()
                    .map(|m| m.ss)
                    .fold(f64::NEG_INFINITY, f64::max)
            }
        }
        StallIntegration::Sequential => mem_stalls.iter().map(|m| m.ss.max(0.0)).sum(),
        StallIntegration::Groups(groups) => {
            let mut best: f64 = 0.0;
            grouped.clear();
            for g in groups {
                let sum: f64 = mem_stalls
                    .iter()
                    .filter(|m| g.contains(&m.mem))
                    .map(|m| m.ss.max(0.0))
                    .sum();
                best = best.max(sum);
                grouped.extend_from_slice(g);
            }
            for m in mem_stalls {
                if !grouped.contains(&m.mem) {
                    best = best.max(m.ss);
                }
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtl::{DtlKind, Endpoint};
    use ulm_arch::PortUse;
    use ulm_periodic::PeriodicWindow;
    use ulm_workload::Operand;

    /// Hand-built DTL with the given stall characteristics on port
    /// (mem 0, port `port`).
    fn dtl(port: usize, period: u64, z: u64, x_req: f64, x_real: f64) -> Dtl {
        Dtl {
            operand: Operand::W,
            kind: DtlKind::RefillDown,
            level: 0,
            data_bits: 1,
            period,
            z,
            z_stall: z,
            req_bw: 1.0 / x_req,
            x_req,
            real_bw: 1.0 / x_real,
            x_real,
            ss_u: (x_real - x_req) * z as f64,
            window: if x_req >= period as f64 {
                PeriodicWindow::full(period as f64, z).unwrap()
            } else {
                PeriodicWindow::trailing(period as f64, x_req, z).unwrap()
            },
            endpoints: crate::dtl::Endpoints::one(Endpoint {
                mem: MemoryId(0),
                port,
                usage: PortUse::WriteIn,
            }),
        }
    }

    #[test]
    fn single_slack_dtl_passes_through() {
        let d = dtl(0, 4, 8, 4.0, 1.0); // busy 8 of 32 -> slack -24
        let groups = combine_ports(&[d], UnionOptions::default());
        assert_eq!(groups.len(), 1);
        assert!((groups[0].ss_comb - (-24.0)).abs() < 1e-9);
    }

    #[test]
    fn eq1_two_slack_dtls_can_still_stall_the_port() {
        // Two full-window links on one port, each using 3/4 of the time:
        // individually slack, together 1.5x oversubscribed.
        let a = dtl(0, 4, 8, 4.0, 3.0);
        let b = dtl(0, 4, 8, 4.0, 3.0);
        let groups = combine_ports(&[a, b], UnionOptions::default());
        // Σ busy = 48, MUW_comb = 32 -> stall 16.
        assert!((groups[0].ss_comb - 16.0).abs() < 1e-9);
    }

    #[test]
    fn eq2_positive_stall_not_cancelled_by_slack() {
        // One link stalls by itself (+8); the other has huge slack.
        let a = dtl(0, 4, 8, 1.0, 2.0); // trailing window, ss_u = +8
        let b = dtl(0, 4, 8, 4.0, 0.5); // busy 4 only
        let groups = combine_ports(&[a, b], UnionOptions::default());
        // Eq (2): 8 + max(0, 4 − 32) = 8. Slack must NOT cancel it.
        assert!((groups[0].ss_comb - 8.0).abs() < 1e-9);
    }

    #[test]
    fn eq2_adds_residual_oversubscription() {
        let a = dtl(0, 4, 8, 1.0, 2.0); // ss_u = +8, busy 16
        let b = dtl(0, 4, 8, 4.0, 5.0); // busy 40 > window
        let groups = combine_ports(&[a, b], UnionOptions::default());
        // Literal Eq. (2) gives 8 + max(0, 40 − 32) = 16, but the port
        // must move 56 busy cycles through a 32-cycle window: the
        // oversubscription bound (56 − 32 = 24) dominates.
        assert!((groups[0].ss_comb - 24.0).abs() < 1e-9);
    }

    #[test]
    fn separate_ports_do_not_interact() {
        let a = dtl(0, 4, 8, 4.0, 3.0);
        let b = dtl(1, 4, 8, 4.0, 3.0);
        let groups = combine_ports(&[a, b], UnionOptions::default());
        assert_eq!(groups.len(), 2);
        assert!(groups.iter().all(|g| g.ss_comb < 0.0));
    }

    #[test]
    fn memory_takes_max_over_ports() {
        let a = dtl(0, 4, 8, 4.0, 3.0); // slack
        let b = dtl(1, 4, 8, 1.0, 2.0); // stall +8
        let groups = combine_ports(&[a, b], UnionOptions::default());
        let mems = combine_memories(&groups);
        assert_eq!(mems.len(), 1);
        assert!((mems[0].ss - 8.0).abs() < 1e-9);
    }

    #[test]
    fn req_bw_comb_is_summed() {
        let a = dtl(0, 4, 8, 2.0, 1.0);
        let b = dtl(0, 4, 8, 4.0, 1.0);
        let groups = combine_ports(&[a, b], UnionOptions::default());
        assert!((groups[0].req_bw_comb - (0.5 + 0.25)).abs() < 1e-9);
    }
}
