//! The **`LoweredLayer` evaluation IR**: one lowering pass from a
//! [`MappedLayer`] to everything the downstream consumers need.
//!
//! The paper's Step 1 ("Divide") produces exactly one artifact — the
//! per-operand unit-memory/DTL graph with `Mem_DATA`, `Mem_CC`, `ReqBW_u`
//! and `Z` — yet latency, energy and simulation all read overlapping
//! pieces of it. `LoweredLayer` materializes that artifact once:
//!
//! ```text
//! Layer → Mapping → MappedLayer → LoweredLayer → {latency, energy, sim, network}
//! ```
//!
//! The IR holds, per `(operand, level)`:
//!
//! * the residency/turnaround table ([`LevelLowering`]): `Mem_DATA` words,
//!   `Mem_CC`, `Z`, the top irrelevant-run, the exact distinct-content
//!   transfer count, the distinct-block count, and output finality;
//! * the loops above the level (a flat `(size, relevant)` arena) together
//!   with the mixed-radix [`region`](LoweredLayer::region) arithmetic the
//!   simulator uses to discover which periods move data;
//!
//! plus the layer-wide quantities: the Step-1 DTL list, per-operand
//! compute feed rates, and the phase inputs (`preload`, `offload`,
//! `CC_ideal`, `CC_spatial`).
//!
//! Construction is a single pass over the view. [`LoweredLayer::build`]
//! allocates an owned IR for long-lived use (e.g. one per layer in
//! `ulm-network`); [`LoweredLayer::build_into`] refills an existing IR
//! reusing its capacity, which is what keeps the mapper's hot path
//! allocation-free (the IR lives inside
//! [`ModelScratch`](crate::ModelScratch)).

use crate::delta::{InputDelta, RebuildStats, Stage};
use crate::dtl::{self, Dtl, DtlOptions};
use crate::fast::FastLatency;
use crate::phases;
use ulm_mapping::MappedLayer;
use ulm_workload::{Layer, Operand, Relevance};

/// Residency pins for one lowering: `Some(level)` per operand keeps that
/// operand resident at `level`, eliding every inter-memory interface at
/// or above it (no refills from / drains to the levels above — the
/// depth-first-fusion and KV-cache contract). `None` leaves the operand's
/// full chain active.
pub type ResidencyPins = [Option<usize>; 3];

/// Interfaces of `op`'s chain that carry traffic for an *unpinned*
/// lowering of `layer`: normally `chain_len - 1` (every inter-memory
/// interface), one fewer for a KV-cache resident operand, whose top
/// interface never moves data within a decode step.
///
/// Reads only workload structure — never capacities or bandwidths — so
/// incremental-relowering deltas can ignore it.
pub fn kv_active_interfaces(layer: &Layer, op: Operand, chain_len: usize) -> usize {
    let base = chain_len.saturating_sub(1);
    if layer.is_kv_cache(op) {
        base.min(chain_len.saturating_sub(2))
    } else {
        base
    }
}

/// The lowered residency/turnaround table of one `(operand, level)`.
///
/// All fields are exact integers derived from the mapping, so consumers
/// reading them reproduce the source arithmetic bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelLowering {
    /// `Mem_DATA` in words: data of the operand resident at this level.
    pub words: u64,
    /// `Mem_CC`: the block turnaround period in cycles.
    pub period: u64,
    /// `Z`: number of periods over the computation phase.
    pub z: u64,
    /// Product of the consecutive irrelevant-loop run at the top of the
    /// level's own loop range (the Table-I window scale factor).
    pub run: u64,
    /// Exact number of distinct-content block transfers into (W/I) or out
    /// of (O) the level over the whole layer.
    pub refills: u64,
    /// Number of distinct blocks seen above the level (revisits ignored).
    pub distinct_above: u64,
    /// True when no loop irrelevant to the operand remains above the
    /// level. For outputs this means blocks crossing the interface above
    /// are final (fully accumulated), not partial sums.
    pub final_above: bool,
    /// Range into the flat loops-above arena.
    loops: (u32, u32),
}

/// The build-once evaluation IR shared by the latency model (slow and
/// fast paths), the energy model, the simulator's schedule extraction and
/// the network evaluator. See the [module docs](self).
#[derive(Debug, Default)]
pub struct LoweredLayer {
    opts: DtlOptions,
    /// Residency pins requested at build time (fused segments).
    pins: ResidencyPins,
    /// Interfaces that carry traffic per operand: the pin-aware prefix
    /// length of each chain. Everything at or above it is elided.
    active: [u32; 3],
    /// Per-(operand, level) tables, operand-major.
    levels: Vec<LevelLowering>,
    /// `levels` range per operand: operand `k` owns
    /// `levels[offsets[k]..offsets[k + 1]]`.
    offsets: [usize; 4],
    /// Flat `(size, relevant)` arena of the loops above each level,
    /// innermost-above first, indexed by [`LevelLowering::loops`].
    loops: Vec<(u64, bool)>,
    /// The Step-1 DTL list, in canonical build order.
    dtls: Vec<Dtl>,
    /// Distinct words of each operand the MAC array touches per cycle
    /// (the product of operand-relevant spatial unroll factors).
    words_per_cycle: [u64; 3],
    preload: u64,
    offload: u64,
    cc_ideal: f64,
    cc_spatial: u64,
    spatial_stall: f64,
}

impl LoweredLayer {
    /// Lowers `view` into a fresh, owned IR.
    pub fn build(view: &MappedLayer<'_>, opts: DtlOptions) -> Self {
        let mut out = Self::default();
        Self::build_into(view, opts, &mut out);
        out
    }

    /// Lowers `view` into `out`, reusing its buffers — the steady-state
    /// path allocates nothing once the buffers have grown to size.
    ///
    /// Runs the four pipeline stages in build order (see
    /// [`Stage`]); [`rebuild_dirty`](Self::rebuild_dirty) re-runs the
    /// same stage functions selectively.
    pub fn build_into(view: &MappedLayer<'_>, opts: DtlOptions, out: &mut LoweredLayer) {
        out.pins = [None; 3];
        out.rebuild_full(view, opts);
    }

    /// Lowers `view` with explicit residency pins: `pins[op]` keeps that
    /// operand resident at the given chain level, eliding every interface
    /// at or above it. A fused segment prices its elided DRAM round-trips
    /// by pinning the producer's output and the consumer's input at the
    /// fusion buffer; `[None; 3]` is bit-identical to [`build`](Self::build).
    pub fn build_pinned(view: &MappedLayer<'_>, opts: DtlOptions, pins: ResidencyPins) -> Self {
        let mut out = Self {
            pins,
            ..Self::default()
        };
        out.rebuild_full(view, opts);
        out
    }

    fn rebuild_full(&mut self, view: &MappedLayer<'_>, opts: DtlOptions) {
        self.opts = opts;
        self.stage_residency(view);
        self.stage_feed_rates(view);
        self.stage_phases(view);
        self.stage_dtl_graph(view);
    }

    /// [`Stage::Residency`]: the per-`(operand, level)` tables, the
    /// loops-above arena and the layer scalars. Reads workload, mapping
    /// and architecture structure (chain shapes) — never bandwidths or
    /// capacities.
    fn stage_residency(&mut self, view: &MappedLayer<'_>) {
        let h = view.arch().hierarchy();
        self.levels.clear();
        self.loops.clear();

        self.cc_ideal = view.cc_ideal();
        self.cc_spatial = view.cc_spatial();
        self.spatial_stall = view.spatial_stall();

        let stack = view.mapping().stack();
        for op in Operand::all() {
            self.offsets[op.index()] = self.levels.len();
            let rel = view.layer().operand_relevance(op);
            let chain = h.chain(op);
            for level in 0..chain.len() {
                let lo = self.loops.len() as u32;
                let from = view.mapping().alloc(op).upper(level);
                self.loops.extend(
                    stack.loops()[from..]
                        .iter()
                        .map(|l| (l.size, rel.get(l.dim).is_relevant())),
                );
                self.levels.push(LevelLowering {
                    words: view.mem_data_words(op, level),
                    period: view.mem_cc(op, level),
                    z: view.z(op, level),
                    run: view.top_ir_run(op, level),
                    refills: view.refill_count(op, level),
                    distinct_above: view.distinct_blocks_above(op, level),
                    final_above: !view.has_ir_above(op, level),
                    loops: (lo, self.loops.len() as u32),
                });
            }
            let base = kv_active_interfaces(view.layer(), op, chain.len());
            let pinned = self.pins[op.index()].unwrap_or(usize::MAX);
            self.active[op.index()] = base.min(pinned) as u32;
        }
        self.offsets[3] = self.levels.len();
    }

    /// [`Stage::FeedRates`]: per-operand distinct words per cycle. Reads
    /// workload relevance and the spatial unroll only.
    fn stage_feed_rates(&mut self, view: &MappedLayer<'_>) {
        let spatial = view.mapping().spatial();
        for op in Operand::all() {
            let rel = view.layer().operand_relevance(op);
            self.words_per_cycle[op.index()] = spatial
                .factors()
                .iter()
                .filter(|(d, _)| rel.get(*d) != Relevance::Irrelevant)
                .map(|&(_, f)| f)
                .product();
        }
    }

    /// [`Stage::Phases`]: pre-load / off-load cycle counts. Reads port
    /// bandwidths, so a bandwidth delta re-runs it; block sizes come from
    /// the (clean) residency tables built by the stage before it.
    fn stage_phases(&mut self, view: &MappedLayer<'_>) {
        let preload = phases::preload_cycles_lowered(view, self);
        let offload = phases::offload_cycles_lowered(view, self);
        self.preload = preload;
        self.offload = offload;
    }

    /// [`Stage::DtlGraph`]: Step 1 proper, read off the tables the
    /// earlier stages built.
    fn stage_dtl_graph(&mut self, view: &MappedLayer<'_>) {
        dtl::build_dtls_lowered(view, self);
    }

    /// Full rebuild with every architecture constant answered by `slots`
    /// instead of live hierarchy lookups — the surrogate's per-query
    /// lowering. The workload-varying stages (residency, feed rates) run
    /// against the view exactly as [`build_into`](Self::build_into) does;
    /// the arch-constant-reading stages (phases, DTL graph) run the same
    /// arithmetic bodies over the folded slot tables. With slots folded
    /// from the same hierarchy the result is bit-identical to
    /// [`build_into`](Self::build_into).
    pub(crate) fn rebuild_specialized(
        &mut self,
        view: &MappedLayer<'_>,
        opts: DtlOptions,
        slots: &impl crate::slots::ArchSlots,
    ) {
        self.pins = [None; 3];
        self.opts = opts;
        self.stage_residency(view);
        self.stage_feed_rates(view);
        self.preload = phases::preload_cycles_with(view.layer(), self, slots);
        self.offload = phases::offload_cycles_with(view.layer(), self, slots);
        dtl::build_dtls_with(view.layer(), self, slots);
    }

    /// Recomputes only the stages invalidated by `delta`, bit-identical
    /// to [`build_into`](Self::build_into) on the same view.
    ///
    /// The dirty decision per stage is `delta.intersects(stage.reads())`
    /// (see [`Stage::reads`]). Because the residency tables and feed
    /// rates feed every later stage, a delta touching them degrades to a
    /// full rebuild; a pure-bandwidth delta re-runs the phase stage and
    /// refreshes the bandwidth-dependent DTL columns (`RealBW`,
    /// `X_REAL`, `SS_u`) in place; a capacity-only or empty delta skips
    /// all four stages.
    ///
    /// The caller is responsible for `view` matching the previous
    /// lowering up to `delta`: pass the *same* layer and mapping with an
    /// architecture whose difference is described by `delta` (use
    /// [`InputDelta::between`](crate::InputDelta::between)). A never-built
    /// or differently-optioned IR falls back to a full rebuild.
    pub fn rebuild_dirty(
        &mut self,
        view: &MappedLayer<'_>,
        opts: DtlOptions,
        delta: InputDelta,
    ) -> RebuildStats {
        let dirty = |s: Stage| delta.intersects(s.reads());
        let never_built = self.levels.is_empty();
        if never_built || self.opts != opts || dirty(Stage::Residency) || dirty(Stage::FeedRates) {
            // Preserves `self.pins` (unlike `build_into`): a pinned IR
            // stays pinned across incremental rebuilds.
            self.rebuild_full(view, opts);
            return RebuildStats::full();
        }
        let mut stats = RebuildStats {
            stages_rebuilt: 0,
            stages_skipped: 2, // residency + feed rates reused
        };
        if dirty(Stage::Phases) {
            self.stage_phases(view);
            stats.stages_rebuilt += 1;
        } else {
            stats.stages_skipped += 1;
        }
        if dirty(Stage::DtlGraph) {
            // Structure (periods, windows, endpoints) is clean here —
            // only the bandwidth columns can have moved.
            dtl::refresh_bandwidth(view, self);
            stats.stages_rebuilt += 1;
        } else {
            stats.stages_skipped += 1;
        }
        stats
    }

    /// The options the DTL list was built with.
    pub fn options(&self) -> DtlOptions {
        self.opts
    }

    /// The Step-1 DTL list.
    pub fn dtls(&self) -> &[Dtl] {
        &self.dtls
    }

    pub(crate) fn dtls_mut(&mut self) -> &mut Vec<Dtl> {
        &mut self.dtls
    }

    /// Consumes the IR, returning the DTL list.
    pub fn into_dtls(self) -> Vec<Dtl> {
        self.dtls
    }

    /// Interfaces of `op`'s chain that carry traffic under this lowering:
    /// normally `chain.len() - 1`, fewer when a residency pin or a
    /// KV-cache flag elides the top of the chain. Consumers pricing
    /// transfers iterate `0..active_interfaces(op)` instead of the full
    /// chain; the residency tables themselves stay full-length.
    pub fn active_interfaces(&self, op: Operand) -> usize {
        self.active[op.index()] as usize
    }

    /// The residency pins this IR was built with.
    pub fn pins(&self) -> ResidencyPins {
        self.pins
    }

    /// The residency tables of one operand's chain, innermost first.
    pub fn levels(&self, op: Operand) -> &[LevelLowering] {
        &self.levels[self.offsets[op.index()]..self.offsets[op.index() + 1]]
    }

    /// The residency table of one `(operand, level)`.
    pub fn level(&self, op: Operand, level: usize) -> &LevelLowering {
        &self.levels(op)[level]
    }

    /// The `(size, relevant)` loops above `level`, innermost-above first.
    pub fn loops_above(&self, op: Operand, level: usize) -> &[(u64, bool)] {
        let (lo, hi) = self.level(op, level).loops;
        &self.loops[lo as usize..hi as usize]
    }

    /// The distinct-data region id active during period `j` of
    /// `(op, level)`: the mixed-radix digits of `j` restricted to the
    /// operand-relevant loops above the level. Periods sharing a region
    /// reuse the same block, so no transfer happens between them.
    pub fn region(&self, op: Operand, level: usize, j: u64) -> u64 {
        let mut rem = j;
        let mut id = 0u64;
        let mut mul = 1u64;
        for &(size, relevant) in self.loops_above(op, level) {
            let d = rem % size;
            rem /= size;
            if relevant {
                id += d * mul;
                mul *= size;
            }
        }
        id
    }

    /// Distinct words of `op` the MAC array touches per cycle.
    pub fn words_per_cycle(&self, op: Operand) -> u64 {
        self.words_per_cycle[op.index()]
    }

    /// Pre-load phase cycles.
    pub fn preload(&self) -> u64 {
        self.preload
    }

    /// Off-load phase cycles.
    pub fn offload(&self) -> u64 {
        self.offload
    }

    /// `CC_ideal` (may be fractional).
    pub fn cc_ideal(&self) -> f64 {
        self.cc_ideal
    }

    /// `CC_spatial`: the temporal iteration count.
    pub fn cc_spatial(&self) -> u64 {
        self.cc_spatial
    }

    /// Spatial stall: `CC_spatial − CC_ideal`.
    pub fn spatial_stall(&self) -> f64 {
        self.spatial_stall
    }

    /// Composes the phase totals with a given temporal stall — the single
    /// implementation of `CC_total = preload + CC_spatial + SS_overall +
    /// offload` shared by the slow and fast latency paths.
    pub fn totals(&self, ss_overall: f64) -> FastLatency {
        FastLatency::compose(
            self.preload,
            self.offload,
            self.cc_ideal,
            self.cc_spatial,
            ss_overall,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_mapping::{LoopStack, Mapping, SpatialUnroll};
    use ulm_workload::{Dim, Layer, Precision};

    fn toy_view() -> (ulm_arch::presets::PresetChip, Layer, Mapping) {
        let chip = presets::toy_chip();
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        let mapping = Mapping::with_greedy_alloc(
            &chip.arch,
            &layer,
            SpatialUnroll::new(chip.spatial.clone()),
            LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]),
        )
        .unwrap();
        (chip, layer, mapping)
    }

    #[test]
    fn tables_match_view_accessors() {
        let (chip, layer, mapping) = toy_view();
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let lw = LoweredLayer::build(&view, DtlOptions::default());
        let h = chip.arch.hierarchy();
        for op in Operand::all() {
            assert_eq!(lw.levels(op).len(), h.chain(op).len());
            for (level, e) in lw.levels(op).iter().enumerate() {
                assert_eq!(e.words, view.mem_data_words(op, level));
                assert_eq!(e.period, view.mem_cc(op, level));
                assert_eq!(e.z, view.z(op, level));
                assert_eq!(e.run, view.top_ir_run(op, level));
                assert_eq!(e.refills, view.refill_count(op, level));
                assert_eq!(e.distinct_above, view.distinct_blocks_above(op, level));
                assert_eq!(e.final_above, !view.has_ir_above(op, level));
            }
        }
        assert_eq!(lw.cc_spatial(), view.cc_spatial());
        assert_eq!(lw.cc_ideal().to_bits(), view.cc_ideal().to_bits());
    }

    #[test]
    fn build_into_reuses_buffers_and_matches_build() {
        let (chip, layer, mapping) = toy_view();
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let owned = LoweredLayer::build(&view, DtlOptions::default());
        let mut reused = LoweredLayer::default();
        LoweredLayer::build_into(&view, DtlOptions::default(), &mut reused);
        LoweredLayer::build_into(&view, DtlOptions::default(), &mut reused);
        assert_eq!(owned.dtls(), reused.dtls());
        assert_eq!(owned.levels, reused.levels);
        assert_eq!(owned.loops, reused.loops);
        assert_eq!(owned.preload(), reused.preload());
        assert_eq!(owned.offload(), reused.offload());
    }

    #[test]
    fn regions_collapse_irrelevant_loops() {
        let (chip, layer, mapping) = toy_view();
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let lw = LoweredLayer::build(&view, DtlOptions::default());
        // W at level 0: loops above are C8 (relevant), B2 (irrelevant),
        // K2 (relevant). Periods that differ only in the B digit share a
        // region.
        let regions: Vec<u64> = (0..lw.level(Operand::W, 0).z)
            .map(|j| lw.region(Operand::W, 0, j))
            .collect();
        let distinct = {
            let mut r = regions.clone();
            r.sort_unstable();
            r.dedup();
            r.len() as u64
        };
        assert_eq!(distinct, lw.level(Operand::W, 0).distinct_above);
    }
}
