//! The uniform analytical intra-layer latency model — the paper's core
//! contribution.
//!
//! Given a [`MappedLayer`] (a layer bound to an architecture through a
//! legal mapping), [`LatencyModel::evaluate`] produces a [`LatencyReport`]
//! with the full latency breakdown of Fig. 1:
//!
//! ```text
//! CC_total = preload + CC_spatial + SS_overall + offload
//!          = preload + CC_ideal + spatial stall + temporal stall + offload
//! ```
//!
//! The temporal stall `SS_overall` comes from the 3-step methodology of
//! Section III:
//!
//! 1. **Divide** ([`dtl`]): split shared memories into per-operand unit
//!    memories, decouple each interface into read/write DTLs, and derive
//!    `ReqBW_u` (Table I), the periodic updating window `MUW_u`, and the
//!    per-link stall/slack `SS_u` (Fig. 3).
//! 2. **Combine** ([`stall`]): per shared physical port, combine windows
//!    and stalls with Eq. (1)/(2); per memory module, take the max.
//! 3. **Integrate** ([`stall::integrate`]): combine across memory modules
//!    per the architecture's concurrency policy and clamp at zero.
//!
//! A bandwidth-**unaware** baseline (the idealized model the paper argues
//! against) is available through [`LatencyModel::bw_unaware`]: it keeps
//! phases and spatial effects but forces `SS_overall = 0`.
//!
//! # Example
//!
//! ```
//! use ulm_arch::presets;
//! use ulm_mapping::{LoopStack, Mapping, MappedLayer, SpatialUnroll};
//! use ulm_model::LatencyModel;
//! use ulm_workload::{Dim, Layer, Precision};
//!
//! let chip = presets::toy_chip();
//! let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
//! let mapping = Mapping::with_greedy_alloc(
//!     &chip.arch,
//!     &layer,
//!     SpatialUnroll::new(chip.spatial.clone()),
//!     LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]),
//! )?;
//! let view = MappedLayer::new(&layer, &chip.arch, &mapping)?;
//! let report = LatencyModel::new().evaluate(&view);
//! assert!(report.cc_total >= report.cc_spatial as f64);
//! # Ok::<(), ulm_mapping::MappingError>(())
//! ```

pub mod batch;
pub mod calibrate;
pub mod delta;
pub mod dtl;
pub mod fast;
pub mod lower;
pub mod phases;
pub mod report;
pub mod roofline;
mod slots;
pub mod stall;
pub mod surrogate;
pub mod whatif;

pub use batch::{BatchKernel, LaneOutcome};
pub use calibrate::{
    parse_measurements, CalibrateError, Calibration, CalibrationFit, Calibrator, LayerResidual,
    MeasurementRow, ObservedBusy, PortFit,
};
pub use delta::{InputDelta, RebuildStats, Stage};
pub use dtl::{Dtl, DtlKind, DtlOptions, Endpoint, Endpoints};
pub use fast::{FastLatency, ModelScratch};
pub use lower::{kv_active_interfaces, LevelLowering, LoweredLayer, ResidencyPins};
pub use report::{BandwidthFix, DtlReport, LatencyReport, MemReport, PortReport, Scenario};
pub use roofline::{roofline, roofline_bound, Roof, Roofline};
pub use stall::{MemStall, PortGroup, PortGroupCore, StallScratch};
pub use surrogate::{MappingShape, SpecializedModel, SurrogateError, SurrogateStats};
pub use whatif::{apply_overrides, parse_override, KnobError, KnobOverride, KnobValue};

use ulm_mapping::MappedLayer;
use ulm_periodic::UnionOptions;

/// Tuning options for a [`LatencyModel`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ModelOptions {
    /// When false, `SS_overall` is forced to zero — the memory-BW-unaware
    /// baseline of Case studies 2 and 3.
    pub bw_aware: bool,
    /// Model the MAC-array-facing links of the innermost levels.
    pub compute_links: bool,
    /// Charge `Z − 1` (not `Z`) periods of inter-memory links to the
    /// computation phase (`DESIGN.md` §5; ablation: `phase_aware_z`).
    pub phase_aware_z: bool,
    /// Never let Eq. (2) beat the port-oversubscription bound
    /// (`DESIGN.md` §5; ablation: `eq2_oversubscription_bound`).
    pub eq2_oversubscription_bound: bool,
    /// Window-union tuning for Step 2.
    pub union: UnionOptions,
}

impl Default for ModelOptions {
    fn default() -> Self {
        Self {
            bw_aware: true,
            compute_links: true,
            phase_aware_z: true,
            eq2_oversubscription_bound: true,
            union: UnionOptions::default(),
        }
    }
}

/// The analytical latency model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyModel {
    opts: ModelOptions,
}

impl LatencyModel {
    /// The full bandwidth-aware model.
    pub fn new() -> Self {
        Self::default()
    }

    /// A model with explicit options.
    pub fn with_options(opts: ModelOptions) -> Self {
        Self { opts }
    }

    /// The memory-BW-unaware baseline: identical phases and spatial
    /// effects, `SS_overall = 0` by assumption.
    pub fn bw_unaware() -> Self {
        Self::with_options(ModelOptions {
            bw_aware: false,
            ..ModelOptions::default()
        })
    }

    /// The options in effect.
    pub fn options(&self) -> &ModelOptions {
        &self.opts
    }

    /// The Step-1 lowering options implied by the model options.
    pub fn dtl_options(&self) -> DtlOptions {
        DtlOptions {
            compute_links: self.opts.compute_links,
            phase_aware_z: self.opts.phase_aware_z,
        }
    }

    /// Evaluates the mapped layer and returns the full latency report.
    ///
    /// This is report assembly over the very same lowering + stall core
    /// that [`evaluate_fast`](Self::evaluate_fast) runs — the scalars are
    /// bit-identical because they come out of one code path.
    pub fn evaluate(&self, view: &MappedLayer<'_>) -> LatencyReport {
        let mut scratch = ModelScratch::default();
        self.evaluate_with(view, &mut scratch)
    }

    /// [`evaluate`](Self::evaluate) reusing caller-provided scratch
    /// buffers across calls.
    pub fn evaluate_with(
        &self,
        view: &MappedLayer<'_>,
        scratch: &mut ModelScratch,
    ) -> LatencyReport {
        LoweredLayer::build_into(view, self.dtl_options(), scratch.lowered_mut());
        let (lowered, stall) = scratch.parts();
        let fast = self.core(view.arch(), lowered, stall, true);
        let (lowered, stall) = scratch.parts();
        self.assemble_report(view, lowered, stall, fast)
    }

    /// [`evaluate`](Self::evaluate) over an already-lowered layer, so
    /// several consumers (latency, energy, simulation) can share one
    /// lowering pass. The IR must have been built with this model's
    /// [`dtl_options`](Self::dtl_options).
    pub fn evaluate_lowered(
        &self,
        view: &MappedLayer<'_>,
        lowered: &LoweredLayer,
    ) -> LatencyReport {
        debug_assert_eq!(lowered.options(), self.dtl_options());
        let mut stall = StallScratch::default();
        let fast = self.core(view.arch(), lowered, &mut stall, true);
        self.assemble_report(view, lowered, &stall, fast)
    }

    /// Diagnostic-report assembly on top of the shared core's outputs.
    fn assemble_report(
        &self,
        view: &MappedLayer<'_>,
        lowered: &LoweredLayer,
        stall: &StallScratch,
        fast: FastLatency,
    ) -> LatencyReport {
        let h = view.arch().hierarchy();
        let dtls = lowered.dtls();
        let ss_overall = fast.ss_overall;
        let spatial_stall = lowered.spatial_stall();
        let spatial_utilization = fast.cc_ideal / fast.cc_spatial as f64;
        let temporal_utilization = fast.cc_spatial as f64 / (fast.cc_spatial as f64 + ss_overall);
        let scenario = Scenario::classify(
            spatial_stall < 0.5, // within rounding of fully mapped
            ss_overall == 0.0,
        );

        // Bottleneck: the stalling memory that sets SS_overall.
        let bottleneck = if ss_overall > 0.0 {
            stall
                .memory_stalls()
                .iter()
                .max_by(|a, b| a.ss.total_cmp(&b.ss))
                .map(|m| h.mem(m.mem).name().to_string())
        } else {
            None
        };

        // Diagnostics.
        let dtl_reports: Vec<DtlReport> = dtls
            .iter()
            .map(|d| DtlReport {
                label: d.label(view),
                operand: d.operand,
                kind: d.kind,
                data_bits: d.data_bits,
                period: d.period,
                z: d.z,
                req_bw: d.req_bw,
                real_bw: d.real_bw,
                ss_u: d.ss_u,
            })
            .collect();
        // A group's members are exactly the DTLs with an endpoint on its
        // (memory, port), in ascending DTL order — the same member order
        // the Step-2 grouping visits.
        let port_reports: Vec<PortReport> = stall
            .port_groups()
            .iter()
            .map(|g| PortReport {
                memory: h.mem(g.mem).name().to_string(),
                port: g.port,
                req_bw_comb: g.req_bw_comb,
                real_bw: h.mem(g.mem).ports()[g.port].bw_bits as f64,
                muw_comb: g.muw_comb,
                muw_exact: g.muw_exact,
                ss_comb: g.ss_comb,
                min_stall_free_bw: g.min_stall_free_bw,
                dtls: dtls
                    .iter()
                    .filter(|d| {
                        d.endpoints
                            .iter()
                            .any(|ep| ep.mem == g.mem && ep.port == g.port)
                    })
                    .map(|d| d.label(view))
                    .collect(),
            })
            .collect();
        let mem_reports: Vec<MemReport> = stall
            .memory_stalls()
            .iter()
            .map(|m| MemReport {
                memory: h.mem(m.mem).name().to_string(),
                ss: m.ss,
            })
            .collect();

        LatencyReport {
            cc_ideal: fast.cc_ideal,
            cc_spatial: fast.cc_spatial,
            spatial_stall,
            ss_overall,
            preload: fast.preload,
            offload: fast.offload,
            cc_total: fast.cc_total,
            utilization: fast.utilization,
            spatial_utilization,
            temporal_utilization,
            scenario,
            bottleneck,
            dtls: dtl_reports,
            ports: port_reports,
            memories: mem_reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_mapping::{LoopStack, Mapping, SpatialUnroll};
    use ulm_workload::{Dim, Layer, Precision};

    fn toy_report(stack: &[(Dim, u64)]) -> LatencyReport {
        let chip = presets::toy_chip();
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        let mapping = Mapping::with_greedy_alloc(
            &chip.arch,
            &layer,
            SpatialUnroll::new(chip.spatial.clone()),
            LoopStack::from_pairs(stack),
        )
        .unwrap();
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        LatencyModel::new().evaluate(&view)
    }

    #[test]
    fn totals_compose_and_bound() {
        let r = toy_report(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
        assert!(
            (r.cc_total
                - (r.preload as f64 + r.cc_spatial as f64 + r.ss_overall + r.offload as f64))
                .abs()
                < 1e-9
        );
        assert!(r.cc_total >= r.cc_spatial as f64);
        assert!(r.cc_spatial as f64 >= r.cc_ideal);
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
    }

    #[test]
    fn toy_stall_matches_hand_computation() {
        // From the dtl tests: the W refill stalls 1 cycle per period over
        // 32 periods; the I refill likewise; they share the LB read port.
        let r = toy_report(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
        assert!(r.ss_overall > 0.0, "{r}");
        assert_eq!(r.scenario.number(), 3); // spatially full, stalled
        assert!(r.bottleneck.is_some());
    }

    #[test]
    fn bw_unaware_baseline_hides_stall() {
        let chip = presets::toy_chip();
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        let mapping = Mapping::with_greedy_alloc(
            &chip.arch,
            &layer,
            SpatialUnroll::new(chip.spatial.clone()),
            LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]),
        )
        .unwrap();
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let aware = LatencyModel::new().evaluate(&view);
        let unaware = LatencyModel::bw_unaware().evaluate(&view);
        assert!(unaware.cc_total < aware.cc_total);
        assert_eq!(unaware.ss_overall, 0.0);
        assert_eq!(unaware.cc_spatial, aware.cc_spatial);
        assert_eq!(unaware.preload, aware.preload);
    }

    #[test]
    fn bandwidth_fixes_identify_and_silence_stalls() {
        // The toy chip's LB read port stalls; the recommended bandwidth
        // must actually remove that stall when applied.
        use ulm_arch::{MacArray, Memory, MemoryHierarchy, MemoryKind, Port};
        use ulm_workload::Operand;

        let build = |lb_read_bw: u64| {
            let mut b = MemoryHierarchy::builder();
            let w_reg = b.add_memory(
                Memory::new("W-Reg", MemoryKind::RegisterFile, 4 * 8)
                    .with_ports(vec![Port::read(4 * 8), Port::write(64)])
                    .with_replication(2),
            );
            let i_reg = b.add_memory(
                Memory::new("I-Reg", MemoryKind::RegisterFile, 4 * 8)
                    .with_ports(vec![Port::read(4 * 8), Port::write(64)])
                    .with_replication(2),
            );
            let o_reg = b.add_memory(
                Memory::new("O-Reg", MemoryKind::RegisterFile, 4 * 24)
                    .with_ports(vec![Port::read(4 * 24), Port::write(4 * 24)]),
            );
            let lb = b.add_memory(
                Memory::new("LB", MemoryKind::Sram, 16 * 8 * 1024)
                    .with_ports(vec![Port::read(lb_read_bw), Port::write(64)])
                    .as_backing_store(),
            );
            b.set_chain(Operand::W, vec![w_reg, lb]);
            b.set_chain(Operand::I, vec![i_reg, lb]);
            b.set_chain(Operand::O, vec![o_reg, lb]);
            ulm_arch::Architecture::new("t", MacArray::new(2, 2, 1), b.build().unwrap())
        };
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        let spatial = || SpatialUnroll::new(vec![(Dim::K, 2), (Dim::B, 2)]);
        let stack = || LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);

        let tight = build(16);
        let m = Mapping::with_greedy_alloc(&tight, &layer, spatial(), stack()).unwrap();
        let view = MappedLayer::new(&layer, &tight, &m).unwrap();
        let r = LatencyModel::new().evaluate(&view);
        let fixes = r.bandwidth_fixes();
        assert!(!fixes.is_empty());
        let lb_fix = fixes
            .iter()
            .find(|f| f.port.starts_with("LB p0"))
            .expect("the shared LB read port must be flagged");
        assert!(lb_fix.required_bw > lb_fix.current_bw);

        // Apply the fix: that port must fall silent.
        let fixed = build(lb_fix.required_bw.ceil() as u64);
        let m2 = Mapping::with_greedy_alloc(&fixed, &layer, spatial(), stack()).unwrap();
        let view2 = MappedLayer::new(&layer, &fixed, &m2).unwrap();
        let r2 = LatencyModel::new().evaluate(&view2);
        let lb_port = r2
            .ports
            .iter()
            .find(|p| p.memory == "LB" && p.port == 0)
            .unwrap();
        assert!(
            lb_port.ss_comb <= 1e-6,
            "recommended bandwidth must silence the port, got {}",
            lb_port.ss_comb
        );
        assert!(r2.cc_total <= r.cc_total);
    }

    #[test]
    fn report_diagnostics_are_populated() {
        let r = toy_report(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
        assert!(!r.dtls.is_empty());
        assert!(!r.ports.is_empty());
        assert!(!r.memories.is_empty());
        assert!(r.ports.iter().all(|p| p.muw_exact));
    }
}
