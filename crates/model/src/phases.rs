//! Data pre-loading and off-loading phases (Fig. 1a).
//!
//! Pre-loading fills the first working set of W and I down the hierarchy
//! before computation starts; off-loading writes the last output block up
//! to the top memory after computation ends. Both are "derived based on
//! the required data transfer amount and the related memories' BW"
//! (Section III); W and I load in parallel, so the pre-load phase is their
//! maximum.

use crate::lower::{kv_active_interfaces, LoweredLayer};
use crate::slots::{ArchSlots, LiveSlots};
use ulm_arch::PortUse;
use ulm_mapping::MappedLayer;
use ulm_workload::{Layer, Operand};

/// Cycles to pre-load the first W and I working sets (max over the two
/// operands of the pipeline-fill chain down their hierarchies). KV-cache
/// resident operands skip the top interface: they are already in place.
pub fn preload_cycles(view: &MappedLayer<'_>) -> u64 {
    let h = view.arch().hierarchy();
    let mut worst = 0u64;
    for op in [Operand::W, Operand::I] {
        let chain = h.chain(op);
        let bits = view.layer().precision().bits(op);
        let mut total = 0u64;
        for level in 0..kv_active_interfaces(view.layer(), op, chain.len()) {
            let block_bits = view.mem_data_words(op, level) * bits;
            let (_, wbw) = h.port(chain[level], op, PortUse::WriteIn);
            let (_, rbw) = h.port(chain[level + 1], op, PortUse::ReadOut);
            let bw = wbw.min(rbw);
            total += block_bits.div_ceil(bw);
        }
        worst = worst.max(total);
    }
    worst
}

/// Cycles to off-load the final output block up to the top memory.
pub fn offload_cycles(view: &MappedLayer<'_>) -> u64 {
    let h = view.arch().hierarchy();
    let chain = h.chain(Operand::O);
    let mut total = 0u64;
    for level in 0..kv_active_interfaces(view.layer(), Operand::O, chain.len()) {
        let is_final = view.outputs_final_above(level);
        let bits = view.layer().precision().output_bits(is_final);
        let block_bits = view.mem_data_words(Operand::O, level) * bits;
        let (_, rbw) = h.port(chain[level], Operand::O, PortUse::ReadOut);
        let (_, wbw) = h.port(chain[level + 1], Operand::O, PortUse::WriteIn);
        let bw = rbw.min(wbw);
        total += block_bits.div_ceil(bw);
    }
    total
}

/// [`preload_cycles`] reading block sizes from already-lowered residency
/// tables instead of re-deriving them through the view — same integers,
/// so the result is identical; only the per-level `Mem_DATA` recompute
/// is skipped. The pipeline's phase stage runs through here (residency
/// always precedes phases in build order, and stays clean under the
/// bandwidth deltas that re-run phases alone).
pub(crate) fn preload_cycles_lowered(view: &MappedLayer<'_>, lw: &LoweredLayer) -> u64 {
    let slots = LiveSlots::new(view.arch().hierarchy());
    preload_cycles_with(view.layer(), lw, &slots)
}

/// [`offload_cycles`] from the lowered tables; see
/// [`preload_cycles_lowered`].
pub(crate) fn offload_cycles_lowered(view: &MappedLayer<'_>, lw: &LoweredLayer) -> u64 {
    let slots = LiveSlots::new(view.arch().hierarchy());
    offload_cycles_with(view.layer(), lw, &slots)
}

/// The pre-load arithmetic body: link bandwidths arrive through `slots`
/// (the same `u64` min of the two port bandwidths the view lookups take),
/// so the generic path and the surrogate's folded tables produce the same
/// integers.
pub(crate) fn preload_cycles_with(layer: &Layer, lw: &LoweredLayer, slots: &impl ArchSlots) -> u64 {
    let mut worst = 0u64;
    for op in [Operand::W, Operand::I] {
        let bits = layer.precision().bits(op);
        let mut total = 0u64;
        for level in 0..lw.active_interfaces(op) {
            let block_bits = lw.level(op, level).words * bits;
            total += block_bits.div_ceil(slots.interface(op, level).bw_bits);
        }
        worst = worst.max(total);
    }
    worst
}

/// The off-load arithmetic body; see [`preload_cycles_with`].
pub(crate) fn offload_cycles_with(layer: &Layer, lw: &LoweredLayer, slots: &impl ArchSlots) -> u64 {
    let mut total = 0u64;
    for level in 0..lw.active_interfaces(Operand::O) {
        let row = lw.level(Operand::O, level);
        let bits = layer.precision().output_bits(row.final_above);
        let block_bits = row.words * bits;
        total += block_bits.div_ceil(slots.interface(Operand::O, level).bw_bits);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_mapping::{LoopStack, Mapping, SpatialUnroll};
    use ulm_workload::{Dim, Layer, Precision};

    #[test]
    fn toy_phases_match_hand_computation() {
        let chip = presets::toy_chip();
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        let mapping = Mapping::with_greedy_alloc(
            &chip.arch,
            &layer,
            SpatialUnroll::new(chip.spatial.clone()),
            LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]),
        )
        .unwrap();
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        // W first block: 2 words x 8b over an 8 b/cy link = 2 cycles.
        // I first block: 2 words x 8b over 8 b/cy = 2 cycles. Max = 2.
        assert_eq!(preload_cycles(&view), 2);
        // O final block: 4 words, final (8b) over min(O-Reg rd 96,
        // LB wr 16) = 16 b/cy -> 32/16 = 2 cycles.
        assert_eq!(offload_cycles(&view), 2);
    }

    #[test]
    fn deeper_chains_accumulate_fill_time() {
        let chip = presets::case_study_chip(128);
        let layer = Layer::matmul("mm", 64, 64, 64, Precision::int8_acc24());
        let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
        let stack = LoopStack::from_pairs(&[(Dim::C, 32), (Dim::B, 8), (Dim::K, 4)]);
        let mapping = Mapping::with_greedy_alloc(&chip, &layer, spatial, stack).unwrap();
        let view = MappedLayer::new(&layer, &chip, &mapping).unwrap();
        // Three levels for W/I: two links each, so preload covers both.
        assert!(preload_cycles(&view) > 0);
        assert!(offload_cycles(&view) > 0);
    }
}
