//! Roofline analysis: the classic first-order bound the paper's Section II
//! calls the "performance roofline", as a companion to the detailed stall
//! model.
//!
//! For a mapped layer, each memory interface imposes a bandwidth roof:
//! the layer cannot finish faster than `traffic / bandwidth` cycles end
//! to end (first fills included, so compare against the model's
//! *end-to-end* `cc_total`). The roofline latency is the max over the
//! compute roof (`CC_ideal`) and every interface roof; comparing it with
//! the full model separates *fundamental* bandwidth limits (visible on
//! the roofline) from *schedule-induced* stalls (burstiness, keep-out
//! windows, port sharing) that only the 3-step model captures.

use crate::lower::kv_active_interfaces;
use ulm_arch::PortUse;
use ulm_mapping::MappedLayer;
use ulm_workload::Operand;

/// One bandwidth roof.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Roof {
    /// The interface, e.g. `"I: GB->I-LB"`.
    pub interface: String,
    /// Total bits crossing it over the layer.
    pub traffic_bits: u64,
    /// The link bandwidth, bits/cycle.
    pub bw_bits: u64,
    /// The implied minimum cycles: `traffic / bw`.
    pub min_cycles: f64,
}

/// The roofline summary of one mapped layer.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Roofline {
    /// The compute roof (`CC_ideal`).
    pub compute_cycles: f64,
    /// Every memory-interface roof.
    pub roofs: Vec<Roof>,
}

impl Roofline {
    /// The binding roof: the largest lower bound on latency.
    pub fn bound_cycles(&self) -> f64 {
        self.roofs
            .iter()
            .map(|r| r.min_cycles)
            .fold(self.compute_cycles, f64::max)
    }

    /// True when a memory interface (not compute) binds the layer.
    pub fn memory_bound(&self) -> bool {
        self.bound_cycles() > self.compute_cycles
    }

    /// The binding interface's name, or `"compute"`.
    pub fn bottleneck(&self) -> &str {
        self.roofs
            .iter()
            .filter(|r| r.min_cycles > self.compute_cycles)
            .max_by(|a, b| a.min_cycles.total_cmp(&b.min_cycles))
            .map(|r| r.interface.as_str())
            .unwrap_or("compute")
    }
}

/// The traffic and bandwidth of one interface roof (no label `String`).
fn roof_numbers(view: &MappedLayer<'_>, op: Operand, level: usize) -> (u64, u64) {
    let h = view.arch().hierarchy();
    let layer = view.layer();
    let chain = h.chain(op);
    let lower = chain[level];
    let upper = chain[level + 1];
    let words = view.mem_data_words(op, level);
    match op {
        Operand::W | Operand::I => {
            let bits = words * layer.precision().bits(op) * view.refill_count(op, level);
            let bw = h
                .port(upper, op, PortUse::ReadOut)
                .1
                .min(h.port(lower, op, PortUse::WriteIn).1);
            (bits, bw)
        }
        Operand::O => {
            let is_final = view.outputs_final_above(level);
            let drains = view.refill_count(op, level);
            let revisits = drains - view.distinct_blocks_above(op, level);
            let bits = words * layer.precision().output_bits(is_final) * drains
                + words * layer.precision().partial_sum_bits() * revisits;
            let up = h
                .port(lower, op, PortUse::ReadOut)
                .1
                .min(h.port(upper, op, PortUse::WriteIn).1);
            (bits, up)
        }
    }
}

/// Computes the roofline of a mapped layer from its exact interface
/// traffic (distinct-block refill counts; psum round trips included).
pub fn roofline(view: &MappedLayer<'_>) -> Roofline {
    let h = view.arch().hierarchy();
    let mut roofs = Vec::new();
    for op in Operand::all() {
        let chain = h.chain(op);
        // KV-cache resident operands never cross their top interface, so
        // it imposes no roof (and the bound stays admissible for the
        // mapper's pruning).
        for level in 0..kv_active_interfaces(view.layer(), op, chain.len()) {
            let lower = chain[level];
            let upper = chain[level + 1];
            let (traffic_bits, bw_bits) = roof_numbers(view, op, level);
            roofs.push(Roof {
                interface: format!("{op}: {}<->{}", h.mem(upper).name(), h.mem(lower).name()),
                traffic_bits,
                bw_bits,
                min_cycles: traffic_bits as f64 / bw_bits as f64,
            });
        }
    }
    Roofline {
        compute_cycles: view.cc_ideal(),
        roofs,
    }
}

/// [`Roofline::bound_cycles`] without building the [`Roofline`]: the max
/// over the compute roof and every interface roof, computed with zero
/// heap allocations. Used as a cheap lower bound by the mapper's
/// branch-and-bound search.
pub fn roofline_bound(view: &MappedLayer<'_>) -> f64 {
    let h = view.arch().hierarchy();
    let mut bound = view.cc_ideal();
    for op in Operand::all() {
        let chain = h.chain(op);
        for level in 0..kv_active_interfaces(view.layer(), op, chain.len()) {
            let (traffic_bits, bw_bits) = roof_numbers(view, op, level);
            bound = bound.max(traffic_bits as f64 / bw_bits as f64);
        }
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyModel;
    use ulm_arch::presets;
    use ulm_mapping::{LoopStack, Mapping, SpatialUnroll};
    use ulm_workload::{Dim, Layer, Precision};

    fn case(b: u64, k: u64, c: u64, gb_bw: u64) -> (f64, Roofline, f64) {
        let arch = presets::case_study_chip(gb_bw);
        let layer = Layer::matmul("r", b, k, c, Precision::int8_out24());
        let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
        let stack = LoopStack::from_pairs(&[(Dim::C, c / 2), (Dim::B, b / 8), (Dim::K, k / 16)]);
        let mapping = Mapping::with_greedy_alloc(&arch, &layer, spatial, stack).unwrap();
        let view = MappedLayer::new(&layer, &arch, &mapping).unwrap();
        let rl = roofline(&view);
        let full = LatencyModel::new().evaluate(&view);
        (view.cc_ideal(), rl, full.cc_total)
    }

    #[test]
    fn roofline_lower_bounds_the_full_model() {
        // The detailed model includes burstiness the roofline cannot see,
        // so its end-to-end latency must be at least every roof.
        for (b, k, c) in [(64, 96, 640), (128, 128, 8), (64, 64, 512)] {
            let (_, rl, full) = case(b, k, c, 128);
            assert!(
                full + 1e-6 >= rl.bound_cycles(),
                "({b},{k},{c}): full {full} < roofline {}",
                rl.bound_cycles()
            );
        }
    }

    #[test]
    fn fast_bound_matches_roofline_struct() {
        for (b, k, c) in [(64, 96, 640), (128, 128, 8), (64, 64, 512)] {
            let arch = presets::case_study_chip(128);
            let layer = Layer::matmul("r", b, k, c, Precision::int8_out24());
            let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
            let stack =
                LoopStack::from_pairs(&[(Dim::C, c / 2), (Dim::B, b / 8), (Dim::K, k / 16)]);
            let mapping = Mapping::with_greedy_alloc(&arch, &layer, spatial, stack).unwrap();
            let view = MappedLayer::new(&layer, &arch, &mapping).unwrap();
            let rl = roofline(&view);
            assert_eq!(rl.bound_cycles().to_bits(), roofline_bound(&view).to_bits());
        }
    }

    #[test]
    fn compute_bound_when_bandwidth_is_ample() {
        let (ideal, rl, _) = case(64, 64, 512, 4096);
        assert!(!rl.memory_bound(), "bottleneck: {}", rl.bottleneck());
        assert!((rl.bound_cycles() - ideal).abs() < 1e-9);
        assert_eq!(rl.bottleneck(), "compute");
    }

    #[test]
    fn output_dominant_layer_is_gb_bound_at_low_bw() {
        // (128,128,8): 24-bit outputs through a 128 b/cy GB dominate.
        let (_, rl, _) = case(128, 128, 8, 128);
        assert!(rl.memory_bound());
        assert!(
            rl.bottleneck().starts_with("O: GB"),
            "bottleneck: {}",
            rl.bottleneck()
        );
    }

    #[test]
    fn traffic_matches_tensor_sizes_at_minimum() {
        // With full reuse, W traffic through the GB interface is at least
        // the W tensor.
        let arch = presets::case_study_chip(128);
        let layer = Layer::matmul("t", 64, 96, 640, Precision::int8_out24());
        let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
        let stack = LoopStack::from_pairs(&[(Dim::C, 320), (Dim::B, 8), (Dim::K, 6)]);
        let mapping = Mapping::with_greedy_alloc(&arch, &layer, spatial, stack).unwrap();
        let view = MappedLayer::new(&layer, &arch, &mapping).unwrap();
        let rl = roofline(&view);
        let w_gb = rl
            .roofs
            .iter()
            .find(|r| r.interface.starts_with("W: GB"))
            .unwrap();
        assert!(w_gb.traffic_bits >= layer.tensor_bits(ulm_workload::Operand::W));
    }
}
