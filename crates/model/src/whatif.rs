//! Knob overrides for interactive what-if evaluation.
//!
//! A knob path names one architecture parameter in dotted form:
//!
//! * `mem.<name>.size` — the memory's physical capacity in bits;
//! * `mem.<name>.bw` — every port bandwidth of the memory;
//! * `mem.<name>.read_bw` / `mem.<name>.write_bw` — only the ports
//!   serving that direction.
//!
//! A knob value is either a scale (`2x`, `0.5x`) or an absolute number
//! of bits (for `size`) / bits-per-cycle (for the bandwidth knobs).
//! Memory names match case-insensitively (`mem.gb.size` finds `GB`).
//!
//! [`apply_overrides`] turns a base [`Architecture`] plus a list of
//! `path=value` strings into the modified architecture *and* the
//! [`InputDelta`] separating the two — exactly what
//! [`rebuild_dirty`](crate::LoweredLayer::rebuild_dirty) needs to
//! re-evaluate incrementally.

use crate::delta::InputDelta;
use std::fmt;
use ulm_arch::{Architecture, PortDir, PortUse};

/// A parsed knob value: a multiplicative scale or an absolute setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KnobValue {
    /// Multiply the current value (`"2x"`, `"0.5x"`).
    Scale(f64),
    /// Replace the current value (`"2048"`).
    Absolute(u64),
}

impl KnobValue {
    /// Applies the knob to `current`, refusing results the setting
    /// cannot represent: an unchecked `as u64` cast would silently
    /// saturate huge scaled values (and map NaN to 0), turning a typo
    /// like `1e30x` into a wrong-but-plausible architecture.
    fn apply(self, current: u64) -> Option<u64> {
        match self {
            KnobValue::Scale(s) => {
                let scaled = (current as f64 * s).round();
                // `u64::MAX as f64` rounds up past `u64::MAX`, so the
                // comparison must be strict to keep the cast lossless.
                if !scaled.is_finite() || scaled < 0.0 || scaled >= u64::MAX as f64 {
                    None
                } else {
                    Some(scaled as u64)
                }
            }
            KnobValue::Absolute(v) => Some(v),
        }
    }
}

/// Why a knob override was rejected. Converted into the workspace
/// `UlmError` (codes `knob/*`) at the CLI and serve boundaries.
#[derive(Debug, Clone, PartialEq)]
pub enum KnobError {
    /// The path is not of a recognized `mem.<name>.<field>` form.
    UnknownPath {
        /// The offending path.
        path: String,
    },
    /// The path names a memory absent from the hierarchy.
    UnknownMemory {
        /// The memory name that failed to resolve.
        name: String,
        /// The names that exist, for the error message.
        known: Vec<String>,
    },
    /// The value failed to parse as a scale or an absolute number.
    BadValue {
        /// The offending override, verbatim.
        over: String,
    },
    /// The value parsed but produces an unusable setting (zero or
    /// non-finite capacity/bandwidth).
    InvalidValue {
        /// The offending override, verbatim.
        over: String,
    },
    /// The scaled result cannot be represented as a `u64` setting
    /// (overflow past `u64::MAX` or a non-finite product).
    OutOfRange {
        /// The offending override, verbatim.
        over: String,
    },
}

impl fmt::Display for KnobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnobError::UnknownPath { path } => write!(
                f,
                "unknown knob path `{path}` (expected mem.<name>.size|bw|read_bw|write_bw)"
            ),
            KnobError::UnknownMemory { name, known } => {
                write!(f, "unknown memory `{name}` (known: {})", known.join(", "))
            }
            KnobError::BadValue { over } => write!(
                f,
                "bad knob value in `{over}` (expected a scale like `2x` or an absolute integer)"
            ),
            KnobError::InvalidValue { over } => {
                write!(f, "override `{over}` produces a zero or non-finite setting")
            }
            KnobError::OutOfRange { over } => {
                write!(
                    f,
                    "override `{over}` scales past the representable u64 range"
                )
            }
        }
    }
}

impl std::error::Error for KnobError {}

/// One parsed override: the field it targets and the new value.
#[derive(Debug, Clone, PartialEq)]
pub struct KnobOverride {
    /// Index of the target memory in the hierarchy.
    mem: usize,
    field: KnobField,
    value: KnobValue,
    /// The override verbatim, for error messages.
    over: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KnobField {
    Size,
    Bw,
    ReadBw,
    WriteBw,
}

impl KnobField {
    fn touches(self, dir: PortDir) -> bool {
        match self {
            KnobField::Size => false,
            KnobField::Bw => true,
            KnobField::ReadBw => dir.supports(PortUse::ReadOut),
            KnobField::WriteBw => dir.supports(PortUse::WriteIn),
        }
    }
}

fn parse_value(s: &str, over: &str) -> Result<KnobValue, KnobError> {
    let bad = || KnobError::BadValue { over: over.into() };
    if let Some(scale) = s.strip_suffix(['x', 'X']) {
        let f: f64 = scale.parse().map_err(|_| bad())?;
        if !f.is_finite() || f <= 0.0 {
            return Err(KnobError::InvalidValue { over: over.into() });
        }
        Ok(KnobValue::Scale(f))
    } else {
        Ok(KnobValue::Absolute(s.parse().map_err(|_| bad())?))
    }
}

/// Parses one `mem.<name>.<field>=<value>` override against `arch`.
pub fn parse_override(arch: &Architecture, over: &str) -> Result<KnobOverride, KnobError> {
    let unknown = || KnobError::UnknownPath { path: over.into() };
    let (path, value) = over.split_once('=').ok_or_else(unknown)?;
    let mut parts = path.split('.');
    let (ns, name, field) = (
        parts.next().ok_or_else(unknown)?,
        parts.next().ok_or_else(unknown)?,
        parts.next().ok_or_else(unknown)?,
    );
    if ns != "mem" || parts.next().is_some() {
        return Err(KnobError::UnknownPath { path: path.into() });
    }
    let field = match field {
        "size" => KnobField::Size,
        "bw" => KnobField::Bw,
        "read_bw" => KnobField::ReadBw,
        "write_bw" => KnobField::WriteBw,
        _ => return Err(KnobError::UnknownPath { path: path.into() }),
    };
    let mems = arch.hierarchy().memories();
    let mem = mems
        .iter()
        .position(|m| m.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| KnobError::UnknownMemory {
            name: name.into(),
            known: mems.iter().map(|m| m.name().to_string()).collect(),
        })?;
    let value = parse_value(value.trim(), over)?;
    Ok(KnobOverride {
        mem,
        field,
        value,
        over: over.into(),
    })
}

/// Applies `path=value` overrides to a copy of `arch`, returning the
/// modified architecture and the [`InputDelta`] between the two.
///
/// Overrides are parsed up front and applied to a private copy, so a
/// failure anywhere in the list never exposes half-applied state.
///
/// # Errors
///
/// Returns a [`KnobError`] for unknown paths or memories, unparsable
/// values, and values that would zero out a capacity or bandwidth.
pub fn apply_overrides<S: AsRef<str>>(
    arch: &Architecture,
    overrides: &[S],
) -> Result<(Architecture, InputDelta), KnobError> {
    let parsed: Vec<KnobOverride> = overrides
        .iter()
        .map(|s| parse_override(arch, s.as_ref()))
        .collect::<Result<_, _>>()?;

    let mut modified = arch.clone();
    for o in &parsed {
        let invalid = || KnobError::InvalidValue {
            over: o.over.clone(),
        };
        let out_of_range = || KnobError::OutOfRange {
            over: o.over.clone(),
        };
        let id = ulm_arch::MemoryId(o.mem);
        let h = modified.hierarchy();
        match o.field {
            KnobField::Size => {
                let next = o
                    .value
                    .apply(h.mem(id).capacity_bits())
                    .ok_or_else(out_of_range)?;
                if next == 0 {
                    return Err(invalid());
                }
                modified.hierarchy_mut().mem_mut(id).set_capacity_bits(next);
            }
            KnobField::Bw | KnobField::ReadBw | KnobField::WriteBw => {
                let ports: Vec<(usize, u64)> = h
                    .mem(id)
                    .ports()
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| o.field.touches(p.dir))
                    .map(|(i, p)| (i, p.bw_bits))
                    .collect();
                if ports.is_empty() {
                    // e.g. write_bw on a read-only memory.
                    return Err(invalid());
                }
                let next: Vec<(usize, u64)> = ports
                    .iter()
                    .map(|&(i, bw)| Ok((i, o.value.apply(bw).ok_or_else(out_of_range)?)))
                    .collect::<Result<_, KnobError>>()?;
                if next.iter().any(|&(_, bw)| bw == 0) {
                    return Err(invalid());
                }
                let mem = modified.hierarchy_mut().mem_mut(id);
                for (i, bw) in next {
                    mem.set_port_bandwidth(i, bw);
                }
            }
        }
    }
    let delta = InputDelta::between(arch, &modified);
    Ok((modified, delta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;

    fn base() -> Architecture {
        presets::case_study_chip(128)
    }

    #[test]
    fn scale_and_absolute_values() {
        let arch = base();
        let gb = arch.hierarchy().find("GB").unwrap();
        let cap = arch.hierarchy().mem(gb).capacity_bits();

        let (doubled, d) = apply_overrides(&arch, &["mem.gb.size=2x"]).unwrap();
        assert_eq!(doubled.hierarchy().mem(gb).capacity_bits(), cap * 2);
        assert_eq!(d, InputDelta::CAPACITY);

        let (abs, d) = apply_overrides(&arch, &["mem.GB.size=4096"]).unwrap();
        assert_eq!(abs.hierarchy().mem(gb).capacity_bits(), 4096);
        assert_eq!(d, InputDelta::CAPACITY);
    }

    #[test]
    fn bandwidth_overrides_are_bandwidth_deltas() {
        let arch = base();
        let (bw2, d) = apply_overrides(&arch, &["mem.gb.bw=2x"]).unwrap();
        assert_eq!(d, InputDelta::BANDWIDTH);
        let gb = arch.hierarchy().find("GB").unwrap();
        for (p, q) in arch
            .hierarchy()
            .mem(gb)
            .ports()
            .iter()
            .zip(bw2.hierarchy().mem(gb).ports())
        {
            assert_eq!(q.bw_bits, p.bw_bits * 2);
            assert_eq!(q.dir, p.dir);
        }
    }

    #[test]
    fn directional_bandwidth_touches_matching_ports_only() {
        let arch = base();
        let gb = arch.hierarchy().find("GB").unwrap();
        let (m, d) = apply_overrides(&arch, &["mem.gb.read_bw=2x"]).unwrap();
        assert_eq!(d, InputDelta::BANDWIDTH);
        for (p, q) in arch
            .hierarchy()
            .mem(gb)
            .ports()
            .iter()
            .zip(m.hierarchy().mem(gb).ports())
        {
            if p.dir.supports(PortUse::ReadOut) {
                assert_eq!(q.bw_bits, p.bw_bits * 2);
            } else {
                assert_eq!(q.bw_bits, p.bw_bits);
            }
        }
    }

    #[test]
    fn identity_override_is_an_empty_delta() {
        let (m, d) = apply_overrides(&base(), &["mem.gb.bw=1x"]).unwrap();
        assert!(d.is_empty());
        assert_eq!(m, base());
    }

    #[test]
    fn errors_are_typed() {
        let arch = base();
        assert!(matches!(
            apply_overrides(&arch, &["gb.size=2x"]),
            Err(KnobError::UnknownPath { .. })
        ));
        assert!(matches!(
            apply_overrides(&arch, &["mem.gb.volume=2x"]),
            Err(KnobError::UnknownPath { .. })
        ));
        assert!(matches!(
            apply_overrides(&arch, &["mem.nope.size=2x"]),
            Err(KnobError::UnknownMemory { .. })
        ));
        assert!(matches!(
            apply_overrides(&arch, &["mem.gb.size=huge"]),
            Err(KnobError::BadValue { .. })
        ));
        assert!(matches!(
            apply_overrides(&arch, &["mem.gb.size=0"]),
            Err(KnobError::InvalidValue { .. })
        ));
        assert!(matches!(
            apply_overrides(&arch, &["mem.gb.size=0.00000001x"]),
            Err(KnobError::InvalidValue { .. })
        ));
        // A bad override anywhere in the list leaves no half-applied
        // state (validated before mutation).
        assert!(apply_overrides(&arch, &["mem.gb.size=2x", "mem.gb.size=bad"]).is_err());
    }

    #[test]
    fn overflowing_scales_are_rejected_not_saturated() {
        let arch = base();
        // Scales whose product exceeds u64 must surface OutOfRange, not a
        // silently saturated capacity (the pre-fix behavior of `as u64`).
        for over in ["mem.gb.size=1e30x", "mem.gb.bw=1e300x"] {
            assert!(
                matches!(
                    apply_overrides(&arch, &[over]),
                    Err(KnobError::OutOfRange { .. })
                ),
                "{over} should be out of range"
            );
        }
        // Non-finite and non-positive scale factors are rejected at parse
        // time — they never reach the multiply.
        for over in [
            "mem.gb.size=NaNx",
            "mem.gb.size=infx",
            "mem.gb.size=-2x",
            "mem.gb.size=0x",
        ] {
            assert!(
                matches!(
                    apply_overrides(&arch, &[over]),
                    Err(KnobError::BadValue { .. }) | Err(KnobError::InvalidValue { .. })
                ),
                "{over} should be rejected before application"
            );
        }
        // A scale that stays in range still applies exactly.
        let (m, _) = apply_overrides(&arch, &["mem.gb.size=2x"]).unwrap();
        let gb = arch.hierarchy().find("GB").unwrap();
        assert_eq!(
            m.hierarchy().mem(gb).capacity_bits(),
            arch.hierarchy().mem(gb).capacity_bits() * 2
        );
    }
}
