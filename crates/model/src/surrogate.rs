//! Arch-specialized surrogate models: partial evaluation of the lowering
//! pipeline for a fixed `(architecture, mapping shape)`.
//!
//! Every stage of the [`LoweredLayer`](crate::LoweredLayer) pipeline
//! declares which of its inputs are architecture-constant and which vary
//! per workload ([`Stage::arch_constant`](crate::Stage::arch_constant) /
//! [`Stage::workload_varying`](crate::Stage::workload_varying)). A
//! [`SpecializedModel`] exploits that split: at
//! [`prepare`](SpecializedModel::prepare) time it constant-folds every
//! arch-dependent table the pipeline reads — the per-interface port LUTs,
//! link bandwidths and buffering flags — into flat slot tables, and at
//! [`query`](SpecializedModel::query) time it runs only the small
//! workload-dim kernel over them: re-derive the temporal bounds, reassign
//! the greedy allocation in place, rebuild the residency tables, and
//! price phases + DTLs off the folded slots.
//!
//! The result is **bit-identical to
//! [`evaluate_fast`](crate::LatencyModel::evaluate_fast) by
//! construction**: the folded tables are captured through the very
//! lookups the generic path performs, and both paths share one arithmetic
//! body per stage (see the crate-private `slots` module). The generic
//! path stays
//! available as the differential oracle
//! ([`query_oracle`](SpecializedModel::query_oracle)).

use crate::slots::FoldedSlots;
use crate::{FastLatency, LatencyModel, ModelScratch};
use std::fmt;
use ulm_arch::Architecture;
use ulm_mapping::{LoopStack, MappedLayer, Mapping, OperandAlloc, SpatialUnroll};
use ulm_workload::{Dim, DimSizes, Layer, LayerType};

/// Why a surrogate could not be prepared or a query could not be
/// answered. Carried by `UlmError::Surrogate` with `surrogate/*` codes.
#[derive(Debug, Clone, PartialEq)]
pub enum SurrogateError {
    /// The template layer's type cannot be expressed as `(B, K, C)`
    /// workload dims (only dense/matmul layers specialize).
    UnsupportedLayer {
        /// The offending layer's name.
        layer: String,
    },
    /// The temporal dim ordering is not a permutation of `B, K, C`.
    BadOrdering {
        /// The ordering as given.
        ordering: Vec<Dim>,
    },
    /// A query dim was zero.
    InvalidDims {
        /// The offending `(B, K, C)` query point.
        dims: (u64, u64, u64),
    },
    /// The greedy allocation found no level assignment: the first
    /// working set under this shape overflows an inner memory.
    Infeasible {
        /// The offending `(B, K, C)` query point.
        dims: (u64, u64, u64),
    },
    /// The reassigned mapping failed validation against the
    /// architecture (e.g. the spatial unroll overflows the MAC array).
    InvalidMapping {
        /// The offending `(B, K, C)` query point.
        dims: (u64, u64, u64),
    },
}

impl fmt::Display for SurrogateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SurrogateError::UnsupportedLayer { layer } => write!(
                f,
                "layer '{layer}' cannot be specialized: only dense/matmul \
                 layers have (B, K, C) workload dims"
            ),
            SurrogateError::BadOrdering { ordering } => write!(
                f,
                "temporal ordering {ordering:?} is not a permutation of B, K, C"
            ),
            SurrogateError::InvalidDims { dims } => {
                write!(f, "query dims {dims:?} contain a zero")
            }
            SurrogateError::Infeasible { dims } => write!(
                f,
                "no feasible greedy allocation for dims {dims:?} under this \
                 mapping shape (inner working set overflows a memory)"
            ),
            SurrogateError::InvalidMapping { dims } => write!(
                f,
                "reassigned mapping for dims {dims:?} failed validation \
                 against the architecture"
            ),
        }
    }
}

impl std::error::Error for SurrogateError {}

/// The workload-independent skeleton of a mapping: the spatial unroll
/// plus the temporal loop ordering (innermost first, one loop per dim).
/// A query point `(B, K, C)` instantiates it by giving each dim the
/// temporal bound `ceil(dim / spatial extent)` (unit loops are dropped)
/// and re-running the greedy level allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingShape {
    spatial: SpatialUnroll,
    ordering: Vec<Dim>,
}

impl MappingShape {
    /// Builds a shape from a spatial unroll and a temporal dim ordering
    /// (innermost first). The ordering must be a permutation of
    /// `B, K, C`.
    pub fn new(spatial: SpatialUnroll, ordering: Vec<Dim>) -> Result<Self, SurrogateError> {
        let mut seen = [false; 3];
        let mut ok = ordering.len() == 3;
        for &d in &ordering {
            match d {
                Dim::B => seen[0] = true,
                Dim::K => seen[1] = true,
                Dim::C => seen[2] = true,
                _ => ok = false,
            }
        }
        if !ok || !seen.iter().all(|&s| s) {
            return Err(SurrogateError::BadOrdering { ordering });
        }
        Ok(Self { spatial, ordering })
    }

    /// Derives a shape from an existing mapping: its spatial unroll and
    /// its stack's dim order of first appearance (innermost first), with
    /// dims the stack never names appended outermost. Instantiating the
    /// shape at the original layer's dims reproduces mappings whose
    /// stack had one loop per dim (the common searched form).
    pub fn from_mapping(mapping: &Mapping) -> Result<Self, SurrogateError> {
        let mut ordering = Vec::with_capacity(3);
        for l in mapping.stack().loops() {
            if !ordering.contains(&l.dim) {
                ordering.push(l.dim);
            }
        }
        for d in [Dim::B, Dim::K, Dim::C] {
            if !ordering.contains(&d) {
                ordering.push(d);
            }
        }
        Self::new(mapping.spatial().clone(), ordering)
    }

    /// The spatial unroll.
    pub fn spatial(&self) -> &SpatialUnroll {
        &self.spatial
    }

    /// The temporal dim ordering, innermost first.
    pub fn ordering(&self) -> &[Dim] {
        &self.ordering
    }
}

impl fmt::Display for MappingShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} | temporal", self.spatial)?;
        for d in &self.ordering {
            write!(f, " {d:?}")?;
        }
        Ok(())
    }
}

/// Query-path counters of a [`SpecializedModel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SurrogateStats {
    /// Successful queries answered.
    pub queries: u64,
    /// Queries whose Step-2 port grouping was reused from the previous
    /// query (the sorted endpoint keys were still valid).
    pub grouping_reused: u64,
    /// Queries that had to rebuild the port grouping from scratch (first
    /// query, or a dim change moved the DTL inventory).
    pub grouping_rebuilt: u64,
    /// Queries answered straight from the point memo: the exact
    /// `(B, K, C)` was already priced by this model, so the cached
    /// [`FastLatency`] is returned without touching any stage. Memo hits
    /// do not move the grouping counters
    /// (`grouping_reused + grouping_rebuilt + memo_hits == queries` for a
    /// bandwidth-aware model).
    pub memo_hits: u64,
}

/// A latency model partially evaluated for one
/// `(architecture, mapping shape)` pair.
///
/// Built once with [`prepare`](Self::prepare); answers workload-dim
/// queries with [`query`](Self::query). Holds its own clone of the
/// architecture (pass a calibrated one to specialize the calibrated
/// model — see [`crate::calibrate`]) and every scratch buffer the query
/// path needs, so steady-state queries allocate nothing.
#[derive(Debug)]
pub struct SpecializedModel {
    model: LatencyModel,
    arch: Architecture,
    shape: MappingShape,
    template: Layer,
    mapping: Mapping,
    slots: FoldedSlots,
    scratch: ModelScratch,
    residency: Vec<u64>,
    pairs: Vec<(Dim, u64)>,
    prefix: Vec<DimSizes>,
    stats: SurrogateStats,
    /// Answered points: `(B, K, C)` → the exact [`FastLatency`] the
    /// specialized kernel produced. The model is deterministic per
    /// instance (arch, shape, template and options are all fixed), so a
    /// repeated point returns the cached value bit-for-bit — this is the
    /// steady-state fast path for serve's repeated `surrogate` requests,
    /// which are never result-cached at the transport layer. Bounded by
    /// `MEMO_CAP`; beyond that, queries are still answered, just not
    /// remembered.
    memo: std::collections::HashMap<(u64, u64, u64), FastLatency>,
}

/// Upper bound on remembered points per [`SpecializedModel`] (~a few
/// hundred KiB at most; a full DSE b/k/c sweep fits comfortably).
const MEMO_CAP: usize = 1 << 14;

impl SpecializedModel {
    /// Partially evaluates `model` for `(arch, shape)`, folding every
    /// architecture-constant table the pipeline reads. `template`
    /// supplies the query-constant layer fields (type, precision,
    /// KV-cache flags); its dims are overwritten per query.
    pub fn prepare(
        model: LatencyModel,
        arch: &Architecture,
        template: &Layer,
        shape: MappingShape,
    ) -> Result<Self, SurrogateError> {
        if !matches!(template.layer_type(), LayerType::Dense | LayerType::Matmul) {
            return Err(SurrogateError::UnsupportedLayer {
                layer: template.name().to_string(),
            });
        }
        let slots = FoldedSlots::fold(arch.hierarchy());
        // Seed the reusable mapping with placeholder loops/allocs; every
        // query reassigns both in place before use.
        let mapping = Mapping::new(
            shape.spatial.clone(),
            LoopStack::from_pairs(&[]),
            ulm_workload::PerOperand::new(
                OperandAlloc::flat(0),
                OperandAlloc::flat(0),
                OperandAlloc::flat(0),
            ),
        );
        Ok(Self {
            model,
            arch: arch.clone(),
            shape,
            template: template.clone(),
            mapping,
            slots,
            scratch: ModelScratch::default(),
            residency: Vec::new(),
            pairs: Vec::new(),
            prefix: Vec::new(),
            stats: SurrogateStats::default(),
            memo: std::collections::HashMap::new(),
        })
    }

    /// The architecture this model is specialized for.
    pub fn arch(&self) -> &Architecture {
        &self.arch
    }

    /// The mapping shape this model is specialized for.
    pub fn shape(&self) -> &MappingShape {
        &self.shape
    }

    /// Query-path counters so far.
    pub fn stats(&self) -> SurrogateStats {
        self.stats
    }

    /// Drops every remembered point (the counters keep their values).
    /// Subsequent queries run the specialized kernel again, once per
    /// distinct point — useful to bound a long-lived model's footprint,
    /// or to benchmark the kernel itself.
    pub fn clear_memo(&mut self) {
        self.memo.clear();
    }

    /// Instantiates the shape at `(b, k, c)`: writes the temporal bounds
    /// `ceil(dim / spatial extent)` into `pairs` (unit loops dropped) and
    /// the running extent products into `prefix`
    /// (`prefix[p]` = spatial × the `p` innermost temporal loops).
    fn instantiate(
        shape: &MappingShape,
        dims: (u64, u64, u64),
        pairs: &mut Vec<(Dim, u64)>,
        prefix: &mut Vec<DimSizes>,
    ) {
        let (b, k, c) = dims;
        let size = |d: Dim| match d {
            Dim::B => b,
            Dim::K => k,
            Dim::C => c,
            _ => 1,
        };
        pairs.clear();
        prefix.clear();
        let mut ext = shape.spatial.extents();
        prefix.push(ext);
        for &d in &shape.ordering {
            let bound = size(d).div_ceil(shape.spatial.extent(d));
            if bound > 1 {
                pairs.push((d, bound));
                ext.multiply(d, bound);
                prefix.push(ext);
            }
        }
    }

    /// Answers one workload point through the specialized kernel:
    /// temporal bounds → in-place greedy reallocation → residency/feed
    /// stages → phases + DTLs off the folded slots → Step 2 with the
    /// cached port grouping (full combine on the first query or when the
    /// DTL inventory moved). A point this model has already priced is
    /// answered from the point memo without running any stage — the model
    /// is deterministic per instance, so the cached value is the one the
    /// kernel would recompute. Bit-identical to
    /// [`query_oracle`](Self::query_oracle) on the same point either way.
    pub fn query(&mut self, b: u64, k: u64, c: u64) -> Result<FastLatency, SurrogateError> {
        if b == 0 || k == 0 || c == 0 {
            return Err(SurrogateError::InvalidDims { dims: (b, k, c) });
        }
        if let Some(&hit) = self.memo.get(&(b, k, c)) {
            self.stats.queries += 1;
            self.stats.memo_hits += 1;
            return Ok(hit);
        }
        let Self {
            model,
            arch,
            shape,
            template,
            mapping,
            slots,
            scratch,
            residency,
            pairs,
            prefix,
            stats,
            memo,
        } = self;
        template.set_matmul_dims(b, k, c);
        Self::instantiate(shape, (b, k, c), pairs, prefix);
        if !mapping.reassign_greedy(arch, template, pairs, prefix) {
            return Err(SurrogateError::Infeasible { dims: (b, k, c) });
        }
        let Some(view) = MappedLayer::new_fast(template, arch, mapping, residency) else {
            return Err(SurrogateError::InvalidMapping { dims: (b, k, c) });
        };
        scratch
            .lowered_mut()
            .rebuild_specialized(&view, model.dtl_options(), &*slots);
        let opts = *model.options();
        let ss_overall = if opts.bw_aware {
            let (lowered, stall) = scratch.parts();
            let raw = match stall.combine_with_cached_grouping(
                arch,
                lowered.dtls(),
                opts.union,
                opts.eq2_oversubscription_bound,
            ) {
                Some(v) => {
                    stats.grouping_reused += 1;
                    v
                }
                None => {
                    stats.grouping_rebuilt += 1;
                    stall.combine_and_integrate(
                        arch,
                        lowered.dtls(),
                        opts.union,
                        opts.eq2_oversubscription_bound,
                    )
                }
            };
            raw.max(0.0)
        } else {
            0.0
        };
        stats.queries += 1;
        let out = scratch.lowered().totals(ss_overall);
        if memo.len() < MEMO_CAP {
            memo.insert((b, k, c), out);
        }
        Ok(out)
    }

    /// The differential oracle: the same workload point answered by the
    /// generic path from scratch — fresh layer, fresh greedy allocation
    /// ([`Mapping::with_greedy_alloc`]), full validation and
    /// [`evaluate_fast`](crate::LatencyModel::evaluate_fast) into a cold
    /// scratch. [`query`](Self::query) must match this bit for bit.
    pub fn query_oracle(&self, b: u64, k: u64, c: u64) -> Result<FastLatency, SurrogateError> {
        if b == 0 || k == 0 || c == 0 {
            return Err(SurrogateError::InvalidDims { dims: (b, k, c) });
        }
        let mut layer = self.template.clone();
        layer.set_matmul_dims(b, k, c);
        let (mut pairs, mut prefix) = (Vec::new(), Vec::new());
        Self::instantiate(&self.shape, (b, k, c), &mut pairs, &mut prefix);
        let mapping = Mapping::with_greedy_alloc(
            &self.arch,
            &layer,
            self.shape.spatial.clone(),
            LoopStack::from_pairs(&pairs),
        )
        .map_err(|_| SurrogateError::Infeasible { dims: (b, k, c) })?;
        let view = MappedLayer::new(&layer, &self.arch, &mapping)
            .map_err(|_| SurrogateError::InvalidMapping { dims: (b, k, c) })?;
        let mut scratch = ModelScratch::default();
        Ok(self.model.evaluate_fast(&view, &mut scratch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_workload::Precision;

    fn assert_same(a: FastLatency, b: FastLatency) {
        assert_eq!(a.cc_total.to_bits(), b.cc_total.to_bits());
        assert_eq!(a.ss_overall.to_bits(), b.ss_overall.to_bits());
        assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
        assert_eq!(a.cc_ideal.to_bits(), b.cc_ideal.to_bits());
        assert_eq!(a.preload, b.preload);
        assert_eq!(a.offload, b.offload);
        assert_eq!(a.cc_spatial, b.cc_spatial);
    }

    fn fig8_specialized() -> SpecializedModel {
        let arch = presets::case_study_chip(128);
        let template = Layer::matmul("big", 64, 96, 640, Precision::int8_out24());
        let shape = MappingShape::new(
            SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]),
            vec![Dim::C, Dim::B, Dim::K],
        )
        .unwrap();
        SpecializedModel::prepare(LatencyModel::new(), &arch, &template, shape).unwrap()
    }

    #[test]
    fn query_matches_oracle_on_fig8_sweep() {
        let mut s = fig8_specialized();
        for (b, k, c) in [
            (64, 96, 640),
            (1, 96, 640),
            (64, 96, 64),
            (8, 16, 2),
            (3, 5, 7),
            (128, 192, 1280),
            (64, 96, 641),
        ] {
            let fast = s.query(b, k, c).unwrap();
            let oracle = s.query_oracle(b, k, c).unwrap();
            assert_same(fast, oracle);
        }
        let st = s.stats();
        assert_eq!(st.queries, 7);
        assert_eq!(st.memo_hits, 0, "all seven points are distinct");
        assert_eq!(st.grouping_reused + st.grouping_rebuilt, st.queries);
        // After the first query primes the grouping, same-inventory
        // points reuse it.
        assert!(st.grouping_reused > 0, "grouping never reused: {st:?}");
    }

    #[test]
    fn repeated_points_are_answered_from_the_memo() {
        let mut s = fig8_specialized();
        let first = s.query(64, 96, 640).unwrap();
        let again = s.query(64, 96, 640).unwrap();
        let thrice = s.query(64, 96, 640).unwrap();
        assert_same(first, again);
        assert_same(first, thrice);
        // A different point misses, then its repeat hits too.
        let other = s.query(16, 96, 640).unwrap();
        assert_same(other, s.query(16, 96, 640).unwrap());
        let st = s.stats();
        assert_eq!(st.queries, 5);
        assert_eq!(st.memo_hits, 3);
        assert_eq!(st.grouping_reused + st.grouping_rebuilt + st.memo_hits, 5);
        // The memoized answer is still the oracle's answer.
        assert_same(first, s.query_oracle(64, 96, 640).unwrap());
    }

    #[test]
    fn query_matches_oracle_with_kv_cache_template() {
        let arch = presets::case_study_chip(128);
        let template = Layer::matmul("attend", 1, 64, 512, Precision::int8_out24())
            .with_kv_cache(ulm_workload::Operand::W);
        let shape = MappingShape::new(
            SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]),
            vec![Dim::C, Dim::K, Dim::B],
        )
        .unwrap();
        let mut s =
            SpecializedModel::prepare(LatencyModel::new(), &arch, &template, shape).unwrap();
        for (b, k, c) in [(1, 64, 512), (1, 64, 1024), (2, 32, 96)] {
            assert_same(s.query(b, k, c).unwrap(), s.query_oracle(b, k, c).unwrap());
        }
    }

    #[test]
    fn shape_from_mapping_round_trips_fig8() {
        let arch = presets::case_study_chip(128);
        let layer = Layer::matmul("big", 64, 96, 640, Precision::int8_out24());
        let mapping = Mapping::with_greedy_alloc(
            &arch,
            &layer,
            SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]),
            LoopStack::from_pairs(&[(Dim::C, 320), (Dim::B, 8), (Dim::K, 6)]),
        )
        .unwrap();
        let shape = MappingShape::from_mapping(&mapping).unwrap();
        assert_eq!(shape.ordering(), &[Dim::C, Dim::B, Dim::K]);
        // Instantiating at the original dims reproduces the stack.
        let (mut pairs, mut prefix) = (Vec::new(), Vec::new());
        SpecializedModel::instantiate(&shape, (64, 96, 640), &mut pairs, &mut prefix);
        assert_eq!(pairs, vec![(Dim::C, 320), (Dim::B, 8), (Dim::K, 6)]);
    }

    #[test]
    fn unsupported_and_invalid_inputs_are_typed() {
        let arch = presets::conv_native_chip().arch;
        let conv = Layer::conv2d(
            "cv",
            ulm_workload::LayerShape::conv(1, 8, 8, 8, 8, 3, 3),
            Precision::int8_acc24(),
        );
        let shape = MappingShape::new(
            SpatialUnroll::new(vec![(Dim::K, 2)]),
            vec![Dim::B, Dim::K, Dim::C],
        )
        .unwrap();
        let err = SpecializedModel::prepare(LatencyModel::new(), &arch, &conv, shape).unwrap_err();
        assert!(matches!(err, SurrogateError::UnsupportedLayer { .. }));

        assert!(matches!(
            MappingShape::new(SpatialUnroll::new(vec![(Dim::K, 2)]), vec![Dim::B, Dim::K]),
            Err(SurrogateError::BadOrdering { .. })
        ));

        let mut s = fig8_specialized();
        assert!(matches!(
            s.query(0, 1, 1),
            Err(SurrogateError::InvalidDims { .. })
        ));
        // A later valid query still works after an error.
        assert_same(s.query(4, 4, 8).unwrap(), s.query_oracle(4, 4, 8).unwrap());
    }

    #[test]
    fn bw_unaware_surrogate_matches_too() {
        let arch = presets::case_study_chip(128);
        let template = Layer::matmul("big", 64, 96, 640, Precision::int8_out24());
        let shape = MappingShape::new(
            SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]),
            vec![Dim::C, Dim::B, Dim::K],
        )
        .unwrap();
        let mut s =
            SpecializedModel::prepare(LatencyModel::bw_unaware(), &arch, &template, shape).unwrap();
        for (b, k, c) in [(64, 96, 640), (16, 32, 48)] {
            assert_same(s.query(b, k, c).unwrap(), s.query_oracle(b, k, c).unwrap());
        }
    }
}
