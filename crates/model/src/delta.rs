//! Dependency tracking for incremental lowering.
//!
//! Every stage of the [`LoweredLayer`](crate::LoweredLayer) pipeline
//! reads a known subset of the evaluation inputs ([`Stage::reads`]).
//! An [`InputDelta`] names which input groups changed between two
//! evaluations; [`rebuild_dirty`](crate::LoweredLayer::rebuild_dirty)
//! recomputes exactly the stages whose read set
//! intersects the delta, bit-identical to a from-scratch lowering (the
//! dirty stages run the same code over the same inputs; the clean
//! stages keep bits that would have come out identical anyway).
//!
//! The input groups are deliberately coarse — they track the knobs a
//! Fig. 8-style sweep or an interactive `whatif` actually moves:
//!
//! | group | examples | invalidates |
//! |---|---|---|
//! | `WORKLOAD` | layer dims, precision | everything |
//! | `MAPPING` | loop stack, spatial unroll, allocation | everything |
//! | `ARCH_STRUCTURE` | chains, port identity/direction, double buffering, replication, MAC array, stall policy | everything |
//! | `BANDWIDTH` | any port's `bw_bits` | phases + the DTL bandwidth columns |
//! | `CAPACITY` | any memory's `capacity_bits` | nothing (validation only) |
//!
//! `CAPACITY` invalidating nothing is the paper's own structure: with a
//! *fixed legal mapping*, memory capacity never appears in the latency
//! arithmetic — it only gates which mappings are legal. Capacity-only
//! what-ifs therefore re-validate the mapping but skip every stage.

use ulm_arch::{Architecture, PortUse};
use ulm_workload::Operand;

/// A set of evaluation-input groups that changed between two runs.
///
/// Combine with [`union`](Self::union); query with
/// [`intersects`](Self::intersects). Construct from two architectures
/// with [`between`](Self::between) (workload/mapping changes are the
/// caller's knowledge — tag them explicitly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct InputDelta(u8);

impl InputDelta {
    /// Nothing changed.
    pub const NONE: Self = Self(0);
    /// The layer (dims, precision, relevance) changed.
    pub const WORKLOAD: Self = Self(1 << 0);
    /// The mapping (loop stack, spatial unroll, allocation) changed.
    pub const MAPPING: Self = Self(1 << 1);
    /// The architecture's *structure* changed: chains, port identity or
    /// direction, double buffering, replication, MAC array, backing
    /// store, memory kind, or the stall-integration policy.
    pub const ARCH_STRUCTURE: Self = Self(1 << 2);
    /// Only port bandwidth values (`bw_bits`) changed.
    pub const BANDWIDTH: Self = Self(1 << 3);
    /// Only memory capacities changed (validation-only: with a fixed
    /// legal mapping, capacity never enters the latency arithmetic).
    pub const CAPACITY: Self = Self(1 << 4);
    /// Every group — forces a full rebuild.
    pub const ALL: Self = Self(0b1_1111);

    /// The union of two deltas.
    #[must_use]
    pub fn union(self, other: Self) -> Self {
        Self(self.0 | other.0)
    }

    /// True when any group of `other` is present in `self`.
    pub fn intersects(self, other: Self) -> bool {
        self.0 & other.0 != 0
    }

    /// True when every group of `other` is present in `self`.
    pub fn contains(self, other: Self) -> bool {
        self.0 & other.0 == other.0
    }

    /// True when nothing changed.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Classifies the difference between two architectures into input
    /// groups by comparing exactly the fields the lowering pipeline
    /// reads. Cosmetic differences (names) map to [`NONE`](Self::NONE).
    pub fn between(a: &Architecture, b: &Architecture) -> Self {
        let (ha, hb) = (a.hierarchy(), b.hierarchy());
        if a.mac_array() != b.mac_array()
            || a.stall_integration() != b.stall_integration()
            || ha.memories().len() != hb.memories().len()
        {
            return Self::ARCH_STRUCTURE
                .union(Self::BANDWIDTH)
                .union(Self::CAPACITY);
        }
        let mut d = Self::NONE;
        for (ma, mb) in ha.memories().iter().zip(hb.memories()) {
            if ma.kind() != mb.kind()
                || ma.is_double_buffered() != mb.is_double_buffered()
                || ma.is_backing_store() != mb.is_backing_store()
                || ma.replication() != mb.replication()
                || ma.ports().len() != mb.ports().len()
                || ma
                    .ports()
                    .iter()
                    .zip(mb.ports())
                    .any(|(p, q)| p.dir != q.dir)
            {
                d = d.union(Self::ARCH_STRUCTURE);
            }
            if ma.capacity_bits() != mb.capacity_bits() {
                d = d.union(Self::CAPACITY);
            }
            if ma
                .ports()
                .iter()
                .zip(mb.ports())
                .any(|(p, q)| p.bw_bits != q.bw_bits)
            {
                d = d.union(Self::BANDWIDTH);
            }
        }
        for op in Operand::all() {
            if ha.chain(op) != hb.chain(op) {
                d = d.union(Self::ARCH_STRUCTURE);
                continue;
            }
            for &id in ha.chain(op) {
                for usage in [PortUse::ReadOut, PortUse::WriteIn] {
                    if ha.port(id, op, usage).0 != hb.port(id, op, usage).0 {
                        d = d.union(Self::ARCH_STRUCTURE);
                    }
                }
            }
        }
        d
    }
}

impl std::ops::BitOr for InputDelta {
    type Output = Self;
    fn bitor(self, rhs: Self) -> Self {
        self.union(rhs)
    }
}

/// The named stages of the lowering pipeline, in build order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// The per-`(operand, level)` residency/turnaround tables, the
    /// loops-above arena and the layer scalars (`CC_ideal`,
    /// `CC_spatial`, spatial stall).
    Residency,
    /// The per-operand compute feed rates (`words_per_cycle`).
    FeedRates,
    /// The pre-load / off-load phase cycle counts.
    Phases,
    /// The Step-1 DTL graph with its bandwidth-dependent columns
    /// (`RealBW`, `X_REAL`, `SS_u`).
    DtlGraph,
}

impl Stage {
    /// Every stage, in build order.
    pub const ALL: [Stage; 4] = [
        Stage::Residency,
        Stage::FeedRates,
        Stage::Phases,
        Stage::DtlGraph,
    ];

    /// The input groups this stage reads: the stage must be rebuilt
    /// exactly when the delta intersects this set.
    ///
    /// Always the union of [`arch_constant`](Self::arch_constant) and
    /// [`workload_varying`](Self::workload_varying) — the two-phase
    /// partial-evaluation split declared below.
    pub fn reads(self) -> InputDelta {
        self.arch_constant().union(self.workload_varying())
    }

    /// The subset of this stage's inputs that is **architecture-constant**
    /// for a fixed `(architecture, mapping shape)` pair: the groups a
    /// [`SpecializedModel`](crate::surrogate::SpecializedModel) folds into
    /// tables once at specialization time. A delta in these groups
    /// invalidates the specialization itself, never an individual query.
    pub fn arch_constant(self) -> InputDelta {
        match self {
            Stage::Residency => InputDelta::ARCH_STRUCTURE,
            Stage::FeedRates => InputDelta::NONE,
            Stage::Phases | Stage::DtlGraph => {
                InputDelta::ARCH_STRUCTURE.union(InputDelta::BANDWIDTH)
            }
        }
    }

    /// The subset of this stage's inputs that **varies per query** under a
    /// fixed specialization: workload dims and the mapping bounds derived
    /// from them. These are the only inputs the surrogate's per-query
    /// kernel re-reads; everything else comes from the folded tables.
    pub fn workload_varying(self) -> InputDelta {
        InputDelta::WORKLOAD.union(InputDelta::MAPPING)
    }
}

/// What [`rebuild_dirty`](crate::LoweredLayer::rebuild_dirty) actually
/// did: how many of the four pipeline stages
/// ran versus how many were reused untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RebuildStats {
    /// Stages recomputed.
    pub stages_rebuilt: u32,
    /// Stages reused from the previous lowering.
    pub stages_skipped: u32,
}

impl RebuildStats {
    /// A from-scratch rebuild of every stage.
    pub fn full() -> Self {
        Self {
            stages_rebuilt: Stage::ALL.len() as u32,
            stages_skipped: 0,
        }
    }

    /// True when nothing was reused.
    pub fn was_full_rebuild(&self) -> bool {
        self.stages_skipped == 0
    }

    /// Accumulates another rebuild's counts (for sweep-level stats).
    pub fn accumulate(&mut self, other: RebuildStats) {
        self.stages_rebuilt += other.stages_rebuilt;
        self.stages_skipped += other.stages_skipped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;

    #[test]
    fn set_algebra() {
        let d = InputDelta::BANDWIDTH | InputDelta::CAPACITY;
        assert!(d.intersects(InputDelta::BANDWIDTH));
        assert!(d.contains(InputDelta::CAPACITY));
        assert!(!d.intersects(InputDelta::MAPPING));
        assert!(InputDelta::NONE.is_empty());
        assert!(InputDelta::ALL.contains(d));
    }

    #[test]
    fn arch_workload_split_partitions_every_read_set() {
        for s in Stage::ALL {
            // The two declared halves reassemble the read set exactly...
            assert_eq!(s.reads(), s.arch_constant().union(s.workload_varying()));
            // ...and are disjoint: an input is folded or per-query, never both.
            assert!(!s.arch_constant().intersects(s.workload_varying()));
            // Capacity is in neither half: it gates legality, not latency.
            assert!(!s.reads().intersects(InputDelta::CAPACITY));
        }
    }

    #[test]
    fn stage_read_sets_are_ordered_by_volatility() {
        // Bandwidth invalidates only the bandwidth-reading stages.
        for s in Stage::ALL {
            let bw_dirty = s.reads().intersects(InputDelta::BANDWIDTH);
            assert_eq!(bw_dirty, matches!(s, Stage::Phases | Stage::DtlGraph));
            // Capacity invalidates nothing.
            assert!(!s.reads().intersects(InputDelta::CAPACITY));
            // Workload and mapping invalidate everything.
            assert!(s.reads().intersects(InputDelta::WORKLOAD));
            assert!(s.reads().intersects(InputDelta::MAPPING));
        }
    }

    #[test]
    fn between_classifies_bandwidth_and_capacity() {
        let base = presets::case_study_chip(128);
        assert!(InputDelta::between(&base, &base).is_empty());

        let mut bw = base.clone();
        let gb = bw.hierarchy().find("GB").unwrap();
        let n = bw.hierarchy().mem(gb).ports().len();
        for p in 0..n {
            let old = bw.hierarchy().mem(gb).ports()[p].bw_bits;
            bw.hierarchy_mut()
                .mem_mut(gb)
                .set_port_bandwidth(p, old * 2);
        }
        assert_eq!(InputDelta::between(&base, &bw), InputDelta::BANDWIDTH);

        let mut cap = base.clone();
        let old = cap.hierarchy().mem(gb).capacity_bits();
        cap.hierarchy_mut().mem_mut(gb).set_capacity_bits(old * 2);
        assert_eq!(InputDelta::between(&base, &cap), InputDelta::CAPACITY);
    }
}
