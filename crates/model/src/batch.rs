//! Batched structure-of-arrays evaluation of candidate loop orderings.
//!
//! The mapper's scalar hot path walks one ordering at a time through
//! pointer-rich `Mapping`/`MappedLayer`/`LoweredLayer` structs. For the
//! ordering search all of that structure is invariant: the architecture,
//! the layer, the spatial unrolling and the factor *multiset* are fixed,
//! and only the factor *order* varies. [`BatchKernel`] exploits that by
//! packing the per-(operand, level) scalars of up to `lanes` orderings —
//! `Mem_DATA`, `Mem_CC`, `Z`, the `ReqBW` run, refill and distinct-block
//! counts — into contiguous per-row lanes, then evaluating the phase
//! floor and roofline bounds for all lanes in lockstep so the compiler
//! can autovectorize. Only the (few) lanes that survive pruning pay for
//! the Eq. (1)/(2) stall integration, which runs through the *same*
//! [`finish`](crate::dtl) + [`StallScratch::combine_and_integrate`]
//! code the scalar path uses — so surviving scores are bit-identical to
//! [`LatencyModel::evaluate_fast`] by construction.
//!
//! Batch-constant work is hoisted into [`BatchKernel::new`]: the spatial
//! fit and coverage checks (`CC_spatial` and every dimension extent are
//! multiset invariants, independent of order), per-level capacity
//! budgets for the greedy allocation, port bandwidths and DTL endpoint
//! templates. Per pushed ordering the kernel extends prefix-memoized
//! cycle counts and residency words (shared inner prefixes with the
//! previously pushed ordering are reused, mirroring the scalar path's
//! `cache_hits` accounting), replays the greedy level allocation with
//! precomputed word budgets, and derives `Z`/refill/run scalars from
//! closed-form suffix products instead of re-walking loop stacks.

use crate::dtl::{finish, Dtl, DtlKind, Endpoint, Endpoints, WindowShape};
use crate::fast::FastLatency;
use crate::lower::kv_active_interfaces;
use crate::stall::StallScratch;
use crate::LatencyModel;
use ulm_arch::{Architecture, MemoryId, PortUse};
use ulm_mapping::SpatialUnroll;
use ulm_workload::{Dim, DimSizes, Layer, Operand, Relevance, ALL_DIMS};

/// Outcome of one lane after a [`BatchKernel::drain`] pass, mirroring
/// the scalar search's per-ordering outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LaneOutcome {
    /// No legal greedy allocation for this ordering.
    Illegal,
    /// Legal, but a monotone lower bound proved the ordering cannot beat
    /// the incumbent passed to `drain`.
    Pruned,
    /// Fully evaluated: `CC_total`, bit-identical to
    /// [`LatencyModel::evaluate_fast`] on the same ordering.
    Scored(f64),
}

/// Constant per-(operand, level<top) link data shared by every lane.
#[derive(Debug, Clone, Copy)]
struct LinkSpec {
    /// The narrower of the two port bandwidths the main (refill/drain)
    /// link occupies — also the preload/offload and roofline bandwidth.
    link_bw: u64,
    /// Whether the receiving/source (lower) memory double-buffers.
    lower_db: bool,
    /// Endpoints of the refill (W/I) or drain (O) link.
    main_eps: Endpoints,
    /// O only: psum-readback bandwidth and endpoints.
    psum_bw: u64,
    psum_eps: Endpoints,
}

/// Constant per-operand data shared by every lane.
#[derive(Debug, Clone)]
struct OpSpec {
    op: Operand,
    /// Resident precision in bits (partial-sum width for O).
    bits: u64,
    chain: Vec<MemoryId>,
    /// Per dim: does a temporal factor of this dim grow the operand's
    /// resident words multiplicatively (strictly relevant)?
    step: [bool; 7],
    /// Per dim: `is_relevant()` (partials included) — drives runs,
    /// refill counts and output finality.
    rel: [bool; 7],
    /// All factor dims are strictly relevant or irrelevant to this
    /// operand, so resident words grow by pure factor products.
    words_mult: bool,
    /// Interfaces that carry traffic: `chain.len() - 1`, one fewer for a
    /// KV-cache resident operand — mirrors
    /// [`LoweredLayer::active_interfaces`](crate::LoweredLayer::active_interfaces)
    /// so batched scores stay bit-identical to the scalar path.
    active: usize,
    /// Per level < top: greedy capacity budget in *words*
    /// (`mapper_capacity_bits / sharers / bits`, floored).
    cap_words: Vec<u64>,
    /// Per level < top: link constants.
    links: Vec<LinkSpec>,
    /// Compute-facing link: relevant spatial words per cycle.
    words_per_cycle: u64,
    /// Compute-facing link: port bandwidth and endpoint.
    compute_bw: u64,
    compute_eps: Endpoints,
}

/// A reusable batched evaluator for one (architecture, layer, spatial,
/// factor-multiset) search context. See the module docs.
pub struct BatchKernel<'a> {
    arch: &'a Architecture,
    layer: &'a Layer,
    model: LatencyModel,
    lanes: usize,
    /// Factors per ordering.
    n: usize,
    /// Lanes currently filled.
    count: usize,
    /// Spatial fit + coverage verdict (order-independent).
    const_legal: bool,
    cc_ideal: f64,
    cc_spatial: u64,
    ops: [OpSpec; 3],
    /// Per physical memory: capacity in bits, `None` for backing stores
    /// (exempt from the residency check).
    mem_caps: Vec<Option<u64>>,
    compute_links: bool,

    // --- prefix memoization (persists across drains) ---
    prev: Vec<(Dim, u64)>,
    /// `prefix_cycles[p]` = product of the innermost `p` factor sizes.
    prefix_cycles: Vec<u64>,
    /// `words_at[op][p]` = operand words resident under the innermost
    /// `p` factors (entry 0 = spatial extents alone).
    words_at: [Vec<u64>; 3],
    /// `prefix_ext[p]`: full extents, maintained only when some operand
    /// is non-multiplicative (conv inputs).
    prefix_ext: Vec<DimSizes>,
    /// `rel_at[op][p]` = product of the operand-*relevant* sizes among
    /// the innermost `p` factors (so `rel_at[op][n] / rel_at[op][upper]`
    /// is the exact distinct-block count above `upper`, and
    /// `suffix_all[upper] == distinct` iff everything above is relevant).
    rel_at: [Vec<u64>; 3],
    need_ext: bool,
    cache_hits: u64,

    // --- per-push scratch ---
    suffix_all: Vec<u64>,
    bounds: [Vec<u32>; 3],
    residency: Vec<u64>,

    // --- SoA lane rows, stride = `lanes` ---
    row_off: [usize; 3],
    rows: usize,
    r_words: Vec<u64>,
    r_period: Vec<u64>,
    r_z: Vec<u64>,
    r_run: Vec<u64>,
    r_refills: Vec<u64>,
    r_distinct: Vec<u64>,
    r_final: Vec<bool>,
    lane_ord: Vec<(Dim, u64)>,
    lane_illegal: Vec<bool>,
    lane_pre: Vec<u64>,
    lane_off: Vec<u64>,
    lane_tmp: Vec<u64>,
    lane_floor: Vec<f64>,
    lane_roof: Vec<f64>,

    // --- survivor evaluation ---
    out_final_bits: u64,
    out_partial_bits: u64,
    psum_bits: u64,
    dtls: Vec<Dtl>,
    stall: StallScratch,
    /// Survivor-score memo: a lane's score is a pure function of its SoA
    /// row tuple (the constants are fixed per kernel), and the rows
    /// depend only on level-boundary *multisets*, so many orderings
    /// collapse onto one signature. A hit returns the exact `f64` the
    /// full pipeline computed, so memoization preserves bit-identity.
    score_sig: Vec<u64>,
    score_cache: std::collections::HashMap<Vec<u64>, f64>,
}

impl<'a> BatchKernel<'a> {
    /// Builds a kernel for `factors` (the temporal factor multiset every
    /// pushed ordering permutes; sizes must all be > 1, as produced by
    /// the mapper's factorizer) holding up to `lanes` orderings.
    pub fn new(
        arch: &'a Architecture,
        layer: &'a Layer,
        spatial: &SpatialUnroll,
        model: LatencyModel,
        factors: &[(Dim, u64)],
        lanes: usize,
    ) -> Self {
        debug_assert!(factors.iter().all(|&(_, s)| s > 1));
        let lanes = lanes.max(1);
        let n = factors.len();
        let h = arch.hierarchy();
        let prec = layer.precision();

        // Order-independent legality: spatial fit + dimension coverage.
        let macs = arch.mac_array().num_macs();
        let mut const_legal = spatial.product() <= macs;
        if const_legal {
            let mut temporal = DimSizes::new(1, 1, 1, 1, 1, 1, 1);
            for &(d, s) in factors {
                temporal.multiply(d, s);
            }
            for (dim, required) in layer.shape().dims().iter() {
                if spatial.extent(dim) * temporal[dim] < required {
                    const_legal = false;
                    break;
                }
            }
        }

        let cc_ideal = layer.total_macs() as f64 / macs as f64;
        let cc_spatial: u64 = factors.iter().map(|&(_, s)| s).product();

        let spatial_ext = spatial.extents();
        let mut need_ext = false;
        let build_op = |op: Operand| {
            let rel_table = layer.operand_relevance(op);
            let bits = prec.bits(op);
            let chain: Vec<MemoryId> = h.chain(op).to_vec();
            let mut step = [false; 7];
            let mut rel = [false; 7];
            for d in ALL_DIMS {
                let r = rel_table.get(d);
                step[d.index()] = r == Relevance::Relevant;
                rel[d.index()] = r.is_relevant();
            }
            let words_mult = factors.iter().all(|&(d, _)| {
                matches!(
                    rel_table.get(d),
                    Relevance::Relevant | Relevance::Irrelevant
                )
            });
            let mut cap_words = Vec::new();
            let mut links = Vec::new();
            for level in 0..chain.len().saturating_sub(1) {
                let lower = chain[level];
                let upper = chain[level + 1];
                let mem = h.mem(lower);
                let sharers = h.served_operand_count(lower) as u64;
                cap_words.push(mem.mapper_capacity_bits() / sharers / bits);
                let spec = match op {
                    Operand::W | Operand::I => {
                        let (wp, wbw) = h.port(lower, op, PortUse::WriteIn);
                        let (rp, rbw) = h.port(upper, op, PortUse::ReadOut);
                        let main_eps = Endpoints::two(
                            Endpoint {
                                mem: upper,
                                port: rp,
                                usage: PortUse::ReadOut,
                            },
                            Endpoint {
                                mem: lower,
                                port: wp,
                                usage: PortUse::WriteIn,
                            },
                        );
                        LinkSpec {
                            link_bw: wbw.min(rbw),
                            lower_db: mem.is_double_buffered(),
                            main_eps,
                            psum_bw: 0,
                            psum_eps: main_eps,
                        }
                    }
                    Operand::O => {
                        let (rp, rbw) = h.port(lower, op, PortUse::ReadOut);
                        let (wp, wbw) = h.port(upper, op, PortUse::WriteIn);
                        let (rp2, rbw2) = h.port(upper, op, PortUse::ReadOut);
                        let (wp2, wbw2) = h.port(lower, op, PortUse::WriteIn);
                        LinkSpec {
                            link_bw: rbw.min(wbw),
                            lower_db: mem.is_double_buffered(),
                            main_eps: Endpoints::two(
                                Endpoint {
                                    mem: lower,
                                    port: rp,
                                    usage: PortUse::ReadOut,
                                },
                                Endpoint {
                                    mem: upper,
                                    port: wp,
                                    usage: PortUse::WriteIn,
                                },
                            ),
                            psum_bw: rbw2.min(wbw2),
                            psum_eps: Endpoints::two(
                                Endpoint {
                                    mem: upper,
                                    port: rp2,
                                    usage: PortUse::ReadOut,
                                },
                                Endpoint {
                                    mem: lower,
                                    port: wp2,
                                    usage: PortUse::WriteIn,
                                },
                            ),
                        }
                    }
                };
                links.push(spec);
            }
            let words_per_cycle: u64 = spatial
                .factors()
                .iter()
                .filter(|(d, _)| rel_table.get(*d) != Relevance::Irrelevant)
                .map(|&(_, f)| f)
                .product();
            let usage = match op {
                Operand::W | Operand::I => PortUse::ReadOut,
                Operand::O => PortUse::WriteIn,
            };
            let innermost = chain[0];
            let (p, bw) = h.port(innermost, op, usage);
            OpSpec {
                op,
                bits,
                active: kv_active_interfaces(layer, op, chain.len()),
                chain,
                step,
                rel,
                words_mult,
                cap_words,
                links,
                words_per_cycle,
                compute_bw: bw,
                compute_eps: Endpoints::one(Endpoint {
                    mem: innermost,
                    port: p,
                    usage,
                }),
            }
        };
        let ops = [
            build_op(Operand::W),
            build_op(Operand::I),
            build_op(Operand::O),
        ];
        for spec in &ops {
            need_ext |= !spec.words_mult;
        }

        let mem_caps: Vec<Option<u64>> = h
            .memories()
            .iter()
            .map(|m| (!m.is_backing_store()).then(|| m.mapper_capacity_bits()))
            .collect();

        let row_off = [
            0,
            ops[0].chain.len(),
            ops[0].chain.len() + ops[1].chain.len(),
        ];
        let rows = row_off[2] + ops[2].chain.len();

        let words_at = [Operand::W, Operand::I, Operand::O].map(|op| {
            let mut v = vec![0u64; n + 1];
            v[0] = layer.data_words(op, &spatial_ext);
            v
        });

        Self {
            arch,
            layer,
            model,
            lanes,
            n,
            count: 0,
            const_legal,
            cc_ideal,
            cc_spatial,
            ops,
            mem_caps,
            compute_links: model.dtl_options().compute_links,
            prev: Vec::with_capacity(n),
            prefix_cycles: {
                let mut v = vec![0u64; n + 1];
                v[0] = 1;
                v
            },
            words_at,
            prefix_ext: vec![spatial_ext; n + 1],
            rel_at: [(); 3].map(|_| vec![1u64; n + 1]),
            need_ext,
            cache_hits: 0,
            suffix_all: vec![1u64; n + 1],
            bounds: [(); 3].map(|_| Vec::with_capacity(8)),
            residency: vec![0u64; h.memories().len()],
            row_off,
            rows,
            r_words: vec![0; rows * lanes],
            r_period: vec![0; rows * lanes],
            r_z: vec![0; rows * lanes],
            r_run: vec![0; rows * lanes],
            r_refills: vec![0; rows * lanes],
            r_distinct: vec![0; rows * lanes],
            r_final: vec![false; rows * lanes],
            lane_ord: vec![(Dim::B, 0); n * lanes],
            lane_illegal: vec![false; lanes],
            lane_pre: vec![0; lanes],
            lane_off: vec![0; lanes],
            lane_tmp: vec![0; lanes],
            lane_floor: vec![0.0; lanes],
            lane_roof: vec![0.0; lanes],
            out_final_bits: prec.output_bits(true),
            out_partial_bits: prec.output_bits(false),
            psum_bits: prec.partial_sum_bits(),
            dtls: Vec::with_capacity(16),
            stall: StallScratch::default(),
            score_sig: Vec::with_capacity(rows * 7),
            score_cache: std::collections::HashMap::new(),
        }
    }

    /// The lane capacity this kernel was built with.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Lanes currently filled (reset by [`drain`](Self::drain)).
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no lanes are filled.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// True when a [`drain`](Self::drain) is required before `push`.
    pub fn is_full(&self) -> bool {
        self.count == self.lanes
    }

    /// Prefix quantities reused from the previously pushed ordering —
    /// the same accounting as the scalar `EvalScratch`.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Packs one ordering (innermost factor first, a permutation of the
    /// constructor's factor multiset) into the next lane: extends the
    /// prefix memos, replays the greedy level allocation and fills the
    /// lane's SoA row scalars. Panics if the kernel [`is_full`](Self::is_full).
    pub fn push(&mut self, ordering: &[(Dim, u64)]) {
        assert!(self.count < self.lanes, "kernel is full; drain first");
        debug_assert_eq!(ordering.len(), self.n);
        let n = self.n;
        let lane = self.count;
        self.count += 1;
        self.lane_ord[lane * n..(lane + 1) * n].copy_from_slice(ordering);

        // Prefix sharing with the previously pushed ordering.
        let shared = self
            .prev
            .iter()
            .zip(ordering)
            .take_while(|(a, b)| *a == *b)
            .count();
        self.cache_hits += shared as u64;
        self.prev.clear();
        self.prev.extend_from_slice(ordering);
        for (p, &(d, s)) in ordering.iter().enumerate().skip(shared) {
            self.prefix_cycles[p + 1] = self.prefix_cycles[p] * s;
            if self.need_ext {
                let mut ext = self.prefix_ext[p];
                ext.multiply(d, s);
                self.prefix_ext[p + 1] = ext;
            }
            for (oi, spec) in self.ops.iter().enumerate() {
                self.words_at[oi][p + 1] = if spec.words_mult {
                    let f = if spec.step[d.index()] { s } else { 1 };
                    self.words_at[oi][p] * f
                } else {
                    self.layer.data_words(spec.op, &self.prefix_ext[p + 1])
                };
                self.rel_at[oi][p + 1] =
                    self.rel_at[oi][p] * if spec.rel[d.index()] { s } else { 1 };
            }
        }

        // Suffix products for Z / refills; the per-operand relevant
        // suffixes come from the memoized `rel_at` prefix products
        // (`distinct = rel_at[n] / rel_at[upper]`, exact), so this is the
        // only whole-ordering pass left.
        self.suffix_all[n] = 1;
        for p in (0..n).rev() {
            self.suffix_all[p] = self.suffix_all[p + 1] * ordering[p].1;
        }

        // Greedy level allocation with precomputed word budgets — the
        // same bounds `Mapping::reassign_greedy` assigns, or Illegal.
        let mut illegal = !self.const_legal;
        if !illegal {
            'ops: for (oi, spec) in self.ops.iter().enumerate() {
                let bounds = &mut self.bounds[oi];
                bounds.clear();
                let mut prev = 0usize;
                let levels = spec.chain.len();
                for lvl in 0..levels {
                    if lvl + 1 == levels {
                        bounds.push(n as u32);
                        break;
                    }
                    let cap = spec.cap_words[lvl];
                    let words = &self.words_at[oi];
                    if words[prev] > cap {
                        illegal = true;
                        break 'ops;
                    }
                    let mut p = prev;
                    while p < n && words[p + 1] <= cap {
                        p += 1;
                    }
                    bounds.push(p as u32);
                    prev = p;
                }
            }
        }

        // Residency: per physical memory, summed over resident operands.
        if !illegal {
            self.residency.fill(0);
            for (oi, spec) in self.ops.iter().enumerate() {
                for (lvl, &mid) in spec.chain.iter().enumerate() {
                    let upper = self.bounds[oi][lvl] as usize;
                    self.residency[mid.0] += self.words_at[oi][upper] * spec.bits;
                }
            }
            for (i, &needed) in self.residency.iter().enumerate() {
                if let Some(cap) = self.mem_caps[i] {
                    if needed > cap {
                        illegal = true;
                        break;
                    }
                }
            }
        }

        self.lane_illegal[lane] = illegal;
        if illegal {
            return;
        }

        // Fill the lane's SoA rows from the memoized prefix/suffix data.
        for (oi, spec) in self.ops.iter().enumerate() {
            let rel_at = &self.rel_at[oi];
            let rel_total = rel_at[n];
            for lvl in 0..spec.chain.len() {
                let upper = self.bounds[oi][lvl] as usize;
                let lower = if lvl == 0 {
                    0
                } else {
                    self.bounds[oi][lvl - 1] as usize
                };
                let idx = (self.row_off[oi] + lvl) * self.lanes + lane;
                self.r_words[idx] = self.words_at[oi][upper];
                self.r_period[idx] = self.prefix_cycles[upper];
                self.r_z[idx] = self.suffix_all[upper];
                let mut run = 1u64;
                for p in (lower..upper).rev() {
                    let (d, s) = ordering[p];
                    if spec.rel[d.index()] {
                        break;
                    }
                    run *= s;
                }
                self.r_run[idx] = run;
                // First relevant position at or above `upper`; the scan
                // only crosses the (short) irrelevant run above the split.
                let mut fr = upper;
                while fr < n && !spec.rel[ordering[fr].0.index()] {
                    fr += 1;
                }
                self.r_refills[idx] = self.suffix_all[fr];
                // Exact: `rel_at[upper]` divides `rel_total`, and (sizes
                // being > 1) everything above is relevant iff the full and
                // relevant-only suffix products agree.
                let distinct = rel_total / rel_at[upper];
                self.r_distinct[idx] = distinct;
                self.r_final[idx] = self.suffix_all[upper] == distinct;
            }
        }
    }

    /// Evaluates every filled lane in push order and resets the kernel.
    ///
    /// The phase floor and (for bw-aware models) the roofline bound are
    /// computed for all lanes in lockstep first; the per-lane walk then
    /// prunes against the running `incumbent`, fully evaluating only the
    /// survivors. `visit` receives each lane's ordering and outcome and
    /// returns the updated incumbent (the chunk-local best so far), so
    /// prune decisions replay the scalar search's sequence exactly.
    /// Returns the final incumbent.
    pub fn drain(
        &mut self,
        mut incumbent: Option<f64>,
        mut visit: impl FnMut(&[(Dim, u64)], LaneOutcome) -> Option<f64>,
    ) -> Option<f64> {
        let cnt = self.count;
        if cnt == 0 {
            return incumbent;
        }
        self.compute_bounds(cnt);
        let bw_aware = self.model.options().bw_aware;
        for lane in 0..cnt {
            let outcome = if self.lane_illegal[lane] {
                LaneOutcome::Illegal
            } else {
                let pruned = match incumbent {
                    Some(inc) => {
                        self.lane_floor[lane] >= inc
                            || (bw_aware && self.lane_roof[lane] - inc > 1e-6 + 1e-9 * inc.abs())
                    }
                    None => false,
                };
                if pruned {
                    LaneOutcome::Pruned
                } else {
                    LaneOutcome::Scored(self.score_lane(lane))
                }
            };
            let ordering = &self.lane_ord[lane * self.n..(lane + 1) * self.n];
            incumbent = visit(ordering, outcome);
        }
        self.count = 0;
        incumbent
    }

    /// Lockstep phase-floor and roofline bounds over lanes `0..cnt`.
    /// Illegal lanes hold garbage rows; their bounds are never read.
    fn compute_bounds(&mut self, cnt: usize) {
        let lanes = self.lanes;
        // Preload: max over W and I of the per-level refill sums.
        self.lane_pre[..cnt].fill(0);
        for (oi, spec) in self.ops.iter().enumerate().take(2) {
            self.lane_tmp[..cnt].fill(0);
            for lvl in 0..spec.active {
                let base = (self.row_off[oi] + lvl) * lanes;
                let bw = spec.links[lvl].link_bw;
                let bits = spec.bits;
                let words = &self.r_words[base..base + cnt];
                for (acc, &w) in self.lane_tmp[..cnt].iter_mut().zip(words) {
                    *acc += (w * bits).div_ceil(bw);
                }
            }
            for (pre, &t) in self.lane_pre[..cnt].iter_mut().zip(&self.lane_tmp[..cnt]) {
                *pre = if oi == 0 { t } else { (*pre).max(t) };
            }
        }
        // Offload: per-level drain sums of O at the crossing precision.
        self.lane_off[..cnt].fill(0);
        {
            let spec = &self.ops[2];
            for lvl in 0..spec.active {
                let base = (self.row_off[2] + lvl) * lanes;
                let bw = spec.links[lvl].link_bw;
                for lane in 0..cnt {
                    let bits = if self.r_final[base + lane] {
                        self.out_final_bits
                    } else {
                        self.out_partial_bits
                    };
                    self.lane_off[lane] += (self.r_words[base + lane] * bits).div_ceil(bw);
                }
            }
        }
        // Phase floor: the stall-free composition, through the same
        // `FastLatency::compose` every other path uses.
        for lane in 0..cnt {
            self.lane_floor[lane] = FastLatency::compose(
                self.lane_pre[lane],
                self.lane_off[lane],
                self.cc_ideal,
                self.cc_spatial,
                0.0,
            )
            .cc_total;
        }
        // Roofline bound, folded in the same (operand, level) order as
        // the scalar `roofline_bound` so the float max chain matches.
        if !self.model.options().bw_aware {
            return;
        }
        self.lane_roof[..cnt].fill(self.cc_ideal);
        for (oi, spec) in self.ops.iter().enumerate() {
            for lvl in 0..spec.active {
                let base = (self.row_off[oi] + lvl) * lanes;
                let bw = spec.links[lvl].link_bw as f64;
                let bits = spec.bits;
                for lane in 0..cnt {
                    let idx = base + lane;
                    let traffic = if oi < 2 {
                        self.r_words[idx] * bits * self.r_refills[idx]
                    } else {
                        let drains = self.r_refills[idx];
                        let revisits = drains - self.r_distinct[idx];
                        let ob = if self.r_final[idx] {
                            self.out_final_bits
                        } else {
                            self.out_partial_bits
                        };
                        self.r_words[idx] * ob * drains
                            + self.r_words[idx] * self.psum_bits * revisits
                    };
                    self.lane_roof[lane] = self.lane_roof[lane].max(traffic as f64 / bw);
                }
            }
        }
    }

    /// Full evaluation of one surviving lane: rebuild its DTL list from
    /// the SoA rows and the precomputed link templates (the same order
    /// and arithmetic as `build_dtls_lowered`), run Steps 2–3, compose.
    fn score_lane(&mut self, lane: usize) -> f64 {
        // Memo lookup: the score is fully determined by the lane's row
        // tuple (everything else in the pipeline is a kernel constant).
        self.score_sig.clear();
        for r in 0..self.rows {
            let idx = r * self.lanes + lane;
            self.score_sig.extend_from_slice(&[
                self.r_words[idx],
                self.r_period[idx],
                self.r_z[idx],
                self.r_run[idx],
                self.r_refills[idx],
                self.r_distinct[idx],
                self.r_final[idx] as u64,
            ]);
        }
        if let Some(&score) = self.score_cache.get(self.score_sig.as_slice()) {
            return score;
        }
        let opts = *self.model.options();
        let ss_overall = if opts.bw_aware {
            self.build_lane_dtls(lane);
            let raw = self.stall.combine_and_integrate(
                self.arch,
                &self.dtls,
                opts.union,
                opts.eq2_oversubscription_bound,
            );
            raw.max(0.0)
        } else {
            0.0
        };
        let score = FastLatency::compose(
            self.lane_pre[lane],
            self.lane_off[lane],
            self.cc_ideal,
            self.cc_spatial,
            ss_overall,
        )
        .cc_total;
        // Bounded memo: stop inserting (lookups still work) rather than
        // grow without limit on adversarial workloads.
        if self.score_cache.len() < (1 << 16) {
            self.score_cache.insert(self.score_sig.clone(), score);
        }
        score
    }

    fn build_lane_dtls(&mut self, lane: usize) {
        let phase_aware_z = self.model.dtl_options().phase_aware_z;
        self.dtls.clear();
        for (oi, spec) in self.ops.iter().enumerate() {
            for lvl in 0..spec.active {
                let idx = (self.row_off[oi] + lvl) * self.lanes + lane;
                let link = &spec.links[lvl];
                let words = self.r_words[idx];
                let period = self.r_period[idx];
                let z = self.r_z[idx];
                let run = self.r_run[idx];
                let full = link.lower_db || run == 1;
                match spec.op {
                    Operand::W | Operand::I => {
                        let shape = if full {
                            WindowShape::Full
                        } else {
                            WindowShape::Trailing(run)
                        };
                        self.dtls.push(finish(
                            spec.op,
                            DtlKind::RefillDown,
                            lvl,
                            words * spec.bits,
                            period,
                            z,
                            shape,
                            link.link_bw as f64,
                            link.main_eps,
                            phase_aware_z,
                        ));
                    }
                    Operand::O => {
                        let final_above = self.r_final[idx];
                        let bits = if final_above {
                            self.out_final_bits
                        } else {
                            self.out_partial_bits
                        };
                        let shape = if full {
                            WindowShape::Full
                        } else {
                            WindowShape::Trailing(run)
                        };
                        self.dtls.push(finish(
                            spec.op,
                            DtlKind::DrainUp,
                            lvl,
                            words * bits,
                            period,
                            z,
                            shape,
                            link.link_bw as f64,
                            link.main_eps,
                            phase_aware_z,
                        ));
                        if !final_above {
                            let shape = if full {
                                WindowShape::Full
                            } else {
                                WindowShape::Leading(run)
                            };
                            self.dtls.push(finish(
                                spec.op,
                                DtlKind::PsumReadback,
                                lvl,
                                words * self.psum_bits,
                                period,
                                z,
                                shape,
                                link.psum_bw as f64,
                                link.psum_eps,
                                phase_aware_z,
                            ));
                        }
                    }
                }
            }
            if self.compute_links {
                let idx = self.row_off[oi] * self.lanes + lane;
                let kind = match spec.op {
                    Operand::W | Operand::I => DtlKind::ComputeFeed,
                    Operand::O => DtlKind::ComputeWriteback,
                };
                let period = self.r_period[idx];
                self.dtls.push(finish(
                    spec.op,
                    kind,
                    0,
                    spec.words_per_cycle * spec.bits * period,
                    period,
                    self.r_z[idx],
                    WindowShape::Full,
                    spec.compute_bw as f64,
                    spec.compute_eps,
                    phase_aware_z,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelScratch;
    use ulm_arch::presets;
    use ulm_mapping::{LoopStack, MappedLayer, Mapping, OperandAlloc, SpatialUnroll};
    use ulm_workload::{Layer, PerOperand, Precision};

    /// Every permutation of the toy factor multiset, kernel vs scalar:
    /// identical legality and bit-identical scores, for both models.
    #[test]
    fn kernel_matches_scalar_on_toy_permutations() {
        let chip = presets::toy_chip();
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        // The toy factor multiset: B2, K2, C2, C2, C2.
        let factors = vec![
            (Dim::B, 2),
            (Dim::K, 2),
            (Dim::C, 2),
            (Dim::C, 2),
            (Dim::C, 2),
        ];
        let orderings = permutations(&factors);
        for model in [LatencyModel::new(), LatencyModel::bw_unaware()] {
            let mut kernel = BatchKernel::new(&chip.arch, &layer, &spatial, model, &factors, 8);
            let mut scalar_scratch = ModelScratch::default();
            let mut residency = Vec::new();
            let mut results: Vec<LaneOutcome> = Vec::new();
            for ord in &orderings {
                if kernel.is_full() {
                    kernel.drain(None, |_, o| {
                        results.push(o);
                        None
                    });
                }
                kernel.push(ord);
            }
            kernel.drain(None, |_, o| {
                results.push(o);
                None
            });
            assert_eq!(results.len(), orderings.len());
            for (ord, got) in orderings.iter().zip(&results) {
                let scalar = scalar_eval(
                    &chip.arch,
                    &layer,
                    &spatial,
                    model,
                    ord,
                    &mut scalar_scratch,
                    &mut residency,
                );
                match (scalar, got) {
                    (None, LaneOutcome::Illegal) => {}
                    (Some(want), LaneOutcome::Scored(s)) => {
                        assert_eq!(want.to_bits(), s.to_bits(), "ordering {ord:?}");
                    }
                    other => panic!("mismatch for {ord:?}: {other:?}"),
                }
            }
        }
    }

    fn scalar_eval(
        arch: &ulm_arch::Architecture,
        layer: &Layer,
        spatial: &SpatialUnroll,
        model: LatencyModel,
        ordering: &[(Dim, u64)],
        scratch: &mut ModelScratch,
        residency: &mut Vec<u64>,
    ) -> Option<f64> {
        let mut mapping = Mapping::new(
            spatial.clone(),
            LoopStack::empty(),
            PerOperand::from_fn(|_| OperandAlloc::flat(0)),
        );
        let mut prefix_ext = vec![spatial.extents()];
        for &(d, s) in ordering {
            let mut e = *prefix_ext.last().unwrap();
            e.multiply(d, s);
            prefix_ext.push(e);
        }
        if !mapping.reassign_greedy(arch, layer, ordering, &prefix_ext) {
            return None;
        }
        let view = MappedLayer::new_fast(layer, arch, &mapping, residency)?;
        Some(model.evaluate_fast(&view, scratch).cc_total)
    }

    fn permutations(factors: &[(Dim, u64)]) -> Vec<Vec<(Dim, u64)>> {
        let mut out = Vec::new();
        let mut cur = Vec::new();
        let mut used = vec![false; factors.len()];
        fn rec(
            factors: &[(Dim, u64)],
            used: &mut [bool],
            cur: &mut Vec<(Dim, u64)>,
            out: &mut Vec<Vec<(Dim, u64)>>,
        ) {
            if cur.len() == factors.len() {
                out.push(cur.clone());
                return;
            }
            let mut seen = Vec::new();
            for i in 0..factors.len() {
                if used[i] || seen.contains(&factors[i]) {
                    continue;
                }
                seen.push(factors[i]);
                used[i] = true;
                cur.push(factors[i]);
                rec(factors, used, cur, out);
                cur.pop();
                used[i] = false;
            }
        }
        rec(factors, &mut used, &mut cur, &mut out);
        out
    }

    /// Incumbent-driven pruning: outcomes must replay the scalar
    /// bounded-search sequence (same pruned set, same survivor scores).
    #[test]
    fn pruning_replays_scalar_sequence() {
        let chip = presets::toy_chip();
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        let factors = vec![
            (Dim::B, 2),
            (Dim::K, 2),
            (Dim::C, 2),
            (Dim::C, 2),
            (Dim::C, 2),
        ];
        let orderings = permutations(&factors);
        let model = LatencyModel::new();

        // Scalar reference sequence with floor-only-style incumbents:
        // replicate the mapper's bounded walk using full scores.
        let mut scalar_scratch = ModelScratch::default();
        let mut residency = Vec::new();
        let mut best: Option<f64> = None;
        let mut want = Vec::new();
        for ord in &orderings {
            match scalar_eval(
                &chip.arch,
                &layer,
                &spatial,
                model,
                ord,
                &mut scalar_scratch,
                &mut residency,
            ) {
                None => want.push(None),
                Some(score) => {
                    want.push(Some(score));
                    if best.map(|b| score < b).unwrap_or(true) {
                        best = Some(score);
                    }
                }
            }
        }

        let mut kernel = BatchKernel::new(&chip.arch, &layer, &spatial, model, &factors, 7);
        let mut running: Option<f64> = None;
        let mut outcomes = Vec::new();
        let drain = |k: &mut BatchKernel<'_>,
                     running: &mut Option<f64>,
                     outcomes: &mut Vec<LaneOutcome>| {
            let r = k.drain(*running, |_, o| {
                outcomes.push(o);
                if let LaneOutcome::Scored(s) = o {
                    if running.map(|b| s < b).unwrap_or(true) {
                        *running = Some(s);
                    }
                }
                *running
            });
            *running = r;
        };
        for ord in &orderings {
            if kernel.is_full() {
                drain(&mut kernel, &mut running, &mut outcomes);
            }
            kernel.push(ord);
        }
        drain(&mut kernel, &mut running, &mut outcomes);

        assert_eq!(outcomes.len(), want.len());
        // The final best must match the unpruned best exactly, and no
        // scored lane may disagree with the scalar score.
        assert_eq!(running.unwrap().to_bits(), best.unwrap().to_bits());
        for (o, w) in outcomes.iter().zip(&want) {
            match (o, w) {
                (LaneOutcome::Illegal, None) => {}
                (LaneOutcome::Scored(s), Some(w)) => assert_eq!(s.to_bits(), w.to_bits()),
                (LaneOutcome::Pruned, Some(_)) => {}
                other => panic!("{other:?}"),
            }
        }
    }
}
