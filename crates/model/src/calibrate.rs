//! Calibration of the architecture's `RealBW` constants against
//! observed port activity.
//!
//! The paper's accuracy rests on per-port effective bandwidths; the
//! presets ship nominal values. This module fits them from data: for
//! every physical port, the model predicts the *traffic* it carries (the
//! `Σ data_bits × Z_stall` of the DTLs occupying it — an
//! architecture-independent workload quantity under the
//! [`Stage::arch_constant`](crate::Stage::arch_constant) split), and an
//! observation supplies the port's measured busy cycles (from an
//! `ulm-sim` trace or an imported measurement CSV). A per-port
//! least-squares fit of `busy ≈ traffic / bw` over the training set
//! recovers the effective bandwidth:
//!
//! ```text
//! β̂ = Σ (traffic · busy) / Σ traffic²       bw = round(1 / β̂)
//! ```
//!
//! The resulting [`Calibration`] materializes into an ordinary
//! [`Architecture`] via [`Calibration::apply`] (the same knob path as
//! `whatif` overrides), so the calibrated constants flow into the
//! generic model and a [`SpecializedModel`](crate::surrogate::SpecializedModel)
//! alike — there is no second calibrated code path to keep in sync.
//! [`LayerResidual`]s report the per-training-layer busy-cycle error
//! that remains after the fit.

use crate::{InputDelta, LatencyModel, LoweredLayer};
use std::collections::BTreeMap;
use std::fmt;
use ulm_arch::{Architecture, MemoryId, PortId};
use ulm_mapping::MappedLayer;

/// Why calibration failed. Carried by `UlmError::Calibrate` with
/// `calibrate/*` codes.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrateError {
    /// The training set contained no usable observation.
    NoSamples,
    /// An observation named a memory the architecture does not have.
    UnknownMemory {
        /// The unknown memory name.
        mem: String,
    },
    /// An observation named a port index past the memory's port list.
    BadPort {
        /// The memory whose port list was exceeded.
        mem: String,
        /// The out-of-range port index.
        port: usize,
    },
    /// A measurement CSV line failed to parse.
    BadCsv {
        /// 1-based line number.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
    /// A calibration was applied to an architecture it was not fitted
    /// for.
    ArchMismatch {
        /// The architecture the calibration was fitted against.
        expected: String,
        /// The architecture it was applied to.
        got: String,
    },
}

impl fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrateError::NoSamples => {
                f.write_str("calibration needs at least one port observation with traffic")
            }
            CalibrateError::UnknownMemory { mem } => {
                write!(f, "observation names unknown memory '{mem}'")
            }
            CalibrateError::BadPort { mem, port } => {
                write!(
                    f,
                    "observation names port {port} of '{mem}', which has fewer ports"
                )
            }
            CalibrateError::BadCsv { line, reason } => {
                write!(f, "measurement CSV line {line}: {reason}")
            }
            CalibrateError::ArchMismatch { expected, got } => write!(
                f,
                "calibration was fitted for architecture '{expected}', not '{got}'"
            ),
        }
    }
}

impl std::error::Error for CalibrateError {}

/// One observed port: measured busy cycles over a training layer's run.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservedBusy {
    /// Memory name (resolved against the architecture by name).
    pub mem: String,
    /// Port index within that memory.
    pub port: usize,
    /// Measured busy cycles.
    pub busy_cycles: f64,
}

/// One row of a measurement CSV:
/// `layer,b,k,c,mem,port,busy_cycles`.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementRow {
    /// Training layer name (groups rows into traces).
    pub layer: String,
    /// Workload dims of the training layer.
    pub dims: (u64, u64, u64),
    /// The observation.
    pub observed: ObservedBusy,
}

/// Parses a measurement CSV (`layer,b,k,c,mem,port,busy_cycles` per
/// line; `#` comments, blank lines and a literal header row are
/// skipped).
pub fn parse_measurements(text: &str) -> Result<Vec<MeasurementRow>, CalibrateError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("layer,") {
            continue;
        }
        let bad = |reason: &str| CalibrateError::BadCsv {
            line: idx + 1,
            reason: reason.to_string(),
        };
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 7 {
            return Err(bad("expected 7 fields: layer,b,k,c,mem,port,busy_cycles"));
        }
        let dim = |s: &str, what: &str| -> Result<u64, CalibrateError> {
            match s.parse::<u64>() {
                Ok(v) if v > 0 => Ok(v),
                _ => Err(bad(&format!(
                    "{what} must be a positive integer, got '{s}'"
                ))),
            }
        };
        let port = fields[5]
            .parse::<usize>()
            .map_err(|_| bad(&format!("port must be an integer, got '{}'", fields[5])))?;
        let busy = match fields[6].parse::<f64>() {
            Ok(v) if v.is_finite() && v >= 0.0 => v,
            _ => {
                return Err(bad(&format!(
                    "busy_cycles must be a non-negative number, got '{}'",
                    fields[6]
                )))
            }
        };
        out.push(MeasurementRow {
            layer: fields[0].to_string(),
            dims: (
                dim(fields[1], "b")?,
                dim(fields[2], "k")?,
                dim(fields[3], "c")?,
            ),
            observed: ObservedBusy {
                mem: fields[4].to_string(),
                port,
                busy_cycles: busy,
            },
        });
    }
    Ok(out)
}

/// One fitted port of a [`Calibration`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PortFit {
    /// Memory name.
    pub mem: String,
    /// Port index within the memory.
    pub port: usize,
    /// The fitted effective bandwidth (bits/cycle, ≥ 1).
    pub bw_bits: u64,
    /// The bandwidth the architecture carried before calibration.
    pub old_bw_bits: u64,
    /// Number of training observations behind the fit.
    pub samples: usize,
}

/// A fitted per-architecture constant set, serializable to JSON. Apply
/// with [`apply`](Self::apply) to obtain the calibrated architecture.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Calibration {
    /// Name of the architecture the fit is valid for.
    pub arch: String,
    /// Content-derived stable identifier (`cal-` + hash of the fits);
    /// serve puts it in `/stats` and the result-cache fingerprint.
    pub id: String,
    /// The fitted ports, in `(memory, port)` order.
    pub ports: Vec<PortFit>,
}

impl Calibration {
    /// Materializes the calibrated architecture: a clone of `arch` with
    /// every fitted port's bandwidth replaced, plus the
    /// [`InputDelta`] separating the two (for incremental re-lowering).
    /// Fails if `arch` is not the architecture the fit names.
    pub fn apply(&self, arch: &Architecture) -> Result<(Architecture, InputDelta), CalibrateError> {
        if arch.name() != self.arch {
            return Err(CalibrateError::ArchMismatch {
                expected: self.arch.clone(),
                got: arch.name().to_string(),
            });
        }
        let mut out = arch.clone();
        for fit in &self.ports {
            let id =
                out.hierarchy()
                    .find(&fit.mem)
                    .ok_or_else(|| CalibrateError::UnknownMemory {
                        mem: fit.mem.clone(),
                    })?;
            if fit.port >= out.hierarchy().mem(id).ports().len() {
                return Err(CalibrateError::BadPort {
                    mem: fit.mem.clone(),
                    port: fit.port,
                });
            }
            out.hierarchy_mut()
                .mem_mut(id)
                .set_port_bandwidth(fit.port, fit.bw_bits);
        }
        let delta = InputDelta::between(arch, &out);
        Ok((out, delta))
    }
}

/// The busy-cycle error left on one training layer after the fit.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LayerResidual {
    /// Training layer name.
    pub layer: String,
    /// Observed total busy cycles (summed over the observed ports).
    pub observed: f64,
    /// The fitted model's prediction of the same total.
    pub predicted: f64,
    /// Signed relative error in percent (`0` when both sides are zero).
    pub error_pct: f64,
}

/// A finished fit: the constants plus the training-set residuals.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationFit {
    /// The fitted constant set.
    pub calibration: Calibration,
    /// Per-training-layer residuals, in trace order.
    pub residuals: Vec<LayerResidual>,
}

#[derive(Debug, Default, Clone, Copy)]
struct PortAcc {
    sum_traffic_busy: f64,
    sum_traffic_sq: f64,
    samples: usize,
}

#[derive(Debug)]
struct TraceRow {
    mem: MemoryId,
    port: PortId,
    traffic: f64,
    busy: f64,
}

/// Accumulates `(predicted traffic, observed busy)` pairs per physical
/// port across training layers, then least-squares-fits one effective
/// bandwidth per port.
#[derive(Debug)]
pub struct Calibrator<'a> {
    arch: &'a Architecture,
    model: LatencyModel,
    acc: BTreeMap<(MemoryId, PortId), PortAcc>,
    traces: Vec<(String, Vec<TraceRow>)>,
}

impl<'a> Calibrator<'a> {
    /// A calibrator for `arch`; `model` fixes the lowering options the
    /// traffic predictions are derived under.
    pub fn new(arch: &'a Architecture, model: LatencyModel) -> Self {
        Self {
            arch,
            model,
            acc: BTreeMap::new(),
            traces: Vec::new(),
        }
    }

    /// Adds one training layer: the model's per-port traffic under
    /// `view` paired with the observed busy cycles. Observed ports the
    /// model predicts no traffic for contribute nothing to the fit (but
    /// still count into the residual).
    pub fn add_trace(
        &mut self,
        view: &MappedLayer<'_>,
        observed: &[ObservedBusy],
    ) -> Result<(), CalibrateError> {
        let h = self.arch.hierarchy();
        let lowered = LoweredLayer::build(view, self.model.dtl_options());
        let mut traffic: BTreeMap<(MemoryId, PortId), f64> = BTreeMap::new();
        for d in lowered.dtls() {
            let weight = d.data_bits as f64 * d.z_stall as f64;
            for e in &d.endpoints {
                *traffic.entry((e.mem, e.port)).or_insert(0.0) += weight;
            }
        }
        let mut rows = Vec::with_capacity(observed.len());
        for o in observed {
            let mid = h
                .find(&o.mem)
                .ok_or_else(|| CalibrateError::UnknownMemory { mem: o.mem.clone() })?;
            if o.port >= h.mem(mid).ports().len() {
                return Err(CalibrateError::BadPort {
                    mem: o.mem.clone(),
                    port: o.port,
                });
            }
            let t = traffic.get(&(mid, o.port)).copied().unwrap_or(0.0);
            let a = self.acc.entry((mid, o.port)).or_default();
            a.sum_traffic_busy += t * o.busy_cycles;
            a.sum_traffic_sq += t * t;
            a.samples += 1;
            rows.push(TraceRow {
                mem: mid,
                port: o.port,
                traffic: t,
                busy: o.busy_cycles,
            });
        }
        self.traces.push((view.layer().name().to_string(), rows));
        Ok(())
    }

    /// Solves the per-port least squares and reports the constants plus
    /// the residuals they leave on the training set. Ports whose
    /// training traffic is all zero keep their nominal bandwidth (no
    /// constraint reaches them).
    pub fn fit(self) -> Result<CalibrationFit, CalibrateError> {
        let h = self.arch.hierarchy();
        let mut fitted: BTreeMap<(MemoryId, PortId), u64> = BTreeMap::new();
        let mut ports = Vec::new();
        for (&(mid, port), a) in &self.acc {
            let old = h.mem(mid).ports()[port].bw_bits;
            if a.sum_traffic_sq <= 0.0 || a.sum_traffic_busy <= 0.0 {
                continue;
            }
            let beta = a.sum_traffic_busy / a.sum_traffic_sq;
            let bw = (1.0 / beta).round().max(1.0) as u64;
            fitted.insert((mid, port), bw);
            ports.push(PortFit {
                mem: h.mem(mid).name().to_string(),
                port,
                bw_bits: bw,
                old_bw_bits: old,
                samples: a.samples,
            });
        }
        if ports.is_empty() {
            return Err(CalibrateError::NoSamples);
        }
        let residuals = self
            .traces
            .iter()
            .map(|(layer, rows)| {
                let observed: f64 = rows.iter().map(|r| r.busy).sum();
                let predicted: f64 = rows
                    .iter()
                    .map(|r| {
                        let bw = fitted
                            .get(&(r.mem, r.port))
                            .copied()
                            .unwrap_or_else(|| h.mem(r.mem).ports()[r.port].bw_bits);
                        r.traffic / bw as f64
                    })
                    .sum();
                let error_pct = if observed == 0.0 && predicted == 0.0 {
                    0.0
                } else if observed == 0.0 {
                    f64::INFINITY
                } else {
                    (predicted - observed) / observed * 100.0
                };
                LayerResidual {
                    layer: layer.clone(),
                    observed,
                    predicted,
                    error_pct,
                }
            })
            .collect();
        let calibration = Calibration {
            arch: self.arch.name().to_string(),
            id: stable_id(self.arch.name(), &ports),
            ports,
        };
        Ok(CalibrationFit {
            calibration,
            residuals,
        })
    }
}

/// A content-derived identifier: FNV-1a over the canonical rendering of
/// the fit, so identical constants always share an id and any change to
/// them produces a new one (serve keys its cache fingerprint on this).
fn stable_id(arch: &str, ports: &[PortFit]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(arch.as_bytes());
    for p in ports {
        eat(p.mem.as_bytes());
        eat(&(p.port as u64).to_le_bytes());
        eat(&p.bw_bits.to_le_bytes());
    }
    format!("cal-{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_mapping::{LoopStack, Mapping, SpatialUnroll};
    use ulm_workload::{Dim, Layer, Precision};

    fn training_set(arch: &Architecture) -> Vec<(Layer, Mapping)> {
        let spatial = vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)];
        [(64u64, 96u64, 640u64), (32, 48, 320), (8, 16, 64)]
            .iter()
            .enumerate()
            .map(|(i, &(b, k, c))| {
                let layer = Layer::matmul(format!("train{i}"), b, k, c, Precision::int8_out24());
                let stack = LoopStack::from_pairs(&[
                    (Dim::C, c / 2),
                    (Dim::B, b.div_ceil(8)),
                    (Dim::K, k.div_ceil(16)),
                ]);
                let mapping = Mapping::with_greedy_alloc(
                    arch,
                    &layer,
                    SpatialUnroll::new(spatial.clone()),
                    stack,
                )
                .unwrap();
                (layer, mapping)
            })
            .collect()
    }

    /// A perturbed twin of `arch`: every port bandwidth doubled or
    /// halved (alternating), the "true" chip the traces come from.
    fn perturb(arch: &Architecture) -> Architecture {
        let mut out = arch.clone();
        let n = out.hierarchy().memories().len();
        for m in 0..n {
            let id = ulm_arch::MemoryId(m);
            let ports = out.hierarchy().mem(id).ports().len();
            for p in 0..ports {
                let old = out.hierarchy().mem(id).ports()[p].bw_bits;
                let new = if (m + p) % 2 == 0 {
                    old * 2
                } else {
                    (old / 2).max(1)
                };
                out.hierarchy_mut().mem_mut(id).set_port_bandwidth(p, new);
            }
        }
        out
    }

    /// Synthesizes the observations the "true" chip would produce:
    /// per-port busy = predicted traffic / true bandwidth.
    fn synth_observed(
        truth: &Architecture,
        model: LatencyModel,
        view: &MappedLayer<'_>,
    ) -> Vec<ObservedBusy> {
        let h = truth.hierarchy();
        let lowered = LoweredLayer::build(view, model.dtl_options());
        let mut traffic: BTreeMap<(MemoryId, PortId), f64> = BTreeMap::new();
        for d in lowered.dtls() {
            let w = d.data_bits as f64 * d.z_stall as f64;
            for e in &d.endpoints {
                *traffic.entry((e.mem, e.port)).or_insert(0.0) += w;
            }
        }
        traffic
            .iter()
            .map(|(&(mid, port), &t)| ObservedBusy {
                mem: h.mem(mid).name().to_string(),
                port,
                busy_cycles: t / h.mem(mid).ports()[port].bw_bits as f64,
            })
            .collect()
    }

    #[test]
    fn round_trip_recovers_perturbed_bandwidths_exactly() {
        let nominal = presets::case_study_chip(128);
        let truth = perturb(&nominal);
        let model = LatencyModel::new();
        let training = training_set(&nominal);

        let mut cal = Calibrator::new(&nominal, model);
        for (layer, mapping) in &training {
            let view = MappedLayer::new(layer, &nominal, mapping).unwrap();
            let observed = synth_observed(&truth, model, &view);
            cal.add_trace(&view, &observed).unwrap();
        }
        let fit = cal.fit().unwrap();

        // Every fitted port recovers the true bandwidth exactly...
        let th = truth.hierarchy();
        for p in &fit.calibration.ports {
            let id = th.find(&p.mem).unwrap();
            assert_eq!(
                p.bw_bits,
                th.mem(id).ports()[p.port].bw_bits,
                "port {}/{} not recovered",
                p.mem,
                p.port
            );
        }
        // ...so the training-set residuals vanish.
        for r in &fit.residuals {
            assert!(
                r.error_pct.abs() < 1e-9,
                "{}: residual {}%",
                r.layer,
                r.error_pct
            );
        }

        // Applying the calibration reproduces the true chip's latency
        // through the ordinary evaluation path.
        let (applied, delta) = fit.calibration.apply(&nominal).unwrap();
        assert_eq!(delta, InputDelta::BANDWIDTH);
        let mut s1 = crate::ModelScratch::default();
        let mut s2 = crate::ModelScratch::default();
        for (layer, mapping) in &training {
            let va = MappedLayer::new(layer, &applied, mapping).unwrap();
            let vt = MappedLayer::new(layer, &truth, mapping).unwrap();
            let a = model.evaluate_fast(&va, &mut s1);
            let t = model.evaluate_fast(&vt, &mut s2);
            assert_eq!(a.cc_total.to_bits(), t.cc_total.to_bits());
        }
    }

    #[test]
    fn calibration_id_is_content_stable() {
        let nominal = presets::case_study_chip(128);
        let truth = perturb(&nominal);
        let model = LatencyModel::new();
        let training = training_set(&nominal);
        let mut ids = Vec::new();
        for _ in 0..2 {
            let mut cal = Calibrator::new(&nominal, model);
            for (layer, mapping) in &training {
                let view = MappedLayer::new(layer, &nominal, mapping).unwrap();
                let observed = synth_observed(&truth, model, &view);
                cal.add_trace(&view, &observed).unwrap();
            }
            ids.push(cal.fit().unwrap().calibration.id);
        }
        assert_eq!(ids[0], ids[1]);
        assert!(ids[0].starts_with("cal-"));
    }

    #[test]
    fn typed_errors_on_bad_observations() {
        let nominal = presets::case_study_chip(128);
        let model = LatencyModel::new();
        let (layer, mapping) = training_set(&nominal).remove(0);
        let view = MappedLayer::new(&layer, &nominal, &mapping).unwrap();

        let mut cal = Calibrator::new(&nominal, model);
        let err = cal
            .add_trace(
                &view,
                &[ObservedBusy {
                    mem: "NOPE".into(),
                    port: 0,
                    busy_cycles: 1.0,
                }],
            )
            .unwrap_err();
        assert!(matches!(err, CalibrateError::UnknownMemory { .. }));

        let err = cal
            .add_trace(
                &view,
                &[ObservedBusy {
                    mem: "GB".into(),
                    port: 99,
                    busy_cycles: 1.0,
                }],
            )
            .unwrap_err();
        assert!(matches!(err, CalibrateError::BadPort { .. }));

        assert!(matches!(
            Calibrator::new(&nominal, model).fit(),
            Err(CalibrateError::NoSamples)
        ));
    }

    #[test]
    fn csv_parses_and_rejects_with_line_numbers() {
        let text = "layer,b,k,c,mem,port,busy_cycles\n\
                    # comment\n\
                    mm0,64,96,640,GB,0,123.5\n\
                    \n\
                    mm1, 32, 48, 320, W-LB, 1, 42\n";
        let rows = parse_measurements(text).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].layer, "mm0");
        assert_eq!(rows[0].dims, (64, 96, 640));
        assert_eq!(rows[1].observed.mem, "W-LB");
        assert_eq!(rows[1].observed.port, 1);

        let err = parse_measurements("mm0,64,96,640,GB,0\n").unwrap_err();
        assert!(matches!(err, CalibrateError::BadCsv { line: 1, .. }));
        let err = parse_measurements("ok,1,1,1,GB,0,1\nmm0,0,96,640,GB,0,5\n").unwrap_err();
        assert!(matches!(err, CalibrateError::BadCsv { line: 2, .. }));
    }

    #[test]
    fn apply_rejects_the_wrong_architecture() {
        let nominal = presets::case_study_chip(128);
        let cal = Calibration {
            arch: "not-this-chip".into(),
            id: "cal-0".into(),
            ports: vec![],
        };
        assert!(matches!(
            cal.apply(&nominal),
            Err(CalibrateError::ArchMismatch { .. })
        ));
    }
}
