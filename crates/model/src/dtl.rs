//! Step 1 ("Divide"): decompose the memory system into per-operand Unit
//! Memories and per-direction Data Transfer Links (DTLs), and compute each
//! DTL's attributes — `ReqBW_u`, `X_REQ`, `X_REAL`, `MUW_u` and `SS_u`.

use crate::slots::{ArchSlots, LiveSlots};
use std::fmt;
use ulm_arch::{MemoryId, PortId, PortUse};
use ulm_mapping::MappedLayer;
use ulm_periodic::PeriodicWindow;
use ulm_workload::Operand;

/// The role a DTL plays in the dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DtlKind {
    /// W/I block moving down: read from level `L+1`, written into `L`.
    RefillDown,
    /// O block moving up: read from level `L`, written into `L+1`.
    DrainUp,
    /// Partial sums returning for further accumulation: read from `L+1`,
    /// written into `L`.
    PsumReadback,
    /// The MAC array consuming W/I from the innermost level.
    ComputeFeed,
    /// The MAC array writing partial sums into the innermost O level.
    ComputeWriteback,
}

impl fmt::Display for DtlKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DtlKind::RefillDown => "refill",
            DtlKind::DrainUp => "drain",
            DtlKind::PsumReadback => "psum-rd",
            DtlKind::ComputeFeed => "feed",
            DtlKind::ComputeWriteback => "wb",
        };
        f.write_str(s)
    }
}

/// One port touched by a DTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Endpoint {
    /// The memory owning the port.
    pub mem: MemoryId,
    /// The port within that memory.
    pub port: PortId,
    /// Whether the DTL reads out of or writes into that memory.
    pub usage: PortUse,
}

/// The one or two ports a DTL occupies, stored inline so a [`Dtl`] is
/// `Copy` and DTL lists can be rebuilt without heap traffic.
#[derive(Debug, Clone, Copy)]
pub struct Endpoints {
    items: [Endpoint; 2],
    len: u8,
}

impl Endpoints {
    /// A single-port link (compute-facing).
    pub fn one(e: Endpoint) -> Self {
        Self {
            items: [e, e],
            len: 1,
        }
    }

    /// A two-port link (inter-memory).
    pub fn two(a: Endpoint, b: Endpoint) -> Self {
        Self {
            items: [a, b],
            len: 2,
        }
    }

    /// The endpoints as a slice.
    pub fn as_slice(&self) -> &[Endpoint] {
        &self.items[..self.len as usize]
    }
}

impl std::ops::Deref for Endpoints {
    type Target = [Endpoint];
    fn deref(&self) -> &[Endpoint] {
        self.as_slice()
    }
}

impl PartialEq for Endpoints {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'b> IntoIterator for &'b Endpoints {
    type Item = &'b Endpoint;
    type IntoIter = std::slice::Iter<'b, Endpoint>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl serde::Serialize for Endpoints {
    fn to_value(&self) -> serde::Value {
        serde::Value::Array(
            self.as_slice()
                .iter()
                .map(serde::Serialize::to_value)
                .collect(),
        )
    }
}

impl serde::Deserialize for Endpoints {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let items = <Vec<Endpoint> as serde::Deserialize>::from_value(v)?;
        match *items.as_slice() {
            [e] => Ok(Self::one(e)),
            [a, b] => Ok(Self::two(a, b)),
            _ => Err(serde::Error::custom(format!(
                "expected 1 or 2 endpoints, got {}",
                items.len()
            ))),
        }
    }
}

/// A single-operand data transfer link with all Step-1 attributes.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Dtl {
    /// The operand whose data this link moves.
    pub operand: Operand,
    /// The link's role.
    pub kind: DtlKind,
    /// Index (in the operand's chain) of the level whose block defines the
    /// link's period.
    pub level: usize,
    /// Bits moved per period (`Mem_DATA` at interface precision).
    pub data_bits: u64,
    /// `Mem_CC`: the period in cycles.
    pub period: u64,
    /// `Z`: number of periods over the computation phase.
    pub z: u64,
    /// Periods whose transfer can stall *computation*: `Z − 1` for
    /// inter-memory links (the first refill is the pre-load phase and the
    /// last drain is the off-load phase, both accounted separately per
    /// Fig. 1a), `Z` for the always-on compute-facing links.
    pub z_stall: u64,
    /// `ReqBW_u` in bits/cycle (Table I).
    pub req_bw: f64,
    /// `X_REQ = data_bits / ReqBW_u`: allowed transfer time per period.
    pub x_req: f64,
    /// `RealBW`: the narrower of the two port bandwidths involved.
    pub real_bw: f64,
    /// `X_REAL = data_bits / RealBW`: actual transfer time per period.
    pub x_real: f64,
    /// `SS_u = (X_REAL − X_REQ) × Z`: stall (+) or slack (−) in cycles.
    pub ss_u: f64,
    /// `MUW_u`: the allowed updating window as a periodic function.
    pub window: PeriodicWindow,
    /// The one or two ports the link occupies.
    pub endpoints: Endpoints,
}

impl Dtl {
    /// Total port-busy time of this DTL during computation:
    /// `X_REAL × z_stall`.
    pub fn busy(&self) -> f64 {
        self.x_real * self.z_stall as f64
    }

    /// `MUW_u` measure: `X_REQ × Z`.
    pub fn muw(&self) -> f64 {
        self.window.measure()
    }

    /// A short human-readable label, e.g. `"W refill @W-Reg"`.
    pub fn label(&self, view: &MappedLayer<'_>) -> String {
        let h = view.arch().hierarchy();
        let mem = h.chain(self.operand)[self.level];
        format!("{} {} @{}", self.operand, self.kind, h.mem(mem).name())
    }
}

/// Window shape selector for one link.
pub(crate) enum WindowShape {
    /// Update may overlap compute for the whole period (double-buffered
    /// memory, or non-DB with a relevant top loop): `X_REQ = Mem_CC`.
    Full,
    /// Keep-out zone: update allowed only in the *last* `1/n` of the
    /// period (non-DB refill/drain under an `n`-fold irrelevant top run).
    Trailing(u64),
    /// Update allowed only in the *first* `1/n` of the period (psum
    /// read-back must land before accumulation revisits the block).
    Leading(u64),
}

fn make_window(shape: WindowShape, period: u64, z: u64) -> (f64, PeriodicWindow) {
    let p = period as f64;
    match shape {
        WindowShape::Full => (p, PeriodicWindow::full(p, z).expect("positive period")),
        WindowShape::Trailing(n) => {
            let x = p / n as f64;
            (x, PeriodicWindow::trailing(p, x, z).expect("x <= period"))
        }
        WindowShape::Leading(n) => {
            let x = p / n as f64;
            (x, PeriodicWindow::new(p, 0.0, x, z).expect("x <= period"))
        }
    }
}

#[allow(clippy::too_many_arguments)] // a DTL is genuinely 9-dimensional
pub(crate) fn finish(
    operand: Operand,
    kind: DtlKind,
    level: usize,
    data_bits: u64,
    period: u64,
    z: u64,
    shape: WindowShape,
    real_bw: f64,
    endpoints: Endpoints,
    phase_aware_z: bool,
) -> Dtl {
    // The first refill of a level happens in the pre-load phase and the
    // final drain in the off-load phase (Fig. 1a), so only Z − 1 periods
    // can stall computation. Compute-facing links are active in all Z.
    let z_stall = match kind {
        DtlKind::ComputeFeed | DtlKind::ComputeWriteback => z,
        _ if phase_aware_z => z.saturating_sub(1),
        _ => z,
    };
    let (x_req, window) = make_window(shape, period, z_stall);
    let req_bw = data_bits as f64 / x_req;
    let x_real = data_bits as f64 / real_bw;
    let ss_u = (x_real - x_req) * z_stall as f64;
    Dtl {
        operand,
        kind,
        level,
        data_bits,
        period,
        z,
        z_stall,
        req_bw,
        x_req,
        real_bw,
        x_real,
        ss_u,
        window,
        endpoints,
    }
}

/// Options controlling DTL extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtlOptions {
    /// Also model the MAC-array-facing links of the innermost levels
    /// (default true). Disable to reproduce inter-memory-only analyses.
    pub compute_links: bool,
    /// Charge only `Z − 1` periods of each inter-memory link to the
    /// computation phase (default true): the first refill is the pre-load
    /// and the last drain the off-load. Disable to use the paper's
    /// literal `Z` (which double-counts those transfers on short nests).
    pub phase_aware_z: bool,
}

impl Default for DtlOptions {
    fn default() -> Self {
        Self {
            compute_links: true,
            phase_aware_z: true,
        }
    }
}

/// Builds every DTL of the mapped layer (Step 1).
///
/// Convenience wrapper over the single Step-1 implementation inside
/// [`LoweredLayer::build`](crate::LoweredLayer::build); prefer building
/// the full IR when more than the DTL list is needed.
pub fn build_dtls(view: &MappedLayer<'_>, opts: DtlOptions) -> Vec<Dtl> {
    crate::LoweredLayer::build(view, opts).into_dtls()
}

/// Step 1 proper: reads the residency tables of a freshly lowered
/// [`LoweredLayer`](crate::LoweredLayer) and appends the DTL list to it,
/// answering every architecture lookup through [`LiveSlots`].
pub(crate) fn build_dtls_lowered(view: &MappedLayer<'_>, lw: &mut crate::LoweredLayer) {
    let slots = LiveSlots::new(view.arch().hierarchy());
    build_dtls_with(view.layer(), lw, &slots);
}

/// The single DTL construction body, shared between the generic path
/// (live hierarchy lookups) and the surrogate's folded tables: every
/// architecture constant arrives through `slots`, so identical slot
/// values produce bit-identical DTLs.
pub(crate) fn build_dtls_with(
    layer: &ulm_workload::Layer,
    lw: &mut crate::LoweredLayer,
    slots: &impl ArchSlots,
) {
    let opts = lw.options();

    // The tables are read through an immutable copy of the per-level rows
    // while DTLs are appended; rows are small `Copy` structs.
    let mut out = std::mem::take(lw.dtls_mut());
    out.clear();

    for op in Operand::all() {
        let op_bits = layer.precision().bits(op);

        // Inter-memory links: one per adjacent level pair, stopping at
        // the pin (KV-cache residents and fused intermediates never touch
        // the interfaces above it, so no link exists to price).
        for level in 0..lw.active_interfaces(op) {
            let row = *lw.level(op, level);
            let period = row.period;
            let z = row.z;
            let words = row.words;
            let run = row.run;
            let lc = slots.interface(op, level);

            match op {
                Operand::W | Operand::I => {
                    // Refill: upper read -> lower write. The receiving
                    // (lower) memory's buffering sets the window (Table I).
                    let shape = if lc.lower_db || run == 1 {
                        WindowShape::Full
                    } else {
                        WindowShape::Trailing(run)
                    };
                    out.push(finish(
                        op,
                        DtlKind::RefillDown,
                        level,
                        words * op_bits,
                        period,
                        z,
                        shape,
                        lc.bw_bits as f64,
                        lc.endpoints,
                        opts.phase_aware_z,
                    ));
                }
                Operand::O => {
                    let final_above = row.final_above;
                    let bits = layer.precision().output_bits(final_above);
                    // Drain: lower read -> upper write. The source block
                    // finishes accumulating only in the last iteration of
                    // its top irrelevant run, so a non-DB source gets a
                    // trailing window scaled by that run.
                    let shape = if lc.lower_db || run == 1 {
                        WindowShape::Full
                    } else {
                        WindowShape::Trailing(run)
                    };
                    out.push(finish(
                        op,
                        DtlKind::DrainUp,
                        level,
                        words * bits,
                        period,
                        z,
                        shape,
                        lc.bw_bits as f64,
                        lc.endpoints,
                        opts.phase_aware_z,
                    ));
                    // Partial sums return when accumulation continues above.
                    if !final_above {
                        let pc = slots.psum(level);
                        let shape = if pc.lower_db || run == 1 {
                            WindowShape::Full
                        } else {
                            WindowShape::Leading(run)
                        };
                        out.push(finish(
                            op,
                            DtlKind::PsumReadback,
                            level,
                            words * layer.precision().partial_sum_bits(),
                            period,
                            z,
                            shape,
                            pc.bw_bits as f64,
                            pc.endpoints,
                            opts.phase_aware_z,
                        ));
                    }
                }
            }
        }

        // MAC-array-facing links of the innermost level. Irrelevant
        // spatial unrolls are broadcast and touch the same word, so the
        // feed rate counts op-relevant unroll factors only (the lowering
        // pass precomputed that product).
        if opts.compute_links {
            let words_per_cycle = lw.words_per_cycle(op);
            let row = *lw.level(op, 0);
            let data_bits = words_per_cycle * op_bits * row.period;
            let kind = match op {
                Operand::W | Operand::I => DtlKind::ComputeFeed,
                Operand::O => DtlKind::ComputeWriteback,
            };
            let cc = slots.compute(op);
            out.push(finish(
                op,
                kind,
                0,
                data_bits,
                row.period,
                row.z,
                WindowShape::Full,
                cc.bw_bits as f64,
                cc.endpoints,
                opts.phase_aware_z,
            ));
        }
    }

    *lw.dtls_mut() = out;
}

/// Refreshes the bandwidth-dependent columns of an existing DTL list in
/// place: `RealBW` (re-read from the architecture's ports with the same
/// lookups as [`build_dtls_lowered`]), `X_REAL = data_bits / RealBW`
/// and `SS_u = (X_REAL − X_REQ) × z_stall` (the same arithmetic as the
/// full build, so the floats come out bit-identical). Everything else —
/// periods, windows, `ReqBW_u`, endpoints — is bandwidth-independent
/// and untouched.
///
/// Only valid when the structure is clean: same workload, mapping and
/// architecture structure as the lowering that built the list (the
/// [`rebuild_dirty`](crate::LoweredLayer::rebuild_dirty) precondition).
pub(crate) fn refresh_bandwidth(view: &MappedLayer<'_>, lw: &mut crate::LoweredLayer) {
    let h = view.arch().hierarchy();
    let mut dtls = std::mem::take(lw.dtls_mut());
    for d in &mut dtls {
        // The endpoints recorded at build time name exactly the ports the
        // link occupies, so `RealBW` is the narrower of their current
        // bandwidths — the same `u64` min the full build takes through
        // its chain-and-port lookups, read without them.
        let real_bw = d
            .endpoints
            .iter()
            .map(|e| h.mem(e.mem).ports()[e.port].bw_bits)
            .min()
            .expect("every DTL occupies at least one port") as f64;
        d.real_bw = real_bw;
        d.x_real = d.data_bits as f64 / real_bw;
        d.ss_u = (d.x_real - d.x_req) * d.z_stall as f64;
    }
    *lw.dtls_mut() = dtls;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_mapping::{LoopStack, Mapping, SpatialUnroll};
    use ulm_workload::{Dim, Layer, Precision};

    fn toy_view() -> (ulm_arch::presets::PresetChip, Layer, Mapping) {
        let chip = presets::toy_chip();
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        let mapping = Mapping::with_greedy_alloc(
            &chip.arch,
            &layer,
            SpatialUnroll::new(chip.spatial.clone()),
            LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]),
        )
        .unwrap();
        (chip, layer, mapping)
    }

    #[test]
    fn toy_dtl_inventory() {
        let (chip, layer, mapping) = toy_view();
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let dtls = build_dtls(&view, DtlOptions::default());
        // W refill, I refill, O drain (+ no psum readback: outputs final
        // above O-Reg), 3 compute links.
        let refills = dtls
            .iter()
            .filter(|d| d.kind == DtlKind::RefillDown)
            .count();
        let drains = dtls.iter().filter(|d| d.kind == DtlKind::DrainUp).count();
        let readbacks = dtls
            .iter()
            .filter(|d| d.kind == DtlKind::PsumReadback)
            .count();
        let compute = dtls
            .iter()
            .filter(|d| matches!(d.kind, DtlKind::ComputeFeed | DtlKind::ComputeWriteback))
            .count();
        assert_eq!(refills, 2);
        assert_eq!(drains, 1);
        assert_eq!(readbacks, 0);
        assert_eq!(compute, 3);
    }

    #[test]
    fn w_refill_attributes_match_hand_computation() {
        let (chip, layer, mapping) = toy_view();
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let dtls = build_dtls(&view, DtlOptions::default());
        let w = dtls
            .iter()
            .find(|d| d.operand == Operand::W && d.kind == DtlKind::RefillDown)
            .unwrap();
        // W-Reg holds 2 words x 8b = 16 bits, refilled every cycle
        // (Mem_CC = 1, no temporal loops at the reg level).
        assert_eq!(w.data_bits, 16);
        assert_eq!(w.period, 1);
        assert_eq!(w.z, 32);
        // Non-DB, top loop run = 1 -> full window, ReqBW = 16 b/cy.
        assert!((w.req_bw - 16.0).abs() < 1e-9);
        // Link bandwidth: W-Reg write port 8 vs LB read 16 -> 8 b/cy.
        assert!((w.real_bw - 8.0).abs() < 1e-9);
        // X_REAL = 2 cycles vs X_REQ = 1 -> one stall cycle per period,
        // over Z − 1 = 31 compute-phase periods (the first refill is the
        // pre-load phase).
        assert_eq!(w.z_stall, 31);
        assert!((w.ss_u - 31.0).abs() < 1e-9);
    }

    #[test]
    fn output_stationary_drain_is_bursty() {
        let (chip, layer, mapping) = toy_view();
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let dtls = build_dtls(&view, DtlOptions::default());
        let o = dtls
            .iter()
            .find(|d| d.operand == Operand::O && d.kind == DtlKind::DrainUp)
            .unwrap();
        // O-Reg holds 4 outputs accumulated over C8 (ir run = 8): the
        // drain window is the last 1/8 of the 8-cycle period = 1 cycle.
        // Outputs are final above the regs, so they are re-quantized to
        // 8 bits before leaving: 4 words x 8b = 32 bits per burst.
        assert_eq!(o.data_bits, 4 * 8);
        assert_eq!(o.period, 8);
        assert!((o.x_req - 1.0).abs() < 1e-9);
        assert!((o.req_bw - 32.0).abs() < 1e-9);
    }

    #[test]
    fn psum_readback_appears_when_c_split() {
        let (chip, layer, _) = toy_view();
        // Split C: C4 at O-Reg ... K2 ... C2 on top (ir for O above).
        let mapping = Mapping::with_greedy_alloc(
            &chip.arch,
            &layer,
            SpatialUnroll::new(chip.spatial.clone()),
            LoopStack::from_pairs(&[(Dim::C, 4), (Dim::B, 2), (Dim::K, 2), (Dim::C, 2)]),
        )
        .unwrap();
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let dtls = build_dtls(&view, DtlOptions::default());
        let readbacks: Vec<_> = dtls
            .iter()
            .filter(|d| d.kind == DtlKind::PsumReadback)
            .collect();
        assert_eq!(readbacks.len(), 1);
        // Partial sums travel at 24 bits.
        assert_eq!(readbacks[0].data_bits, 4 * 24);
        // And the drain also moves partials now.
        let drain = dtls
            .iter()
            .find(|d| d.operand == Operand::O && d.kind == DtlKind::DrainUp)
            .unwrap();
        assert_eq!(drain.data_bits, 4 * 24);
    }

    #[test]
    fn compute_feed_rates_use_relevant_unrolls_only() {
        let (chip, layer, mapping) = toy_view();
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let dtls = build_dtls(&view, DtlOptions::default());
        let feed_w = dtls
            .iter()
            .find(|d| d.operand == Operand::W && d.kind == DtlKind::ComputeFeed)
            .unwrap();
        // Spatial K2|B2: W cares about K only -> 2 words x 8b per cycle.
        assert!((feed_w.req_bw - 16.0).abs() < 1e-9);
        // W-Reg read port = 32 b/cy -> slack, never stall.
        assert!(feed_w.ss_u <= 0.0);
    }

    #[test]
    fn disabling_compute_links_removes_them() {
        let (chip, layer, mapping) = toy_view();
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let dtls = build_dtls(
            &view,
            DtlOptions {
                compute_links: false,
                ..DtlOptions::default()
            },
        );
        assert!(dtls
            .iter()
            .all(|d| !matches!(d.kind, DtlKind::ComputeFeed | DtlKind::ComputeWriteback)));
    }
}
