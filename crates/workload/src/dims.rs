//! The seven nested-loop dimensions of a DNN layer.

use std::fmt;

/// One of the seven nested for-loop dimensions used to describe a dense DNN
/// layer in the ZigZag loop notation adopted by the paper:
///
/// | Dim  | Meaning                      |
/// |------|------------------------------|
/// | `B`  | batch                        |
/// | `K`  | output channel               |
/// | `C`  | input channel                |
/// | `OY` | output feature-map height    |
/// | `OX` | output feature-map width     |
/// | `FY` | filter height                |
/// | `FX` | filter width                 |
///
/// # Example
///
/// ```
/// use ulm_workload::Dim;
/// assert_eq!(Dim::OX.to_string(), "OX");
/// assert_eq!(Dim::parse("fy"), Some(Dim::FY));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Dim {
    /// Batch.
    B,
    /// Output channel.
    K,
    /// Input channel.
    C,
    /// Output y (height).
    OY,
    /// Output x (width).
    OX,
    /// Filter y (height).
    FY,
    /// Filter x (width).
    FX,
}

/// All dimensions in canonical `B, K, C, OY, OX, FY, FX` order.
pub const ALL_DIMS: [Dim; 7] = [Dim::B, Dim::K, Dim::C, Dim::OY, Dim::OX, Dim::FY, Dim::FX];

impl Dim {
    /// Canonical index of this dimension within [`ALL_DIMS`].
    pub fn index(self) -> usize {
        match self {
            Dim::B => 0,
            Dim::K => 1,
            Dim::C => 2,
            Dim::OY => 3,
            Dim::OX => 4,
            Dim::FY => 5,
            Dim::FX => 6,
        }
    }

    /// Iterate over all dimensions in canonical order.
    pub fn all() -> impl Iterator<Item = Dim> {
        ALL_DIMS.iter().copied()
    }

    /// Parses a case-insensitive dimension name (`"b"`, `"OX"`, …).
    ///
    /// Returns `None` for unknown names.
    pub fn parse(s: &str) -> Option<Dim> {
        match s.to_ascii_uppercase().as_str() {
            "B" => Some(Dim::B),
            "K" => Some(Dim::K),
            "C" => Some(Dim::C),
            "OY" => Some(Dim::OY),
            "OX" => Some(Dim::OX),
            "FY" => Some(Dim::FY),
            "FX" => Some(Dim::FX),
            _ => None,
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dim::B => "B",
            Dim::K => "K",
            Dim::C => "C",
            Dim::OY => "OY",
            Dim::OX => "OX",
            Dim::FY => "FY",
            Dim::FX => "FX",
        };
        f.write_str(s)
    }
}

/// A size per loop dimension — the layer's loop bounds, or the extents
/// covered by a subset of mapped loops.
///
/// # Example
///
/// ```
/// use ulm_workload::{Dim, DimSizes};
///
/// let mut ext = DimSizes::ones();
/// ext[Dim::K] = 16;
/// ext[Dim::C] = 2;
/// assert_eq!(ext.product(), 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct DimSizes {
    sizes: [u64; 7],
}

impl DimSizes {
    /// All dimensions set to 1 (the neutral element for loop products).
    pub fn ones() -> Self {
        Self { sizes: [1; 7] }
    }

    /// Builds sizes in canonical order `B, K, C, OY, OX, FY, FX`.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero: a zero loop bound makes the loop nest
    /// empty and every derived quantity meaningless.
    pub fn new(b: u64, k: u64, c: u64, oy: u64, ox: u64, fy: u64, fx: u64) -> Self {
        let sizes = [b, k, c, oy, ox, fy, fx];
        assert!(
            sizes.iter().all(|&s| s > 0),
            "loop dimension sizes must be positive, got {sizes:?}"
        );
        Self { sizes }
    }

    /// Product of all seven sizes (the total iteration count of the nest).
    pub fn product(&self) -> u64 {
        self.sizes.iter().product()
    }

    /// Multiplies the entry for `dim` by `factor`.
    pub fn multiply(&mut self, dim: Dim, factor: u64) {
        self.sizes[dim.index()] *= factor;
    }

    /// Iterates `(dim, size)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Dim, u64)> + '_ {
        ALL_DIMS.iter().copied().zip(self.sizes.iter().copied())
    }
}

impl Default for DimSizes {
    fn default() -> Self {
        Self::ones()
    }
}

impl std::ops::Index<Dim> for DimSizes {
    type Output = u64;
    fn index(&self, d: Dim) -> &u64 {
        &self.sizes[d.index()]
    }
}

impl std::ops::IndexMut<Dim> for DimSizes {
    fn index_mut(&mut self, d: Dim) -> &mut u64 {
        &mut self.sizes[d.index()]
    }
}

impl fmt::Display for DimSizes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (d, s) in self.iter() {
            if s != 1 {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{d}={s}")?;
                first = false;
            }
        }
        if first {
            write!(f, "(unit)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_parse_round_trips() {
        for d in Dim::all() {
            assert_eq!(Dim::parse(&d.to_string()), Some(d));
            assert_eq!(Dim::parse(&d.to_string().to_lowercase()), Some(d));
        }
        assert_eq!(Dim::parse("Q"), None);
        assert_eq!(Dim::parse(""), None);
    }

    #[test]
    fn dim_indices_match_all_dims() {
        for (i, d) in ALL_DIMS.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
    }

    #[test]
    fn sizes_product_and_mutation() {
        let mut s = DimSizes::new(2, 3, 5, 1, 1, 1, 1);
        assert_eq!(s.product(), 30);
        s.multiply(Dim::OX, 4);
        assert_eq!(s[Dim::OX], 4);
        assert_eq!(s.product(), 120);
        s[Dim::B] = 1;
        assert_eq!(s.product(), 60);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_size_rejected() {
        let _ = DimSizes::new(0, 1, 1, 1, 1, 1, 1);
    }

    #[test]
    fn display_skips_unit_dims() {
        let s = DimSizes::new(1, 16, 2, 1, 1, 1, 1);
        assert_eq!(s.to_string(), "K=16 C=2");
        assert_eq!(DimSizes::ones().to_string(), "(unit)");
    }
}
