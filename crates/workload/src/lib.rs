//! DNN layer and nested-loop workload representation.
//!
//! This crate provides the *Algorithm* leg of the paper's
//! Algorithm–Hardware–Mapping (AHM) triple: DNN layers expressed as the
//! 7-dimensional nested for-loop format of ZigZag
//! (`B, K, C, OY, OX, FY, FX`), operand precisions, per-operand loop
//! relevance (`r` / `ir` / partially-relevant loops), the Im2Col lowering
//! used by the paper's validation chip, and a set of built-in workloads
//! including a hand-tracking (SSD-MobileNet-style) network.
//!
//! # Example
//!
//! ```
//! use ulm_workload::{Layer, LayerShape, LayerType, Precision, Dim, Operand};
//!
//! let layer = Layer::conv2d(
//!     "conv1",
//!     LayerShape::conv(1, 32, 3, 112, 112, 3, 3).with_stride(2, 2),
//!     Precision::int8_acc24(),
//! );
//! assert_eq!(layer.total_macs(), 32 * 112 * 112 * 3 * 3 * 3);
//! // Weights are irrelevant to the batch loop: iterating B reuses W.
//! assert!(!layer.relevance(Operand::W, Dim::B).is_relevant());
//! ```

pub mod attention;
pub mod dims;
pub mod im2col;
pub mod layer;
pub mod netdesc;
pub mod networks;
pub mod precision;
pub mod relevance;

pub use attention::AttentionShape;
pub use dims::{Dim, DimSizes, ALL_DIMS};
pub use im2col::im2col;
pub use layer::{Layer, LayerShape, LayerType};
pub use netdesc::NetworkDesc;
pub use precision::Precision;
pub use relevance::{OperandRelevance, Relevance};

use std::fmt;

/// The three major operands of a DNN layer: weights, inputs and outputs.
///
/// The latency model analyses each operand's traffic through the memory
/// hierarchy separately (the paper's "Divide" step), so the operand is a
/// pervasive index type across all `ulm` crates.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Operand {
    /// Weight (filter) operand.
    W,
    /// Input (activation) operand.
    I,
    /// Output (partial-sum / final output) operand.
    O,
}

/// All operands in canonical `W, I, O` order.
pub const ALL_OPERANDS: [Operand; 3] = [Operand::W, Operand::I, Operand::O];

impl Operand {
    /// Canonical index of this operand (`W = 0`, `I = 1`, `O = 2`).
    pub fn index(self) -> usize {
        match self {
            Operand::W => 0,
            Operand::I => 1,
            Operand::O => 2,
        }
    }

    /// Iterate over all operands in canonical order.
    pub fn all() -> impl Iterator<Item = Operand> {
        ALL_OPERANDS.iter().copied()
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::W => write!(f, "W"),
            Operand::I => write!(f, "I"),
            Operand::O => write!(f, "O"),
        }
    }
}

/// A small fixed map from [`Operand`] to `T`, used across the workspace for
/// per-operand attributes (memory chains, loop allocations, data sizes, …).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct PerOperand<T> {
    values: [T; 3],
}

impl<T> PerOperand<T> {
    /// Builds a map with explicit values for `W`, `I` and `O`.
    pub fn new(w: T, i: T, o: T) -> Self {
        Self { values: [w, i, o] }
    }

    /// Builds a map by evaluating `f` for each operand.
    pub fn from_fn(mut f: impl FnMut(Operand) -> T) -> Self {
        Self {
            values: [f(Operand::W), f(Operand::I), f(Operand::O)],
        }
    }

    /// Shared access to the entry for `op`.
    pub fn get(&self, op: Operand) -> &T {
        &self.values[op.index()]
    }

    /// Mutable access to the entry for `op`.
    pub fn get_mut(&mut self, op: Operand) -> &mut T {
        &mut self.values[op.index()]
    }

    /// Iterates `(operand, &value)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (Operand, &T)> {
        ALL_OPERANDS.iter().copied().zip(self.values.iter())
    }

    /// Maps every entry through `f`, preserving operand association.
    pub fn map<U>(&self, mut f: impl FnMut(Operand, &T) -> U) -> PerOperand<U> {
        PerOperand {
            values: [
                f(Operand::W, &self.values[0]),
                f(Operand::I, &self.values[1]),
                f(Operand::O, &self.values[2]),
            ],
        }
    }
}

impl<T> std::ops::Index<Operand> for PerOperand<T> {
    type Output = T;
    fn index(&self, op: Operand) -> &T {
        self.get(op)
    }
}

impl<T> std::ops::IndexMut<Operand> for PerOperand<T> {
    fn index_mut(&mut self, op: Operand) -> &mut T {
        self.get_mut(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_indices_are_canonical() {
        assert_eq!(Operand::W.index(), 0);
        assert_eq!(Operand::I.index(), 1);
        assert_eq!(Operand::O.index(), 2);
        let collected: Vec<_> = Operand::all().collect();
        assert_eq!(collected, vec![Operand::W, Operand::I, Operand::O]);
    }

    #[test]
    fn per_operand_round_trips() {
        let mut m = PerOperand::new(1u64, 2, 3);
        assert_eq!(m[Operand::W], 1);
        assert_eq!(m[Operand::I], 2);
        assert_eq!(m[Operand::O], 3);
        m[Operand::O] = 42;
        assert_eq!(m[Operand::O], 42);
        let doubled = m.map(|_, v| v * 2);
        assert_eq!(doubled[Operand::W], 2);
        assert_eq!(doubled[Operand::O], 84);
    }

    #[test]
    fn per_operand_from_fn_matches_order() {
        let m = PerOperand::from_fn(|op| op.index());
        for (op, v) in m.iter() {
            assert_eq!(op.index(), *v);
        }
    }

    #[test]
    fn operand_display_is_single_letter() {
        assert_eq!(Operand::W.to_string(), "W");
        assert_eq!(Operand::I.to_string(), "I");
        assert_eq!(Operand::O.to_string(), "O");
    }
}
