//! Operand bit-precision description.

use crate::Operand;

/// Bit widths of the three operands, with outputs split into partial-sum
/// and final precision.
///
/// The paper's validation chip runs INT8 inference with 24-bit output
/// registers: weights and inputs occupy 8 bits, partial sums travel at
/// 24 bits and final outputs are re-quantized to 8 bits. The distinction
/// matters for latency because partial-sum traffic through a bandwidth
/// limited interface is 3x as expensive as final-output traffic
/// (Case study 2, Fig. 7).
///
/// # Example
///
/// ```
/// use ulm_workload::{Precision, Operand};
///
/// let p = Precision::int8_acc24();
/// assert_eq!(p.bits(Operand::W), 8);
/// assert_eq!(p.partial_sum_bits(), 24);
/// assert_eq!(p.final_output_bits(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Precision {
    w_bits: u64,
    i_bits: u64,
    o_partial_bits: u64,
    o_final_bits: u64,
}

impl Precision {
    /// Builds a precision description.
    ///
    /// # Panics
    ///
    /// Panics if any width is zero or if the final output is wider than the
    /// partial sum (re-quantization never widens data).
    pub fn new(w_bits: u64, i_bits: u64, o_partial_bits: u64, o_final_bits: u64) -> Self {
        assert!(
            w_bits > 0 && i_bits > 0 && o_partial_bits > 0 && o_final_bits > 0,
            "operand bit widths must be positive"
        );
        assert!(
            o_final_bits <= o_partial_bits,
            "final output precision ({o_final_bits}b) must not exceed partial-sum \
             precision ({o_partial_bits}b)"
        );
        Self {
            w_bits,
            i_bits,
            o_partial_bits,
            o_final_bits,
        }
    }

    /// The paper's validation-chip precision: 8-bit W/I, 24-bit partial
    /// sums, 8-bit re-quantized final outputs.
    pub fn int8_acc24() -> Self {
        Self::new(8, 8, 24, 8)
    }

    /// INT8 W/I with 24-bit partial sums kept at 24 bits when written out
    /// (no re-quantization). Matches the case studies, where the output
    /// operand is counted at 24 bits ("the 24-bit O precision" in Case 2).
    pub fn int8_out24() -> Self {
        Self::new(8, 8, 24, 24)
    }

    /// Uniform `bits` for every operand, partial sums included. Useful for
    /// tests and idealized studies.
    pub fn uniform(bits: u64) -> Self {
        Self::new(bits, bits, bits, bits)
    }

    /// Storage width of `op`: W and I widths, and the *partial-sum* width
    /// for O (the width the output occupies while resident on chip).
    pub fn bits(&self, op: Operand) -> u64 {
        match op {
            Operand::W => self.w_bits,
            Operand::I => self.i_bits,
            Operand::O => self.o_partial_bits,
        }
    }

    /// Width of an output value while it is still a partial sum.
    pub fn partial_sum_bits(&self) -> u64 {
        self.o_partial_bits
    }

    /// Width of a final (re-quantized) output value.
    pub fn final_output_bits(&self) -> u64 {
        self.o_final_bits
    }

    /// Width of the output operand when crossing a memory interface:
    /// partial-sum width if the values still need accumulation, final
    /// width otherwise.
    pub fn output_bits(&self, is_final: bool) -> u64 {
        if is_final {
            self.o_final_bits
        } else {
            self.o_partial_bits
        }
    }
}

impl Default for Precision {
    /// Defaults to the validation-chip [`Precision::int8_acc24`].
    fn default() -> Self {
        Self::int8_acc24()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int8_acc24_widths() {
        let p = Precision::int8_acc24();
        assert_eq!(p.bits(Operand::W), 8);
        assert_eq!(p.bits(Operand::I), 8);
        assert_eq!(p.bits(Operand::O), 24);
        assert_eq!(p.output_bits(true), 8);
        assert_eq!(p.output_bits(false), 24);
    }

    #[test]
    fn uniform_is_uniform() {
        let p = Precision::uniform(16);
        for op in Operand::all() {
            assert_eq!(p.bits(op), 16);
        }
        assert_eq!(p.final_output_bits(), 16);
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn widening_requantization_rejected() {
        let _ = Precision::new(8, 8, 8, 24);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_width_rejected() {
        let _ = Precision::new(8, 0, 24, 8);
    }
}
