//! Per-operand loop relevance (`r` / `ir` / partially-relevant loops).
//!
//! The paper (after ZigZag) classifies each loop dimension per operand:
//! *relevant* (`r`) loops index into the operand's data and therefore
//! contribute to its data size, while *irrelevant* (`ir`) loops reuse the
//! same data and contribute to reuse. For the input operand, the `OX`/`FX`
//! (and `OY`/`FY`) pairs are *partially relevant*: they combine through the
//! sliding-window geometry `ix = (ox-1)*sx + (fx-1)*dx + 1`.

use crate::{Dim, DimSizes, LayerType, Operand};

/// How a loop dimension relates to one operand's data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Relevance {
    /// The loop indexes the operand's data directly (an `r` loop).
    Relevant,
    /// The loop reuses the operand's data (an `ir` loop).
    Irrelevant,
    /// Partially relevant through the input-x geometry (`OX`/`FX` for `I`).
    PartialIx,
    /// Partially relevant through the input-y geometry (`OY`/`FY` for `I`).
    PartialIy,
}

impl Relevance {
    /// True for [`Relevance::Relevant`] and both partial kinds: the loop
    /// contributes (at least partially) to the operand's data size.
    pub fn is_relevant(self) -> bool {
        !matches!(self, Relevance::Irrelevant)
    }

    /// True only for [`Relevance::Irrelevant`]: iterating this loop reuses
    /// the operand's data without touching new elements.
    pub fn is_irrelevant(self) -> bool {
        matches!(self, Relevance::Irrelevant)
    }
}

/// Relevance classification of all seven loops for one operand of a given
/// layer type.
///
/// # Example
///
/// ```
/// use ulm_workload::{LayerType, Operand, Dim, OperandRelevance, Relevance};
///
/// let rel = OperandRelevance::of(LayerType::Conv2d, Operand::W);
/// assert_eq!(rel.get(Dim::K), Relevance::Relevant);
/// assert_eq!(rel.get(Dim::B), Relevance::Irrelevant);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OperandRelevance {
    per_dim: [Relevance; 7],
}

impl OperandRelevance {
    /// Relevance table for `op` in a layer of type `ltype`.
    ///
    /// For [`LayerType::DepthwiseConv2d`], the `K` loop walks channels and
    /// is therefore relevant to *all three* operands (each output channel
    /// consumes its own input channel); the `C` loop is fixed at 1.
    pub fn of(ltype: LayerType, op: Operand) -> Self {
        use Relevance::*;
        let depthwise = matches!(ltype, LayerType::DepthwiseConv2d);
        // Canonical dim order: B, K, C, OY, OX, FY, FX.
        let per_dim = match op {
            Operand::W => [
                Irrelevant, // B
                Relevant,   // K
                Relevant,   // C
                Irrelevant, // OY
                Irrelevant, // OX
                Relevant,   // FY
                Relevant,   // FX
            ],
            Operand::O => [
                Relevant,   // B
                Relevant,   // K
                Irrelevant, // C
                Relevant,   // OY
                Relevant,   // OX
                Irrelevant, // FY
                Irrelevant, // FX
            ],
            Operand::I => [
                Relevant,                                      // B
                if depthwise { Relevant } else { Irrelevant }, // K
                Relevant,                                      // C
                PartialIy,                                     // OY
                PartialIx,                                     // OX
                PartialIy,                                     // FY
                PartialIx,                                     // FX
            ],
        };
        Self { per_dim }
    }

    /// Relevance of dimension `dim` for this operand.
    pub fn get(&self, dim: Dim) -> Relevance {
        self.per_dim[dim.index()]
    }

    /// Iterates `(dim, relevance)` in canonical dimension order.
    pub fn iter(&self) -> impl Iterator<Item = (Dim, Relevance)> + '_ {
        crate::ALL_DIMS
            .iter()
            .copied()
            .zip(self.per_dim.iter().copied())
    }
}

/// Number of distinct input pixels along one axis covered by an output
/// extent `out_ext` and a filter extent `filt_ext` with the given stride
/// and dilation: `(out_ext - 1) * stride + (filt_ext - 1) * dilation + 1`.
///
/// # Example
///
/// ```
/// use ulm_workload::relevance::input_axis_extent;
/// // 3 outputs, 3-tap filter, stride 1: 5 input pixels.
/// assert_eq!(input_axis_extent(3, 3, 1, 1), 5);
/// // stride 2 doubles the hop between windows.
/// assert_eq!(input_axis_extent(3, 3, 2, 1), 7);
/// ```
pub fn input_axis_extent(out_ext: u64, filt_ext: u64, stride: u64, dilation: u64) -> u64 {
    assert!(out_ext > 0 && filt_ext > 0, "extents must be positive");
    (out_ext - 1) * stride + (filt_ext - 1) * dilation + 1
}

/// Number of data words of operand `op` covered by the loop `extents`, for
/// a layer of type `ltype` with the given strides/dilations.
///
/// This is the paper's `Mem_DATA` primitive: "the product of all the `r`
/// loops' size … of that operand", with the input operand's partially
/// relevant loops combined through [`input_axis_extent`].
pub fn data_words(
    ltype: LayerType,
    op: Operand,
    extents: &DimSizes,
    stride: (u64, u64),
    dilation: (u64, u64),
) -> u64 {
    let rel = OperandRelevance::of(ltype, op);
    match op {
        Operand::W | Operand::O => rel
            .iter()
            .map(|(d, r)| if r.is_relevant() { extents[d] } else { 1 })
            .product(),
        Operand::I => {
            let mut words = 1u64;
            for (d, r) in rel.iter() {
                if r == Relevance::Relevant {
                    words *= extents[d];
                }
            }
            let iy = input_axis_extent(extents[Dim::OY], extents[Dim::FY], stride.1, dilation.1);
            let ix = input_axis_extent(extents[Dim::OX], extents[Dim::FX], stride.0, dilation.0);
            words * iy * ix
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_relevance_matches_paper() {
        // Paper Section III-A: "W's r loops are {K, C, FX, FY}, and its ir
        // loops are {B, OY, OX}".
        let w = OperandRelevance::of(LayerType::Conv2d, Operand::W);
        for d in [Dim::K, Dim::C, Dim::FX, Dim::FY] {
            assert_eq!(w.get(d), Relevance::Relevant, "{d}");
        }
        for d in [Dim::B, Dim::OY, Dim::OX] {
            assert_eq!(w.get(d), Relevance::Irrelevant, "{d}");
        }
        let o = OperandRelevance::of(LayerType::Conv2d, Operand::O);
        for d in [Dim::B, Dim::K, Dim::OY, Dim::OX] {
            assert_eq!(o.get(d), Relevance::Relevant, "{d}");
        }
        for d in [Dim::C, Dim::FY, Dim::FX] {
            assert_eq!(o.get(d), Relevance::Irrelevant, "{d}");
        }
        let i = OperandRelevance::of(LayerType::Conv2d, Operand::I);
        assert_eq!(i.get(Dim::B), Relevance::Relevant);
        assert_eq!(i.get(Dim::C), Relevance::Relevant);
        assert_eq!(i.get(Dim::K), Relevance::Irrelevant);
        assert_eq!(i.get(Dim::OX), Relevance::PartialIx);
        assert_eq!(i.get(Dim::FY), Relevance::PartialIy);
    }

    #[test]
    fn depthwise_inputs_track_k() {
        let i = OperandRelevance::of(LayerType::DepthwiseConv2d, Operand::I);
        assert_eq!(i.get(Dim::K), Relevance::Relevant);
        let i_std = OperandRelevance::of(LayerType::Conv2d, Operand::I);
        assert_eq!(i_std.get(Dim::K), Relevance::Irrelevant);
    }

    #[test]
    fn input_extent_degenerate_cases() {
        // A single output with a single-tap filter touches one pixel.
        assert_eq!(input_axis_extent(1, 1, 1, 1), 1);
        // Pure matmul shape (all spatial dims 1) keeps extent 1 whatever
        // the stride.
        assert_eq!(input_axis_extent(1, 1, 7, 3), 1);
    }

    #[test]
    fn data_words_conv_example() {
        // 3x3 conv, 4 in-ch, 8 out-ch, 5x5 outputs, stride 1, batch 2.
        let ext = DimSizes::new(2, 8, 4, 5, 5, 3, 3);
        let w = data_words(LayerType::Conv2d, Operand::W, &ext, (1, 1), (1, 1));
        assert_eq!(w, 8 * 4 * 3 * 3);
        let o = data_words(LayerType::Conv2d, Operand::O, &ext, (1, 1), (1, 1));
        assert_eq!(o, 2 * 8 * 5 * 5);
        let i = data_words(LayerType::Conv2d, Operand::I, &ext, (1, 1), (1, 1));
        assert_eq!(i, 2 * 4 * 7 * 7); // iy = ix = (5-1)+(3-1)+1 = 7
    }

    #[test]
    fn data_words_matmul_collapses_geometry() {
        // Post-Im2Col matmul: only B, K, C are non-unit.
        let ext = DimSizes::new(16, 32, 64, 1, 1, 1, 1);
        assert_eq!(
            data_words(LayerType::Matmul, Operand::I, &ext, (1, 1), (1, 1)),
            16 * 64
        );
        assert_eq!(
            data_words(LayerType::Matmul, Operand::W, &ext, (1, 1), (1, 1)),
            32 * 64
        );
        assert_eq!(
            data_words(LayerType::Matmul, Operand::O, &ext, (1, 1), (1, 1)),
            16 * 32
        );
    }
}
