//! DNN layer description: type, loop bounds, geometry and precision.

use crate::relevance::{data_words, OperandRelevance, Relevance};
use crate::{Dim, DimSizes, Operand, PerOperand, Precision};
use std::fmt;

/// The dense layer types the paper's intra-layer model covers
/// (Section II-A: "Conv2D, Dense, Depthwise and Pointwise").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum LayerType {
    /// Standard 2-D convolution.
    Conv2d,
    /// 1x1 convolution (pointwise); `FY = FX = 1`.
    PointwiseConv2d,
    /// Depthwise 2-D convolution; `C = 1`, the `K` loop walks channels.
    DepthwiseConv2d,
    /// Fully-connected layer; all spatial dims are 1.
    Dense,
    /// General matrix multiplication `B x C . C x K` — the shape every
    /// layer takes after Im2Col lowering.
    Matmul,
}

impl fmt::Display for LayerType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerType::Conv2d => "Conv2D",
            LayerType::PointwiseConv2d => "Pointwise",
            LayerType::DepthwiseConv2d => "Depthwise",
            LayerType::Dense => "Dense",
            LayerType::Matmul => "Matmul",
        };
        f.write_str(s)
    }
}

/// Loop bounds plus convolution geometry (stride, dilation).
///
/// # Example
///
/// ```
/// use ulm_workload::LayerShape;
///
/// let s = LayerShape::conv(1, 64, 32, 56, 56, 3, 3).with_stride(2, 2);
/// assert_eq!(s.input_height(), 113); // (56-1)*2 + (3-1) + 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct LayerShape {
    dims: DimSizes,
    stride: (u64, u64),
    dilation: (u64, u64),
}

impl LayerShape {
    /// Convolution-style shape `B, K, C, OY, OX, FY, FX`, stride and
    /// dilation 1.
    pub fn conv(b: u64, k: u64, c: u64, oy: u64, ox: u64, fy: u64, fx: u64) -> Self {
        Self {
            dims: DimSizes::new(b, k, c, oy, ox, fy, fx),
            stride: (1, 1),
            dilation: (1, 1),
        }
    }

    /// Matmul shape: `B x C` inputs against `C x K` weights.
    pub fn matmul(b: u64, k: u64, c: u64) -> Self {
        Self::conv(b, k, c, 1, 1, 1, 1)
    }

    /// Sets the x/y stride.
    pub fn with_stride(mut self, sx: u64, sy: u64) -> Self {
        assert!(sx > 0 && sy > 0, "strides must be positive");
        self.stride = (sx, sy);
        self
    }

    /// Sets the x/y dilation.
    pub fn with_dilation(mut self, dx: u64, dy: u64) -> Self {
        assert!(dx > 0 && dy > 0, "dilations must be positive");
        self.dilation = (dx, dy);
        self
    }

    /// The seven loop bounds.
    pub fn dims(&self) -> &DimSizes {
        &self.dims
    }

    /// Loop bound of `dim`.
    pub fn dim(&self, dim: Dim) -> u64 {
        self.dims[dim]
    }

    /// `(sx, sy)` stride.
    pub fn stride(&self) -> (u64, u64) {
        self.stride
    }

    /// `(dx, dy)` dilation.
    pub fn dilation(&self) -> (u64, u64) {
        self.dilation
    }

    /// Input feature-map height implied by the output/filter geometry.
    pub fn input_height(&self) -> u64 {
        crate::relevance::input_axis_extent(
            self.dims[Dim::OY],
            self.dims[Dim::FY],
            self.stride.1,
            self.dilation.1,
        )
    }

    /// Input feature-map width implied by the output/filter geometry.
    pub fn input_width(&self) -> u64 {
        crate::relevance::input_axis_extent(
            self.dims[Dim::OX],
            self.dims[Dim::FX],
            self.stride.0,
            self.dilation.0,
        )
    }
}

/// A DNN layer: the *Algorithm* corner of the AHM design space.
///
/// # Example
///
/// ```
/// use ulm_workload::{Layer, LayerShape, Precision, Operand};
///
/// let fc = Layer::dense("fc", 1, 1000, 1024, Precision::int8_acc24());
/// assert_eq!(fc.total_macs(), 1000 * 1024);
/// assert_eq!(fc.tensor_words(Operand::W), 1000 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Layer {
    name: String,
    ltype: LayerType,
    shape: LayerShape,
    precision: Precision,
    /// Which operands are KV-cache resident: already present in the
    /// level just below the backing store at layer start (a decode
    /// step's K/V cache), so the top memory interface never refills
    /// them. Defaults to none; absent in older serialized layers.
    #[serde(default)]
    kv: PerOperand<bool>,
}

impl Layer {
    /// Builds a layer from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if the shape violates the layer type's structural constraints
    /// (e.g. a depthwise layer with `C != 1`, a pointwise layer with a
    /// non-1x1 filter, or a dense/matmul layer with spatial dims).
    pub fn new(
        name: impl Into<String>,
        ltype: LayerType,
        shape: LayerShape,
        precision: Precision,
    ) -> Self {
        let d = shape.dims();
        match ltype {
            LayerType::Conv2d => {}
            LayerType::PointwiseConv2d => {
                assert!(
                    d[Dim::FY] == 1 && d[Dim::FX] == 1,
                    "pointwise layers must have a 1x1 filter"
                );
            }
            LayerType::DepthwiseConv2d => {
                assert!(d[Dim::C] == 1, "depthwise layers must have C = 1");
            }
            LayerType::Dense | LayerType::Matmul => {
                assert!(
                    d[Dim::OY] == 1 && d[Dim::OX] == 1 && d[Dim::FY] == 1 && d[Dim::FX] == 1,
                    "dense/matmul layers must have unit spatial dims"
                );
            }
        }
        Self {
            name: name.into(),
            ltype,
            shape,
            precision,
            kv: PerOperand::default(),
        }
    }

    /// Marks operand `op` as a KV-cache resident: its footprint scales
    /// with context length, it lives in the level below the backing
    /// store when the layer starts, and it is never refilled across the
    /// top memory interface within a decode step.
    ///
    /// # Panics
    ///
    /// Panics for [`Operand::O`] — only the streamed-in `W`/`I`
    /// operands can be cache-resident.
    pub fn with_kv_cache(mut self, op: Operand) -> Self {
        assert!(
            op != Operand::O,
            "outputs are produced, not cached; only W/I can be KV-cache resident"
        );
        self.kv[op] = true;
        self
    }

    /// True when operand `op` is KV-cache resident
    /// (see [`with_kv_cache`](Self::with_kv_cache)).
    pub fn is_kv_cache(&self, op: Operand) -> bool {
        self.kv[op]
    }

    /// Replaces the matmul dims `(B, K, C)` in place, keeping name,
    /// precision and KV-cache flags — the workload-varying update of a
    /// surrogate query (every other layer field is query-constant).
    ///
    /// # Panics
    ///
    /// Panics for non-matmul/dense layer types (their spatial dims
    /// cannot be expressed as `(B, K, C)`) and on any zero dim.
    pub fn set_matmul_dims(&mut self, b: u64, k: u64, c: u64) {
        assert!(
            matches!(self.ltype, LayerType::Dense | LayerType::Matmul),
            "set_matmul_dims is only meaningful for dense/matmul layers"
        );
        self.shape = LayerShape::matmul(b, k, c);
    }

    /// True when any operand is KV-cache resident.
    pub fn has_kv_cache(&self) -> bool {
        Operand::all().any(|op| self.kv[op])
    }

    /// Convenience constructor for a [`LayerType::Conv2d`] layer.
    pub fn conv2d(name: impl Into<String>, shape: LayerShape, precision: Precision) -> Self {
        Self::new(name, LayerType::Conv2d, shape, precision)
    }

    /// Convenience constructor for a [`LayerType::Matmul`] layer.
    pub fn matmul(name: impl Into<String>, b: u64, k: u64, c: u64, precision: Precision) -> Self {
        Self::new(
            name,
            LayerType::Matmul,
            LayerShape::matmul(b, k, c),
            precision,
        )
    }

    /// Convenience constructor for a [`LayerType::Dense`] layer
    /// (`b` batch, `k` outputs, `c` inputs).
    pub fn dense(name: impl Into<String>, b: u64, k: u64, c: u64, precision: Precision) -> Self {
        Self::new(
            name,
            LayerType::Dense,
            LayerShape::matmul(b, k, c),
            precision,
        )
    }

    /// Layer name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Layer type.
    pub fn layer_type(&self) -> LayerType {
        self.ltype
    }

    /// Loop bounds and geometry.
    pub fn shape(&self) -> &LayerShape {
        &self.shape
    }

    /// Operand precisions.
    pub fn precision(&self) -> &Precision {
        &self.precision
    }

    /// Total multiply-accumulate operations in the layer: the product of
    /// all seven loop bounds.
    pub fn total_macs(&self) -> u64 {
        self.shape.dims().product()
    }

    /// Relevance of `dim` for operand `op` under this layer's type.
    pub fn relevance(&self, op: Operand, dim: Dim) -> Relevance {
        OperandRelevance::of(self.ltype, op).get(dim)
    }

    /// Full relevance table for operand `op`.
    pub fn operand_relevance(&self, op: Operand) -> OperandRelevance {
        OperandRelevance::of(self.ltype, op)
    }

    /// Number of data words of operand `op` covered by the given loop
    /// `extents` (the `Mem_DATA` primitive).
    pub fn data_words(&self, op: Operand, extents: &DimSizes) -> u64 {
        data_words(
            self.ltype,
            op,
            extents,
            self.shape.stride(),
            self.shape.dilation(),
        )
    }

    /// Total words of operand `op` in the layer (extents = full bounds).
    pub fn tensor_words(&self, op: Operand) -> u64 {
        self.data_words(op, self.shape.dims())
    }

    /// Total bits of operand `op` in the layer. Outputs are counted at
    /// partial-sum precision (their on-chip storage width).
    pub fn tensor_bits(&self, op: Operand) -> u64 {
        self.tensor_words(op) * self.precision.bits(op)
    }

    /// Per-operand tensor sizes in words.
    pub fn tensor_sizes(&self) -> PerOperand<u64> {
        PerOperand::from_fn(|op| self.tensor_words(op))
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}: {}]", self.name, self.ltype, self.shape.dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_example() -> Layer {
        Layer::conv2d(
            "l",
            LayerShape::conv(2, 8, 4, 5, 5, 3, 3),
            Precision::int8_acc24(),
        )
    }

    #[test]
    fn macs_are_loop_product() {
        assert_eq!(conv_example().total_macs(), 2 * 8 * 4 * 5 * 5 * 3 * 3);
    }

    #[test]
    fn tensor_sizes_match_formulas() {
        let l = conv_example();
        assert_eq!(l.tensor_words(Operand::W), 8 * 4 * 3 * 3);
        assert_eq!(l.tensor_words(Operand::O), 2 * 8 * 5 * 5);
        assert_eq!(l.tensor_words(Operand::I), 2 * 4 * 7 * 7);
        assert_eq!(l.tensor_bits(Operand::O), 2 * 8 * 5 * 5 * 24);
    }

    #[test]
    fn strided_conv_input_geometry() {
        let l = Layer::conv2d(
            "s2",
            LayerShape::conv(1, 16, 3, 14, 14, 3, 3).with_stride(2, 2),
            Precision::int8_acc24(),
        );
        assert_eq!(l.shape().input_width(), 13 * 2 + 2 + 1);
        assert_eq!(
            l.tensor_words(Operand::I),
            3 * l.shape().input_height() * l.shape().input_width()
        );
    }

    #[test]
    #[should_panic(expected = "1x1 filter")]
    fn pointwise_shape_validated() {
        let _ = Layer::new(
            "bad",
            LayerType::PointwiseConv2d,
            LayerShape::conv(1, 8, 8, 4, 4, 3, 3),
            Precision::int8_acc24(),
        );
    }

    #[test]
    #[should_panic(expected = "C = 1")]
    fn depthwise_shape_validated() {
        let _ = Layer::new(
            "bad",
            LayerType::DepthwiseConv2d,
            LayerShape::conv(1, 8, 8, 4, 4, 3, 3),
            Precision::int8_acc24(),
        );
    }

    #[test]
    fn dense_is_matmul_shaped() {
        let l = Layer::dense("fc", 4, 10, 20, Precision::uniform(8));
        assert_eq!(l.tensor_words(Operand::I), 4 * 20);
        assert_eq!(l.tensor_words(Operand::W), 10 * 20);
        assert_eq!(l.tensor_words(Operand::O), 4 * 10);
    }

    #[test]
    fn display_mentions_name_and_type() {
        let s = conv_example().to_string();
        assert!(s.contains('l') && s.contains("Conv2D"), "{s}");
    }

    #[test]
    fn kv_cache_flags_round_trip() {
        let plain = Layer::matmul("logit", 8, 128, 64, Precision::int8_acc24());
        assert!(!plain.has_kv_cache());
        let kv = plain.clone().with_kv_cache(Operand::W);
        assert!(kv.is_kv_cache(Operand::W));
        assert!(!kv.is_kv_cache(Operand::I));
        assert_ne!(plain, kv);
        // Serialized layers without the field still deserialize (serde
        // default), and the flag itself survives a round trip.
        let json = serde_json::to_string(&kv).unwrap();
        let back: Layer = serde_json::from_str(&json).unwrap();
        assert_eq!(back, kv);
        let legacy = serde_json::to_string(&plain).unwrap();
        let stripped = legacy.replace(",\"kv\":{\"values\":[false,false,false]}", "");
        let old: Layer = serde_json::from_str(&stripped).unwrap();
        assert_eq!(old, plain);
    }

    #[test]
    #[should_panic(expected = "only W/I")]
    fn kv_cache_rejects_outputs() {
        let _ = Layer::matmul("m", 2, 2, 2, Precision::uniform(8)).with_kv_cache(Operand::O);
    }
}
