//! Im2Col lowering: convolution → matrix-matrix multiplication.
//!
//! The paper's validation chip performs Im2Col on a RISC-V core before the
//! accelerator processes a layer ("unrolling convolution into
//! matrix-matrix-multiplication", Section IV), and "Im2Col layer transfer
//! is applied to all the case studies" (Section V). The lowering maps a
//! convolution with bounds `(B, K, C, OY, OX, FY, FX)` onto a
//! [`LayerType::Matmul`] with
//!
//! - `B' = B * OY * OX` (every output pixel becomes a GEMM row),
//! - `K' = K`,
//! - `C' = C * FY * FX` (the unrolled receptive field),
//!
//! which preserves the MAC count and the weight/output tensor sizes while
//! *duplicating* overlapping input pixels (each input word appears once per
//! filter window covering it).

use crate::{Dim, Layer, LayerType};
use std::error::Error;
use std::fmt;

/// Error returned by [`im2col`] for layers it cannot lower.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Im2ColError {
    /// Depthwise convolutions pair each output channel with one input
    /// channel; a single dense GEMM cannot express that coupling.
    DepthwiseUnsupported {
        /// Name of the offending layer.
        layer: String,
    },
}

impl fmt::Display for Im2ColError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Im2ColError::DepthwiseUnsupported { layer } => {
                write!(
                    f,
                    "cannot lower depthwise layer `{layer}` to a single matmul"
                )
            }
        }
    }
}

impl Error for Im2ColError {}

/// Lowers `layer` to an equivalent [`LayerType::Matmul`] layer via Im2Col.
///
/// Already-matmul-shaped layers ([`LayerType::Dense`], [`LayerType::Matmul`])
/// are relabelled as `Matmul` with unchanged bounds. The lowered layer's
/// name gains an `.im2col` suffix when the bounds actually change.
///
/// # Errors
///
/// Returns [`Im2ColError::DepthwiseUnsupported`] for depthwise layers.
///
/// # Example
///
/// ```
/// use ulm_workload::{im2col, Layer, LayerShape, Precision, Operand, Dim};
///
/// let conv = Layer::conv2d(
///     "c",
///     LayerShape::conv(1, 16, 8, 7, 7, 3, 3),
///     Precision::int8_acc24(),
/// );
/// let mm = im2col(&conv)?;
/// assert_eq!(mm.shape().dim(Dim::B), 7 * 7);
/// assert_eq!(mm.shape().dim(Dim::C), 8 * 3 * 3);
/// assert_eq!(mm.total_macs(), conv.total_macs());
/// assert_eq!(mm.tensor_words(Operand::O), conv.tensor_words(Operand::O));
/// # Ok::<(), ulm_workload::im2col::Im2ColError>(())
/// ```
pub fn im2col(layer: &Layer) -> Result<Layer, Im2ColError> {
    let d = layer.shape().dims();
    match layer.layer_type() {
        LayerType::DepthwiseConv2d => Err(Im2ColError::DepthwiseUnsupported {
            layer: layer.name().to_string(),
        }),
        LayerType::Dense | LayerType::Matmul => Ok(Layer::matmul(
            layer.name().to_string(),
            d[Dim::B],
            d[Dim::K],
            d[Dim::C],
            *layer.precision(),
        )),
        LayerType::Conv2d | LayerType::PointwiseConv2d => {
            let b = d[Dim::B] * d[Dim::OY] * d[Dim::OX];
            let k = d[Dim::K];
            let c = d[Dim::C] * d[Dim::FY] * d[Dim::FX];
            let changed = b != d[Dim::B] || c != d[Dim::C];
            let name = if changed {
                format!("{}.im2col", layer.name())
            } else {
                layer.name().to_string()
            };
            Ok(Layer::matmul(name, b, k, c, *layer.precision()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LayerShape, Operand, Precision};

    #[test]
    fn conv_lowering_preserves_macs_w_and_o() {
        let conv = Layer::conv2d(
            "c",
            LayerShape::conv(2, 16, 8, 5, 5, 3, 3),
            Precision::int8_acc24(),
        );
        let mm = im2col(&conv).unwrap();
        assert_eq!(mm.layer_type(), LayerType::Matmul);
        assert_eq!(mm.total_macs(), conv.total_macs());
        assert_eq!(mm.tensor_words(Operand::W), conv.tensor_words(Operand::W));
        assert_eq!(mm.tensor_words(Operand::O), conv.tensor_words(Operand::O));
        // Inputs are duplicated by the overlapping windows.
        assert!(mm.tensor_words(Operand::I) > conv.tensor_words(Operand::I));
        assert_eq!(mm.tensor_words(Operand::I), 2 * 5 * 5 * 8 * 3 * 3);
        assert!(mm.name().ends_with(".im2col"));
    }

    #[test]
    fn pointwise_lowering_duplicates_nothing() {
        let pw = Layer::new(
            "pw",
            LayerType::PointwiseConv2d,
            LayerShape::conv(1, 32, 16, 7, 7, 1, 1),
            Precision::int8_acc24(),
        );
        let mm = im2col(&pw).unwrap();
        assert_eq!(mm.tensor_words(Operand::I), pw.tensor_words(Operand::I));
        assert_eq!(mm.shape().dim(Dim::B), 49);
        assert_eq!(mm.shape().dim(Dim::C), 16);
    }

    #[test]
    fn matmul_passthrough_keeps_name() {
        let m = Layer::matmul("mm", 4, 8, 16, Precision::uniform(8));
        let out = im2col(&m).unwrap();
        assert_eq!(out.name(), "mm");
        assert_eq!(out.shape().dims(), m.shape().dims());
    }

    #[test]
    fn depthwise_is_rejected() {
        let dw = Layer::new(
            "dw",
            LayerType::DepthwiseConv2d,
            LayerShape::conv(1, 32, 1, 14, 14, 3, 3),
            Precision::int8_acc24(),
        );
        let err = im2col(&dw).unwrap_err();
        assert!(err.to_string().contains("dw"));
    }
}
