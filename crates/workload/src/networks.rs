//! Built-in workloads: the hand-tracking network used for validation and
//! the synthetic layer sweeps of the case studies.
//!
//! The paper validates against "NN layers (with different parameter sizes)
//! of a hand-tracking workload" — the cited reference is an SSD detector on
//! a MobileNet-V1 backbone. The exact per-layer list was not published, so
//! [`handtracking`] reconstructs the standard SSD-MobileNetV1 layer shapes
//! (300x300 input, width multiplier 1.0); this substitution is documented
//! in `DESIGN.md` §4.

use crate::{im2col, Layer, LayerShape, LayerType, Precision};

/// Standard MobileNet-V1 backbone (width multiplier 1.0) for an
/// `input x input` image, as conv / depthwise / pointwise layers.
///
/// # Example
///
/// ```
/// use ulm_workload::networks::mobilenet_v1;
/// let net = mobilenet_v1(224, 1);
/// assert_eq!(net.len(), 1 + 13 * 2);
/// ```
pub fn mobilenet_v1(input: u64, batch: u64) -> Vec<Layer> {
    let p = Precision::int8_acc24();
    let mut layers = Vec::new();
    let mut side = input / 2; // conv1 is stride 2
    layers.push(Layer::conv2d(
        "conv1",
        LayerShape::conv(batch, 32, 3, side, side, 3, 3).with_stride(2, 2),
        p,
    ));
    // (in_ch, out_ch, stride) per depthwise-separable block.
    let blocks: [(u64, u64, u64); 13] = [
        (32, 64, 1),
        (64, 128, 2),
        (128, 128, 1),
        (128, 256, 2),
        (256, 256, 1),
        (256, 512, 2),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 1024, 2),
        (1024, 1024, 1),
    ];
    for (i, &(cin, cout, stride)) in blocks.iter().enumerate() {
        if stride == 2 {
            side = side.div_ceil(2);
        }
        layers.push(Layer::new(
            format!("dw{}", i + 1),
            LayerType::DepthwiseConv2d,
            LayerShape::conv(batch, cin, 1, side, side, 3, 3).with_stride(stride, stride),
            p,
        ));
        layers.push(Layer::new(
            format!("pw{}", i + 1),
            LayerType::PointwiseConv2d,
            LayerShape::conv(batch, cout, cin, side, side, 1, 1),
            p,
        ));
    }
    layers
}

/// The hand-tracking workload: SSD-MobileNetV1 shapes at 300x300 input —
/// backbone plus the SSD extra feature layers and detection heads.
pub fn handtracking() -> Vec<Layer> {
    let p = Precision::int8_acc24();
    let mut layers = mobilenet_v1(300, 1);
    // SSD extra feature layers (standard ssd-mobilenet topology).
    let extras: [(&str, u64, u64, u64, u64, u64); 8] = [
        // (name, k, c, side_out, filter, stride)
        ("ssd_e1a", 256, 1024, 10, 1, 1),
        ("ssd_e1b", 512, 256, 5, 3, 2),
        ("ssd_e2a", 128, 512, 5, 1, 1),
        ("ssd_e2b", 256, 128, 3, 3, 2),
        ("ssd_e3a", 128, 256, 3, 1, 1),
        ("ssd_e3b", 256, 128, 2, 3, 2),
        ("ssd_e4a", 64, 256, 2, 1, 1),
        ("ssd_e4b", 128, 64, 1, 3, 2),
    ];
    for (name, k, c, side, f, s) in extras {
        layers.push(Layer::conv2d(
            name,
            LayerShape::conv(1, k, c, side, side, f, f).with_stride(s, s),
            p,
        ));
    }
    // Detection heads on two largest feature maps (classes + boxes).
    layers.push(Layer::conv2d(
        "head_cls19",
        LayerShape::conv(1, 18, 512, 19, 19, 3, 3),
        p,
    ));
    layers.push(Layer::conv2d(
        "head_box19",
        LayerShape::conv(1, 12, 512, 19, 19, 3, 3),
        p,
    ));
    layers.push(Layer::conv2d(
        "head_cls10",
        LayerShape::conv(1, 36, 1024, 10, 10, 3, 3),
        p,
    ));
    layers.push(Layer::conv2d(
        "head_box10",
        LayerShape::conv(1, 24, 1024, 10, 10, 3, 3),
        p,
    ));
    layers
}

/// A compact, size-diverse subset of [`handtracking`] layers, Im2Col
/// lowered like the validation chip's RISC-V pre-processing (depthwise
/// layers, which the chip's GEMM array does not run natively, excluded).
///
/// Used by the Fig. 5(c) validation experiment: model vs cycle-level
/// simulation on "NN layers of different sizes".
pub fn handtracking_validation_layers() -> Vec<Layer> {
    let picks = [
        "conv1",
        "pw1",
        "pw2",
        "pw4",
        "pw6",
        "pw8",
        "pw11",
        "pw12",
        "pw13",
        "ssd_e1a",
        "ssd_e1b",
        "ssd_e3b",
        "head_cls19",
        "head_cls10",
    ];
    handtracking()
        .iter()
        .filter(|l| picks.contains(&l.name()))
        .map(|l| im2col(l).expect("validation subset excludes depthwise layers"))
        .collect()
}

/// ResNet-18 convolutional layers for an `input x input` image (standard
/// topology; the final dense classifier included, residual adds are free
/// at this abstraction).
pub fn resnet18(input: u64, batch: u64) -> Vec<Layer> {
    let p = Precision::int8_acc24();
    let mut layers = Vec::new();
    let mut side = input / 4; // conv1 stride 2 + maxpool stride 2
    layers.push(Layer::conv2d(
        "conv1",
        LayerShape::conv(batch, 64, 3, input / 2, input / 2, 7, 7).with_stride(2, 2),
        p,
    ));
    // Four stages of two basic blocks each: (channels, downsample?).
    let stages: [(u64, bool); 4] = [(64, false), (128, true), (256, true), (512, true)];
    let mut cin = 64u64;
    for (si, &(ch, down)) in stages.iter().enumerate() {
        for bi in 0..2u64 {
            let stride = if down && bi == 0 { 2 } else { 1 };
            if stride == 2 {
                side = side.div_ceil(2);
            }
            layers.push(Layer::conv2d(
                format!("s{}b{}c1", si + 1, bi + 1),
                LayerShape::conv(batch, ch, cin, side, side, 3, 3).with_stride(stride, stride),
                p,
            ));
            layers.push(Layer::conv2d(
                format!("s{}b{}c2", si + 1, bi + 1),
                LayerShape::conv(batch, ch, ch, side, side, 3, 3),
                p,
            ));
            if cin != ch {
                layers.push(Layer::new(
                    format!("s{}b{}ds", si + 1, bi + 1),
                    LayerType::PointwiseConv2d,
                    LayerShape::conv(batch, ch, cin, side, side, 1, 1),
                    p,
                ));
            }
            cin = ch;
        }
    }
    layers.push(Layer::dense("fc", batch, 1000, 512, p));
    layers
}

/// AlexNet's five convolutions and three dense layers (227x227 input).
pub fn alexnet(batch: u64) -> Vec<Layer> {
    let p = Precision::int8_acc24();
    vec![
        Layer::conv2d(
            "conv1",
            LayerShape::conv(batch, 96, 3, 55, 55, 11, 11).with_stride(4, 4),
            p,
        ),
        Layer::conv2d("conv2", LayerShape::conv(batch, 256, 96, 27, 27, 5, 5), p),
        Layer::conv2d("conv3", LayerShape::conv(batch, 384, 256, 13, 13, 3, 3), p),
        Layer::conv2d("conv4", LayerShape::conv(batch, 384, 384, 13, 13, 3, 3), p),
        Layer::conv2d("conv5", LayerShape::conv(batch, 256, 384, 13, 13, 3, 3), p),
        Layer::dense("fc6", batch, 4096, 9216, p),
        Layer::dense("fc7", batch, 4096, 4096, p),
        Layer::dense("fc8", batch, 1000, 4096, p),
    ]
}

/// Attention prefill preset: one transformer attention block processing
/// a 128-token prompt at `d_model = 256`, 4 query heads (see
/// [`crate::attention::prefill`]). Everything streams from the backing
/// store; nothing is cache-resident.
pub fn attention_prefill() -> Vec<Layer> {
    crate::attention::prefill(128, 256, 4)
}

/// Attention decode preset: one new token attending to a 512-token KV
/// cache at `d_model = 256`, 4 query heads (see
/// [`crate::attention::decode`]). The logit/attend weight operands —
/// the K- and V-caches — are KV-cache resident.
pub fn attention_decode() -> Vec<Layer> {
    crate::attention::decode(512, 256, 4)
}

/// Case-study-2 workload grid: matmul layers `(B, K, C)` over the given
/// per-dimension values (the paper sweeps 8 → 512), at INT8 W/I with
/// 24-bit outputs.
pub fn case2_layers(values: &[u64]) -> Vec<Layer> {
    let p = Precision::int8_out24();
    let mut layers = Vec::new();
    for &b in values {
        for &k in values {
            for &c in values {
                layers.push(Layer::matmul(format!("({b},{k},{c})"), b, k, c, p));
            }
        }
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dim, Operand};

    #[test]
    fn mobilenet_layer_count_and_shapes() {
        let net = mobilenet_v1(224, 1);
        assert_eq!(net.len(), 27);
        // conv1: 224 -> 112 at stride 2.
        assert_eq!(net[0].shape().dim(Dim::OX), 112);
        // Last pointwise has 1024 outputs on a 7x7 map.
        let last = net.last().unwrap();
        assert_eq!(last.shape().dim(Dim::K), 1024);
        assert_eq!(last.shape().dim(Dim::OX), 7);
    }

    #[test]
    fn mobilenet_channel_chaining_is_consistent() {
        let net = mobilenet_v1(224, 1);
        // Each pointwise consumes the channel count its depthwise produced.
        for pair in net[1..].chunks(2) {
            let (dw, pw) = (&pair[0], &pair[1]);
            assert_eq!(dw.layer_type(), LayerType::DepthwiseConv2d);
            assert_eq!(pw.layer_type(), LayerType::PointwiseConv2d);
            assert_eq!(dw.shape().dim(Dim::K), pw.shape().dim(Dim::C));
            assert_eq!(dw.shape().dim(Dim::OX), pw.shape().dim(Dim::OX));
        }
    }

    #[test]
    fn handtracking_includes_ssd_heads() {
        let net = handtracking();
        assert!(net.iter().any(|l| l.name() == "head_cls10"));
        assert!(net.len() > 30);
    }

    #[test]
    fn validation_layers_are_matmuls_of_diverse_size() {
        let layers = handtracking_validation_layers();
        assert!(layers.len() >= 10, "got {}", layers.len());
        assert!(layers.iter().all(|l| l.layer_type() == LayerType::Matmul));
        let macs: Vec<u64> = layers.iter().map(|l| l.total_macs()).collect();
        let min = macs.iter().min().unwrap();
        let max = macs.iter().max().unwrap();
        assert!(
            max / min.max(&1) > 20,
            "sizes should span >20x: min {min}, max {max}"
        );
    }

    #[test]
    fn resnet18_structure() {
        let net = resnet18(224, 1);
        // conv1 + 16 block convs + 3 downsample pointwise + fc.
        assert_eq!(net.len(), 1 + 16 + 3 + 1);
        assert_eq!(net[0].shape().dim(Dim::OX), 112);
        let fc = net.last().unwrap();
        assert_eq!(fc.layer_type(), LayerType::Dense);
        assert_eq!(fc.shape().dim(Dim::K), 1000);
        // Downsample layers appear exactly at stage transitions.
        let ds: Vec<&str> = net
            .iter()
            .filter(|l| l.name().ends_with("ds"))
            .map(|l| l.name())
            .collect();
        assert_eq!(ds, vec!["s2b1ds", "s3b1ds", "s4b1ds"]);
    }

    #[test]
    fn alexnet_mac_count_is_in_the_ballpark() {
        let net = alexnet(1);
        assert_eq!(net.len(), 8);
        let macs: u64 = net.iter().map(|l| l.total_macs()).sum();
        // ~1.1 GMACs for batch 1 (the original's grouped convs modeled
        // dense, as every modern reimplementation does).
        assert!((900_000_000..1_300_000_000).contains(&macs), "{macs}");
    }

    #[test]
    fn attention_presets_have_expected_structure() {
        let pre = attention_prefill();
        assert_eq!(pre.len(), 6);
        assert!(pre.iter().all(|l| !l.has_kv_cache()));
        let dec = attention_decode();
        assert_eq!(dec.len(), 6);
        // Decode marks exactly the logit/attend weights (the KV cache).
        let cached: Vec<&str> = dec
            .iter()
            .filter(|l| l.is_kv_cache(Operand::W))
            .map(|l| l.name())
            .collect();
        assert_eq!(cached, vec!["logit", "attend"]);
        // Decode's query side is a single token.
        assert_eq!(dec[0].shape().dim(Dim::B), 1);
    }

    #[test]
    fn case2_grid_is_full_cross_product() {
        let layers = case2_layers(&[8, 32, 128]);
        assert_eq!(layers.len(), 27);
        let l = &layers[0];
        assert_eq!(l.total_macs(), 8 * 8 * 8);
        // 24-bit outputs per Case 2's discussion.
        assert_eq!(l.tensor_bits(Operand::O), 8 * 8 * 24);
        assert_eq!(l.precision().final_output_bits(), 24);
    }
}
