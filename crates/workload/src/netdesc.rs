//! Network description files: a small JSON schema for user-supplied
//! networks, used by the `ulm` CLI's `--file` options.
//!
//! ```json
//! {
//!   "name": "mynet",
//!   "precision": { "w": 8, "i": 8, "o_partial": 24, "o_final": 8 },
//!   "layers": [
//!     { "kind": "conv2d", "name": "c1", "b": 1, "k": 64, "c": 3,
//!       "oy": 112, "ox": 112, "fy": 7, "fx": 7, "stride": 2 },
//!     { "kind": "depthwise", "name": "dw1", "b": 1, "k": 64,
//!       "oy": 112, "ox": 112, "fy": 3, "fx": 3 },
//!     { "kind": "matmul", "name": "fc", "b": 1, "k": 1000, "c": 2048 }
//!   ]
//! }
//! ```
//!
//! Omitted geometry fields default to 1 (so a `matmul` needs only
//! `b`/`k`/`c`); `stride` and `dilation` default to 1 and apply to both
//! axes.

use crate::{Layer, LayerShape, LayerType, Precision};
use serde::Deserialize;
use std::error::Error;
use std::fmt;

/// Precision block of a network description.
#[derive(Debug, Clone, Copy, Deserialize)]
pub struct PrecisionDesc {
    /// Weight bits.
    pub w: u64,
    /// Input bits.
    pub i: u64,
    /// Partial-sum bits.
    pub o_partial: u64,
    /// Final output bits.
    pub o_final: u64,
}

fn one() -> u64 {
    1
}

/// One layer of a network description.
#[derive(Debug, Clone, Deserialize)]
pub struct LayerDesc {
    /// `conv2d`, `pointwise`, `depthwise`, `dense` or `matmul`.
    pub kind: String,
    /// Layer name.
    pub name: String,
    /// Batch.
    #[serde(default = "one")]
    pub b: u64,
    /// Output channels.
    #[serde(default = "one")]
    pub k: u64,
    /// Input channels.
    #[serde(default = "one")]
    pub c: u64,
    /// Output height.
    #[serde(default = "one")]
    pub oy: u64,
    /// Output width.
    #[serde(default = "one")]
    pub ox: u64,
    /// Filter height.
    #[serde(default = "one")]
    pub fy: u64,
    /// Filter width.
    #[serde(default = "one")]
    pub fx: u64,
    /// Stride (both axes).
    #[serde(default = "one")]
    pub stride: u64,
    /// Dilation (both axes).
    #[serde(default = "one")]
    pub dilation: u64,
    /// KV-cache resident operands (`"w"` and/or `"i"`): already live in
    /// the level below the backing store, never refilled from it within
    /// a decode step. Defaults to none.
    #[serde(default)]
    pub kv: Vec<String>,
}

/// A whole network description.
#[derive(Debug, Clone, Deserialize)]
pub struct NetworkDesc {
    /// Network name.
    pub name: String,
    /// Operand precisions (defaults to INT8 with 24-bit partials).
    pub precision: Option<PrecisionDesc>,
    /// The layers in execution order.
    pub layers: Vec<LayerDesc>,
}

/// Errors from network descriptions.
#[derive(Debug)]
pub enum NetDescError {
    /// The JSON failed to parse.
    Json(serde_json::Error),
    /// A layer kind string is unknown.
    UnknownKind {
        /// The offending layer.
        layer: String,
        /// The unknown kind.
        kind: String,
    },
    /// A `kv` entry names something other than the `w`/`i` operands.
    BadKvOperand {
        /// The offending layer.
        layer: String,
        /// The unknown operand string.
        operand: String,
    },
}

impl fmt::Display for NetDescError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetDescError::Json(e) => write!(f, "invalid network description: {e}"),
            NetDescError::UnknownKind { layer, kind } => write!(
                f,
                "layer `{layer}` has unknown kind `{kind}` \
                 (conv2d|pointwise|depthwise|dense|matmul)"
            ),
            NetDescError::BadKvOperand { layer, operand } => write!(
                f,
                "layer `{layer}` marks unknown operand `{operand}` as KV-cache (w|i)"
            ),
        }
    }
}

impl Error for NetDescError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NetDescError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl NetworkDesc {
    /// Parses a JSON network description.
    ///
    /// # Errors
    ///
    /// Returns [`NetDescError::Json`] on malformed JSON.
    pub fn from_json(s: &str) -> Result<Self, NetDescError> {
        serde_json::from_str(s).map_err(NetDescError::Json)
    }

    /// Instantiates the layers.
    ///
    /// # Errors
    ///
    /// Returns [`NetDescError::UnknownKind`] for unrecognized layer kinds.
    pub fn to_layers(&self) -> Result<Vec<Layer>, NetDescError> {
        let precision = match self.precision {
            Some(p) => Precision::new(p.w, p.i, p.o_partial, p.o_final),
            None => Precision::int8_acc24(),
        };
        self.layers
            .iter()
            .map(|l| {
                let ltype = match l.kind.as_str() {
                    "conv2d" => LayerType::Conv2d,
                    "pointwise" => LayerType::PointwiseConv2d,
                    "depthwise" => LayerType::DepthwiseConv2d,
                    "dense" => LayerType::Dense,
                    "matmul" => LayerType::Matmul,
                    other => {
                        return Err(NetDescError::UnknownKind {
                            layer: l.name.clone(),
                            kind: other.to_string(),
                        })
                    }
                };
                let shape = LayerShape::conv(l.b, l.k, l.c, l.oy, l.ox, l.fy, l.fx)
                    .with_stride(l.stride, l.stride)
                    .with_dilation(l.dilation, l.dilation);
                let mut layer = Layer::new(l.name.clone(), ltype, shape, precision);
                for op in &l.kv {
                    layer = match op.to_ascii_lowercase().as_str() {
                        "w" => layer.with_kv_cache(crate::Operand::W),
                        "i" => layer.with_kv_cache(crate::Operand::I),
                        other => {
                            return Err(NetDescError::BadKvOperand {
                                layer: l.name.clone(),
                                operand: other.to_string(),
                            })
                        }
                    };
                }
                Ok(layer)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Dim, Operand};

    const EXAMPLE: &str = r#"{
        "name": "mini",
        "precision": { "w": 8, "i": 8, "o_partial": 24, "o_final": 8 },
        "layers": [
            { "kind": "conv2d", "name": "c1", "b": 1, "k": 16, "c": 3,
              "oy": 16, "ox": 16, "fy": 3, "fx": 3, "stride": 2 },
            { "kind": "matmul", "name": "fc", "b": 4, "k": 10, "c": 64 }
        ]
    }"#;

    #[test]
    fn example_round_trips() {
        let desc = NetworkDesc::from_json(EXAMPLE).unwrap();
        assert_eq!(desc.name, "mini");
        let layers = desc.to_layers().unwrap();
        assert_eq!(layers.len(), 2);
        assert_eq!(layers[0].shape().dim(Dim::K), 16);
        assert_eq!(layers[0].shape().stride(), (2, 2));
        assert_eq!(layers[1].tensor_words(Operand::W), 10 * 64);
    }

    #[test]
    fn defaults_fill_unit_dims() {
        let desc = NetworkDesc::from_json(
            r#"{ "name": "d", "precision": null,
                 "layers": [ { "kind": "matmul", "name": "m", "b": 2, "k": 3, "c": 4 } ] }"#,
        )
        .unwrap();
        let layers = desc.to_layers().unwrap();
        assert_eq!(layers[0].total_macs(), 24);
        assert_eq!(layers[0].precision().partial_sum_bits(), 24);
    }

    #[test]
    fn unknown_kind_is_reported() {
        let desc = NetworkDesc::from_json(
            r#"{ "name": "d", "precision": null,
                 "layers": [ { "kind": "lstm", "name": "l", "b": 2 } ] }"#,
        )
        .unwrap();
        let err = desc.to_layers().unwrap_err();
        assert!(err.to_string().contains("lstm"), "{err}");
    }

    #[test]
    fn malformed_json_is_reported() {
        assert!(NetworkDesc::from_json("{ not json").is_err());
    }

    #[test]
    fn kv_operands_parse_and_validate() {
        let desc = NetworkDesc::from_json(
            r#"{ "name": "d", "precision": null,
                 "layers": [ { "kind": "matmul", "name": "logit",
                               "b": 4, "k": 128, "c": 16, "kv": ["W"] } ] }"#,
        )
        .unwrap();
        let layers = desc.to_layers().unwrap();
        assert!(layers[0].is_kv_cache(Operand::W));
        assert!(!layers[0].is_kv_cache(Operand::I));

        let bad = NetworkDesc::from_json(
            r#"{ "name": "d", "precision": null,
                 "layers": [ { "kind": "matmul", "name": "m",
                               "b": 2, "k": 3, "c": 4, "kv": ["o"] } ] }"#,
        )
        .unwrap();
        assert!(matches!(
            bad.to_layers().unwrap_err(),
            NetDescError::BadKvOperand { .. }
        ));
    }
}
