//! Attention-block workloads: QKV projections, the logit (`Q·Kᵀ`)
//! matmul and the softmax-weighted value matmul, with
//! sequence-length-dependent dimensions and a KV-cache operand class
//! for decode steps.
//!
//! Every stage is expressed in the 7-dim loop nest as a [`Matmul`]
//! (`B x C . C x K`), so the whole intra-layer machinery — mapping
//! search, lowering, latency/energy/sim — applies unchanged:
//!
//! * projections: `B = seq`, reduction `C = d_model`;
//! * logit `Q·Kᵀ`: query heads folded into `B = heads · seq_q`,
//!   `K = seq_kv` score columns, reduction `C = d_head`; the *weight*
//!   tensor (`K x C = seq_kv x d_head`) **is the K-cache**;
//! * attend `P·V`: `B = heads · seq_q`, `K = d_head` output features,
//!   reduction `C = seq_kv`; the weight tensor is the V-cache.
//!
//! Folding the query heads into `B` models **multi-query attention**
//! (one shared K/V head) exactly — the dominant serving configuration —
//! and is the per-KV-head workload under grouped-query attention. The
//! softmax itself moves no tensor through the memory hierarchy at this
//! abstraction and is modeled as free, like residual adds.
//!
//! [`decode`] marks the logit/attend weight operands as KV-cache
//! resident ([`Layer::with_kv_cache`]): their footprint scales with
//! context length and they are never refilled from the backing store
//! within a decode step.
//!
//! [`Matmul`]: crate::LayerType::Matmul

use crate::{Layer, Operand, Precision};

/// Shape of one attention block: sequence geometry plus head split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct AttentionShape {
    /// Query positions processed this step (`1` for decode).
    pub seq_q: u64,
    /// Key/value positions attended to (the context length).
    pub seq_kv: u64,
    /// Model width (`heads * d_head`).
    pub d_model: u64,
    /// Query heads folded into the batch dimension.
    pub heads: u64,
}

impl AttentionShape {
    /// Head dimension, `d_model / heads`.
    ///
    /// # Panics
    ///
    /// Panics unless `heads` divides `d_model` and all fields are
    /// non-zero.
    pub fn d_head(&self) -> u64 {
        assert!(
            self.seq_q > 0 && self.seq_kv > 0 && self.d_model > 0 && self.heads > 0,
            "attention dims must be non-zero"
        );
        assert!(
            self.d_model.is_multiple_of(self.heads),
            "heads ({}) must divide d_model ({})",
            self.heads,
            self.d_model
        );
        self.d_model / self.heads
    }
}

/// The attention block as a layer sequence:
/// `q_proj, k_proj, v_proj, logit, attend, o_proj`.
///
/// When `kv_resident` is set, the logit/attend weight operands (the K-
/// and V-caches) are marked [`Layer::with_kv_cache`].
pub fn attention_block(
    prefix: &str,
    s: AttentionShape,
    p: Precision,
    kv_resident: bool,
) -> Vec<Layer> {
    let d_head = s.d_head();
    let name = |stage: &str| format!("{prefix}{stage}");
    let kv = |l: Layer| {
        if kv_resident {
            l.with_kv_cache(Operand::W)
        } else {
            l
        }
    };
    vec![
        // Projections of the new tokens. K/V projections produce one
        // shared head (multi-query attention).
        Layer::matmul(name("q_proj"), s.seq_q, s.d_model, s.d_model, p),
        Layer::matmul(name("k_proj"), s.seq_q, d_head, s.d_model, p),
        Layer::matmul(name("v_proj"), s.seq_q, d_head, s.d_model, p),
        // Q·Kᵀ: scores for every (query head x position) row against the
        // seq_kv cached keys. W = K-cache (seq_kv x d_head).
        kv(Layer::matmul(
            name("logit"),
            s.heads * s.seq_q,
            s.seq_kv,
            d_head,
            p,
        )),
        // softmax(S)·V: the attention weights (I) against the cached
        // values. W = V-cache (d_head x seq_kv).
        kv(Layer::matmul(
            name("attend"),
            s.heads * s.seq_q,
            d_head,
            s.seq_kv,
            p,
        )),
        Layer::matmul(name("o_proj"), s.seq_q, s.d_model, s.d_model, p),
    ]
}

/// Prefill: all `seq` positions processed at once (`seq_q = seq_kv =
/// seq`), K/V freshly computed, nothing cache-resident.
pub fn prefill(seq: u64, d_model: u64, heads: u64) -> Vec<Layer> {
    attention_block(
        "",
        AttentionShape {
            seq_q: seq,
            seq_kv: seq,
            d_model,
            heads,
        },
        Precision::int8_acc24(),
        false,
    )
}

/// Decode: one new token (`seq_q = 1`) attending to a `context`-long
/// KV cache; the logit/attend weight operands are KV-cache resident.
pub fn decode(context: u64, d_model: u64, heads: u64) -> Vec<Layer> {
    attention_block(
        "",
        AttentionShape {
            seq_q: 1,
            seq_kv: context,
            d_model,
            heads,
        },
        Precision::int8_acc24(),
        true,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LayerType;

    #[test]
    fn block_macs_match_the_closed_form() {
        let (seq, d_model, heads) = (16, 64, 4);
        let net = prefill(seq, d_model, heads);
        assert_eq!(net.len(), 6);
        assert!(net.iter().all(|l| l.layer_type() == LayerType::Matmul));
        let macs: u64 = net.iter().map(|l| l.total_macs()).sum();
        let d_head = d_model / heads;
        let proj = 2 * seq * d_model * d_model + 2 * seq * d_head * d_model;
        let scores = 2 * heads * seq * seq * d_head;
        assert_eq!(macs, proj + scores);
    }

    #[test]
    fn logit_weight_is_the_k_cache() {
        let net = decode(512, 64, 4);
        let logit = net.iter().find(|l| l.name() == "logit").unwrap();
        // K-cache footprint scales with context length: seq_kv x d_head.
        assert_eq!(logit.tensor_words(Operand::W), 512 * 16);
        assert!(logit.is_kv_cache(Operand::W));
        assert!(!logit.is_kv_cache(Operand::I));
        let attend = net.iter().find(|l| l.name() == "attend").unwrap();
        assert_eq!(attend.tensor_words(Operand::W), 16 * 512);
        assert!(attend.is_kv_cache(Operand::W));
    }

    #[test]
    fn prefill_streams_everything() {
        assert!(prefill(8, 32, 2).iter().all(|l| !l.has_kv_cache()));
    }

    #[test]
    fn logit_output_feeds_attend_input() {
        for net in [prefill(8, 32, 2), decode(128, 32, 2)] {
            let logit = net.iter().find(|l| l.name() == "logit").unwrap();
            let attend = net.iter().find(|l| l.name() == "attend").unwrap();
            assert_eq!(
                logit.tensor_words(Operand::O),
                attend.tensor_words(Operand::I),
                "the score matrix is the fusable intermediate"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn heads_must_divide_d_model() {
        let _ = prefill(8, 30, 4);
    }
}
