//! The workspace-wide error type.
//!
//! Every fallible boundary of the workspace — the CLI subcommands, the
//! `ulm serve` / `ulm batch` NDJSON protocol, the umbrella crate's
//! quickstart — converges on [`UlmError`]: one enum with a `From` impl per
//! domain error, a human-readable `Display`, a `source()` chain, and a
//! **stable machine-readable code** ([`UlmError::code`]) that network
//! clients can match on without parsing prose.
//!
//! Codes are namespaced `domain/kind` (e.g. `mapping/coverage`,
//! `mapper/no-legal-mapping`, `request/invalid`) and are part of the
//! serve-protocol contract: they never change meaning once shipped.
//!
//! ```
//! use ulm_error::UlmError;
//! use ulm_mapper::MapperError;
//!
//! let e: UlmError = MapperError::NoLegalMapping { tried: 42 }.into();
//! assert_eq!(e.code(), "mapper/no-legal-mapping");
//! assert!(e.to_string().contains("42"));
//! ```

use std::fmt;

use ulm_arch::archdesc::ArchDescError;
use ulm_mapper::MapperError;
use ulm_mapping::{FuseError, MappingError};
use ulm_model::{CalibrateError, KnobError, SurrogateError};
use ulm_network::NetworkError;
use ulm_periodic::WindowError;
use ulm_reactor::ReactorError;
use ulm_sim::ScheduleTooLarge;
use ulm_workload::netdesc::NetDescError;

/// How a persisted cache log failed validation. Carried by
/// [`UlmError::CacheCorrupt`]; each kind maps to its own stable code so
/// operators can distinguish "wrong file" from "torn tail".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheCorruptKind {
    /// The file does not start with the cache-log magic — it is not a
    /// cache log (or is from an incompatible future version).
    BadMagic,
    /// A record's checksum did not match its bytes.
    BadChecksum,
    /// The file ended mid-record (torn final write).
    Truncated,
    /// A checksummed record decoded to an unusable payload.
    BadPayload,
}

/// The workspace error: every domain failure, one enum, one stable code.
#[derive(Debug)]
pub enum UlmError {
    /// A mapping failed validation against layer + architecture.
    Mapping(MappingError),
    /// A fused segment failed validation against network + architecture.
    Fuse(FuseError),
    /// The mapping search exhausted its space without a legal mapping.
    Mapper(MapperError),
    /// A whole-network evaluation failed on one of its layers.
    Network(NetworkError),
    /// A periodic window was constructed with impossible parameters.
    Window(WindowError),
    /// The simulator refused to enumerate an impractically large schedule.
    Schedule(ScheduleTooLarge),
    /// An architecture description failed to parse or validate.
    ArchDesc(ArchDescError),
    /// A network description failed to parse or validate.
    NetDesc(NetDescError),
    /// A malformed request reached a service boundary (bad JSON shape,
    /// unknown field value, missing required key).
    InvalidRequest(String),
    /// A request line exceeded the serve tier's length bound and was
    /// discarded without being parsed.
    TooLarge {
        /// The configured bound, in bytes.
        limit: usize,
    },
    /// A connection was rejected because the server is at its
    /// concurrent-connection ceiling.
    OverCapacity {
        /// Connections active when the rejection happened.
        active: usize,
    },
    /// The event-driven serve tier failed (or is unsupported here).
    Reactor(ReactorError),
    /// A persisted cache log failed validation at `offset`.
    CacheCorrupt {
        /// Byte offset where validation stopped trusting the file.
        offset: u64,
        /// What exactly failed.
        kind: CacheCorruptKind,
    },
    /// A knob override (`--set mem.gb.bw=2x` / serve `whatif`) named an
    /// unknown path or memory, or carried an unusable value.
    Knob(KnobError),
    /// Bandwidth calibration could not fit or apply its constants
    /// (bad measurements, unknown port, architecture mismatch).
    Calibrate(CalibrateError),
    /// A specialized surrogate model rejected a query (unsupported layer
    /// shape, bad ordering, infeasible workload dims).
    Surrogate(SurrogateError),
    /// Invalid configuration outside the request path: unknown presets,
    /// bad command-line values, unusable option combinations.
    Config(String),
    /// An I/O failure (reading descriptions, network sockets).
    Io(std::io::Error),
    /// A JSON serialization failure while producing output.
    Json(serde_json::Error),
}

/// The stable code of one fusion-validation failure. Shared between
/// [`UlmError::Fuse`] and fusion errors surfacing through
/// [`UlmError::Network`] so the code is boundary-independent.
fn fuse_code(e: &FuseError) -> &'static str {
    match e {
        FuseError::TooShort { .. } => "fuse/too-short",
        FuseError::UnknownLayer { .. } => "fuse/unknown-layer",
        FuseError::NotConsecutive { .. } => "fuse/not-consecutive",
        FuseError::UnknownMemory { .. } => "fuse/unknown-memory",
        FuseError::ShapeMismatch { .. } => "fuse/shape-mismatch",
        FuseError::NotInChain { .. } => "fuse/not-in-chain",
        FuseError::DoesNotFit { .. } => "fuse/does-not-fit",
    }
}

impl UlmError {
    /// Shorthand for [`UlmError::InvalidRequest`].
    pub fn invalid_request(msg: impl Into<String>) -> Self {
        UlmError::InvalidRequest(msg.into())
    }

    /// Shorthand for [`UlmError::Config`].
    pub fn config(msg: impl Into<String>) -> Self {
        UlmError::Config(msg.into())
    }

    /// The stable machine-readable code, `domain/kind`.
    ///
    /// Codes are a protocol contract: `ulm serve` and `ulm batch` emit
    /// them verbatim in NDJSON error responses, so they are append-only —
    /// existing codes never change meaning.
    pub fn code(&self) -> &'static str {
        match self {
            UlmError::Mapping(e) => match e {
                MappingError::SpatialOverflow { .. } => "mapping/spatial-overflow",
                MappingError::LevelsMismatch { .. } => "mapping/levels-mismatch",
                MappingError::UnallocatedLoops { .. } => "mapping/unallocated-loops",
                MappingError::Coverage { .. } => "mapping/coverage",
                MappingError::CapacityExceeded { .. } => "mapping/capacity-exceeded",
                MappingError::InfeasibleLevel { .. } => "mapping/infeasible-level",
            },
            UlmError::Fuse(e) => fuse_code(e),
            UlmError::Mapper(e) => match e {
                MapperError::NoLegalMapping { .. } => "mapper/no-legal-mapping",
                MapperError::BatchUnsupportedObjective { .. } => {
                    "search/batch-unsupported-objective"
                }
            },
            UlmError::Network(e) => match e {
                NetworkError::LayerUnmappable { .. } => "network/layer-unmappable",
                // Fusion rejections carry the fuse/* code no matter which
                // boundary they crossed to get here.
                NetworkError::BadFusion { source } => fuse_code(source),
            },
            UlmError::Window(e) => match e {
                WindowError::BadPeriod(..) => "window/bad-period",
                WindowError::BadInterval { .. } => "window/bad-interval",
            },
            UlmError::Schedule(_) => "sim/schedule-too-large",
            UlmError::ArchDesc(e) => match e {
                ArchDescError::Json(_) => "arch/bad-json",
                ArchDescError::UnknownToken { .. } => "arch/unknown-token",
                ArchDescError::UnknownMemory { .. } => "arch/unknown-memory",
                ArchDescError::Arch(_) => "arch/invalid",
            },
            UlmError::NetDesc(e) => match e {
                NetDescError::Json(_) => "net/bad-json",
                NetDescError::UnknownKind { .. } => "net/unknown-kind",
                NetDescError::BadKvOperand { .. } => "net/bad-kv-operand",
            },
            UlmError::InvalidRequest(_) => "request/invalid",
            UlmError::TooLarge { .. } => "request/too-large",
            UlmError::OverCapacity { .. } => "serve/over-capacity",
            UlmError::Reactor(ReactorError::Io(_)) => "reactor/io",
            UlmError::Reactor(ReactorError::Unsupported) => "reactor/unsupported",
            UlmError::CacheCorrupt { kind, .. } => match kind {
                CacheCorruptKind::BadMagic => "cache/bad-magic",
                CacheCorruptKind::BadChecksum => "cache/bad-checksum",
                CacheCorruptKind::Truncated => "cache/truncated",
                CacheCorruptKind::BadPayload => "cache/bad-payload",
            },
            UlmError::Knob(e) => match e {
                KnobError::UnknownPath { .. } => "knob/unknown-path",
                KnobError::UnknownMemory { .. } => "knob/unknown-memory",
                KnobError::BadValue { .. } => "knob/bad-value",
                KnobError::InvalidValue { .. } => "knob/invalid-value",
                KnobError::OutOfRange { .. } => "knob/out-of-range",
            },
            UlmError::Calibrate(e) => match e {
                CalibrateError::NoSamples => "calibrate/no-samples",
                CalibrateError::UnknownMemory { .. } => "calibrate/unknown-memory",
                CalibrateError::BadPort { .. } => "calibrate/bad-port",
                CalibrateError::BadCsv { .. } => "calibrate/bad-csv",
                CalibrateError::ArchMismatch { .. } => "calibrate/arch-mismatch",
            },
            UlmError::Surrogate(e) => match e {
                SurrogateError::UnsupportedLayer { .. } => "surrogate/unsupported-layer",
                SurrogateError::BadOrdering { .. } => "surrogate/bad-ordering",
                SurrogateError::InvalidDims { .. } => "surrogate/invalid-dims",
                SurrogateError::Infeasible { .. } => "surrogate/infeasible",
                SurrogateError::InvalidMapping { .. } => "surrogate/invalid-mapping",
            },
            UlmError::Config(_) => "config/invalid",
            UlmError::Io(_) => "io/error",
            UlmError::Json(_) => "json/error",
        }
    }
}

impl fmt::Display for UlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UlmError::Mapping(e) => write!(f, "illegal mapping: {e}"),
            UlmError::Fuse(e) => write!(f, "invalid fused segment: {e}"),
            UlmError::Mapper(e) => e.fmt(f),
            UlmError::Network(e) => e.fmt(f),
            UlmError::Window(e) => e.fmt(f),
            UlmError::Schedule(e) => e.fmt(f),
            UlmError::ArchDesc(e) => e.fmt(f),
            UlmError::NetDesc(e) => e.fmt(f),
            UlmError::InvalidRequest(msg) => f.write_str(msg),
            UlmError::TooLarge { limit } => {
                write!(f, "request line exceeds the {limit}-byte bound")
            }
            UlmError::OverCapacity { active } => {
                write!(f, "server at capacity ({active} connections active)")
            }
            UlmError::Reactor(e) => e.fmt(f),
            UlmError::CacheCorrupt { offset, kind } => {
                let what = match kind {
                    CacheCorruptKind::BadMagic => "not a cache log (bad magic)",
                    CacheCorruptKind::BadChecksum => "record checksum mismatch",
                    CacheCorruptKind::Truncated => "file ends mid-record",
                    CacheCorruptKind::BadPayload => "record payload undecodable",
                };
                write!(f, "cache log corrupt at byte {offset}: {what}")
            }
            UlmError::Knob(e) => write!(f, "invalid knob override: {e}"),
            UlmError::Calibrate(e) => write!(f, "calibration failed: {e}"),
            UlmError::Surrogate(e) => write!(f, "surrogate query rejected: {e}"),
            UlmError::Config(msg) => f.write_str(msg),
            UlmError::Io(e) => e.fmt(f),
            UlmError::Json(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for UlmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UlmError::Mapping(e) => Some(e),
            UlmError::Fuse(e) => Some(e),
            UlmError::Mapper(e) => Some(e),
            UlmError::Network(e) => Some(e),
            UlmError::Window(e) => Some(e),
            UlmError::Schedule(e) => Some(e),
            UlmError::ArchDesc(e) => Some(e),
            UlmError::NetDesc(e) => Some(e),
            UlmError::Io(e) => Some(e),
            UlmError::Json(e) => Some(e),
            UlmError::Reactor(e) => Some(e),
            UlmError::Knob(e) => Some(e),
            UlmError::Calibrate(e) => Some(e),
            UlmError::Surrogate(e) => Some(e),
            UlmError::InvalidRequest(_)
            | UlmError::Config(_)
            | UlmError::TooLarge { .. }
            | UlmError::OverCapacity { .. }
            | UlmError::CacheCorrupt { .. } => None,
        }
    }
}

impl From<ReactorError> for UlmError {
    fn from(e: ReactorError) -> Self {
        UlmError::Reactor(e)
    }
}

impl From<MappingError> for UlmError {
    fn from(e: MappingError) -> Self {
        UlmError::Mapping(e)
    }
}

impl From<FuseError> for UlmError {
    fn from(e: FuseError) -> Self {
        UlmError::Fuse(e)
    }
}

impl From<MapperError> for UlmError {
    fn from(e: MapperError) -> Self {
        UlmError::Mapper(e)
    }
}

impl From<NetworkError> for UlmError {
    fn from(e: NetworkError) -> Self {
        UlmError::Network(e)
    }
}

impl From<WindowError> for UlmError {
    fn from(e: WindowError) -> Self {
        UlmError::Window(e)
    }
}

impl From<ScheduleTooLarge> for UlmError {
    fn from(e: ScheduleTooLarge) -> Self {
        UlmError::Schedule(e)
    }
}

impl From<ArchDescError> for UlmError {
    fn from(e: ArchDescError) -> Self {
        UlmError::ArchDesc(e)
    }
}

impl From<NetDescError> for UlmError {
    fn from(e: NetDescError) -> Self {
        UlmError::NetDesc(e)
    }
}

impl From<std::io::Error> for UlmError {
    fn from(e: std::io::Error) -> Self {
        UlmError::Io(e)
    }
}

impl From<serde_json::Error> for UlmError {
    fn from(e: serde_json::Error) -> Self {
        UlmError::Json(e)
    }
}

impl From<KnobError> for UlmError {
    fn from(e: KnobError) -> Self {
        UlmError::Knob(e)
    }
}

impl From<CalibrateError> for UlmError {
    fn from(e: CalibrateError) -> Self {
        UlmError::Calibrate(e)
    }
}

impl From<SurrogateError> for UlmError {
    fn from(e: SurrogateError) -> Self {
        UlmError::Surrogate(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_namespaced() {
        let cases: Vec<(UlmError, &str)> = vec![
            (
                MappingError::SpatialOverflow {
                    product: 64,
                    macs: 16,
                }
                .into(),
                "mapping/spatial-overflow",
            ),
            (
                MapperError::NoLegalMapping { tried: 3 }.into(),
                "mapper/no-legal-mapping",
            ),
            (
                NetworkError::LayerUnmappable {
                    layer: "l0".into(),
                    source: MapperError::NoLegalMapping { tried: 1 },
                }
                .into(),
                "network/layer-unmappable",
            ),
            (WindowError::BadPeriod(0.0).into(), "window/bad-period"),
            (
                ScheduleTooLarge {
                    transfers: 10,
                    cap: 5,
                }
                .into(),
                "sim/schedule-too-large",
            ),
            (
                UlmError::invalid_request("kind `frobnicate` unknown"),
                "request/invalid",
            ),
            (UlmError::config("unknown arch `x`"), "config/invalid"),
            (UlmError::TooLarge { limit: 1024 }, "request/too-large"),
            (UlmError::OverCapacity { active: 9 }, "serve/over-capacity"),
            (ReactorError::Unsupported.into(), "reactor/unsupported"),
            (
                UlmError::CacheCorrupt {
                    offset: 40,
                    kind: CacheCorruptKind::BadChecksum,
                },
                "cache/bad-checksum",
            ),
            (
                UlmError::CacheCorrupt {
                    offset: 0,
                    kind: CacheCorruptKind::BadMagic,
                },
                "cache/bad-magic",
            ),
            (
                UlmError::CacheCorrupt {
                    offset: 99,
                    kind: CacheCorruptKind::Truncated,
                },
                "cache/truncated",
            ),
            (
                KnobError::UnknownPath {
                    path: "mem.gb.volume".into(),
                }
                .into(),
                "knob/unknown-path",
            ),
            (
                KnobError::UnknownMemory {
                    name: "gbx".into(),
                    known: vec!["GB".into()],
                }
                .into(),
                "knob/unknown-memory",
            ),
            (
                KnobError::BadValue {
                    over: "mem.gb.bw=huge".into(),
                }
                .into(),
                "knob/bad-value",
            ),
            (
                KnobError::InvalidValue {
                    over: "mem.gb.bw=0".into(),
                }
                .into(),
                "knob/invalid-value",
            ),
            (
                KnobError::OutOfRange {
                    over: "mem.gb.size=1e30x".into(),
                }
                .into(),
                "knob/out-of-range",
            ),
            (
                MapperError::BatchUnsupportedObjective {
                    objective: "edp".into(),
                    lanes: 64,
                }
                .into(),
                "search/batch-unsupported-objective",
            ),
            (FuseError::TooShort { len: 1 }.into(), "fuse/too-short"),
            (
                NetworkError::BadFusion {
                    source: FuseError::TooShort { len: 0 },
                }
                .into(),
                "fuse/too-short",
            ),
            (
                FuseError::UnknownLayer { layer: "qk".into() }.into(),
                "fuse/unknown-layer",
            ),
            (
                FuseError::NotConsecutive {
                    producer: "a".into(),
                    consumer: "c".into(),
                }
                .into(),
                "fuse/not-consecutive",
            ),
            (
                FuseError::UnknownMemory { mem: "HBM3".into() }.into(),
                "fuse/unknown-memory",
            ),
            (
                FuseError::ShapeMismatch {
                    producer: "a".into(),
                    consumer: "b".into(),
                    produced: 32,
                    consumed: 64,
                }
                .into(),
                "fuse/shape-mismatch",
            ),
            (
                FuseError::NotInChain {
                    layer: "qk".into(),
                    operand: ulm_workload::Operand::I,
                    mem: "Acc".into(),
                }
                .into(),
                "fuse/not-in-chain",
            ),
            (
                FuseError::DoesNotFit {
                    mem: "LB".into(),
                    needed_bits: 2048,
                    capacity_bits: 1024,
                }
                .into(),
                "fuse/does-not-fit",
            ),
            (CalibrateError::NoSamples.into(), "calibrate/no-samples"),
            (
                CalibrateError::UnknownMemory { mem: "HBM3".into() }.into(),
                "calibrate/unknown-memory",
            ),
            (
                CalibrateError::BadPort {
                    mem: "GB".into(),
                    port: 9,
                }
                .into(),
                "calibrate/bad-port",
            ),
            (
                CalibrateError::BadCsv {
                    line: 3,
                    reason: "expected 7 fields".into(),
                }
                .into(),
                "calibrate/bad-csv",
            ),
            (
                CalibrateError::ArchMismatch {
                    expected: "eyeriss".into(),
                    got: "tpu".into(),
                }
                .into(),
                "calibrate/arch-mismatch",
            ),
            (
                SurrogateError::UnsupportedLayer {
                    layer: "conv".into(),
                }
                .into(),
                "surrogate/unsupported-layer",
            ),
            (
                SurrogateError::BadOrdering {
                    ordering: vec![ulm_workload::Dim::B],
                }
                .into(),
                "surrogate/bad-ordering",
            ),
            (
                SurrogateError::InvalidDims { dims: (0, 1, 1) }.into(),
                "surrogate/invalid-dims",
            ),
            (
                SurrogateError::Infeasible { dims: (1, 2, 3) }.into(),
                "surrogate/infeasible",
            ),
            (
                SurrogateError::InvalidMapping { dims: (4, 5, 6) }.into(),
                "surrogate/invalid-mapping",
            ),
        ];
        for (e, code) in &cases {
            assert_eq!(e.code(), *code);
            assert!(
                code.contains('/'),
                "codes are namespaced domain/kind: {code}"
            );
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn source_chain_reaches_the_domain_error() {
        use std::error::Error as _;
        let e: UlmError = MapperError::NoLegalMapping { tried: 7 }.into();
        assert!(e.source().is_some());
    }
}
