//! Spatial-mapping search: enumerate candidate spatial unrollings for a
//! layer on an array and search jointly over (spatial, temporal) — the
//! outer loop of a ZigZag-style DSE ("for each design point, mapping
//! optimization … is performed", Case study 3).

use crate::{EvaluatedMapping, Mapper, MapperError, MapperOptions, Objective};
use ulm_arch::Architecture;
use ulm_mapping::SpatialUnroll;
use ulm_workload::{Dim, Layer};

/// Options for spatial candidate generation.
#[derive(Debug, Clone, PartialEq)]
pub struct SpatialOptions {
    /// Dimensions allowed to unroll spatially (order matters only for
    /// display). Defaults to `K, B, C` — the GEMM-style axes.
    pub dims: Vec<Dim>,
    /// Minimum fraction of the MAC array a candidate must occupy.
    pub min_utilization: f64,
    /// Maximum number of candidates to keep (best utilization first).
    pub max_candidates: usize,
}

impl Default for SpatialOptions {
    fn default() -> Self {
        Self {
            dims: vec![Dim::K, Dim::B, Dim::C],
            min_utilization: 0.5,
            max_candidates: 24,
        }
    }
}

/// Enumerates spatial unrollings: per allowed dimension a divisor-bounded
/// factor, product within the array size, layer bounds respected,
/// filtered by utilization and sorted best-first.
pub fn spatial_candidates(
    arch: &Architecture,
    layer: &Layer,
    opts: &SpatialOptions,
) -> Vec<SpatialUnroll> {
    let macs = arch.mac_array().num_macs();
    let mut out: Vec<(u64, SpatialUnroll)> = Vec::new();
    // Depth-first over per-dim powers of two (hardware arrays are
    // power-of-two sided; non-power factors rarely map onto them).
    fn rec(
        dims: &[Dim],
        layer: &Layer,
        macs: u64,
        acc: &mut Vec<(Dim, u64)>,
        product: u64,
        out: &mut Vec<(u64, SpatialUnroll)>,
    ) {
        match dims.split_first() {
            None => {
                if product > 1 {
                    out.push((product, SpatialUnroll::new(acc.clone())));
                }
            }
            Some((&d, rest)) => {
                let bound = layer.shape().dim(d);
                let mut f = 1u64;
                while f <= bound.next_power_of_two() && product * f <= macs {
                    acc.push((d, f));
                    rec(rest, layer, macs, acc, product * f, out);
                    acc.pop();
                    f *= 2;
                }
            }
        }
    }
    let mut acc = Vec::new();
    rec(&opts.dims, layer, macs, &mut acc, 1, &mut out);
    out.retain(|(p, _)| (*p as f64 / macs as f64) >= opts.min_utilization);
    out.sort_by_key(|(p, _)| std::cmp::Reverse(*p));
    out.dedup_by(|a, b| a.1 == b.1);
    out.into_iter()
        .take(opts.max_candidates)
        .map(|(_, s)| s)
        .collect()
}

/// Searches jointly over spatial candidates and temporal orderings;
/// returns the best mapping and the spatial unrolling it uses.
///
/// # Errors
///
/// Returns [`MapperError::NoLegalMapping`] if no candidate yields a legal
/// mapping.
pub fn search_spatial(
    arch: &Architecture,
    layer: &Layer,
    spatial_opts: &SpatialOptions,
    mapper_opts: MapperOptions,
    obj: Objective,
) -> Result<(SpatialUnroll, EvaluatedMapping), MapperError> {
    search_spatial_with(arch, layer, spatial_opts, mapper_opts, obj, None)
}

/// [`search_spatial`] with an explicit SoA lane count for each inner
/// temporal search (see [`Mapper::with_batch_lanes`]).
pub fn search_spatial_with(
    arch: &Architecture,
    layer: &Layer,
    spatial_opts: &SpatialOptions,
    mapper_opts: MapperOptions,
    obj: Objective,
    batch_lanes: Option<usize>,
) -> Result<(SpatialUnroll, EvaluatedMapping), MapperError> {
    let candidates = spatial_candidates(arch, layer, spatial_opts);
    let mut tried = 0usize;
    let mut best: Option<(SpatialUnroll, EvaluatedMapping)> = None;
    for spatial in candidates {
        let mapper = Mapper::new(arch, layer, spatial.clone())
            .with_options(mapper_opts)
            .with_batch_lanes(batch_lanes);
        match mapper.search(obj) {
            Ok(r) => {
                tried += r.stats.generated;
                let better = best
                    .as_ref()
                    .map(|(_, b)| r.best.score(obj) < b.score(obj))
                    .unwrap_or(true);
                if better {
                    best = Some((spatial, r.best));
                }
            }
            Err(MapperError::NoLegalMapping { tried: t }) => tried += t,
            // Lane/objective conflicts hold for every candidate: abort.
            Err(e @ MapperError::BatchUnsupportedObjective { .. }) => return Err(e),
        }
    }
    best.ok_or(MapperError::NoLegalMapping { tried })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_workload::Precision;

    #[test]
    fn candidates_respect_array_and_layer_bounds() {
        let arch = presets::case_study_chip(128);
        let layer = Layer::matmul("l", 32, 64, 128, Precision::int8_acc24());
        let cands = spatial_candidates(&arch, &layer, &SpatialOptions::default());
        assert!(!cands.is_empty());
        for s in &cands {
            assert!(s.product() <= 256, "{s}");
            assert!(s.utilization(256) >= 0.5, "{s}");
            // No dim unrolled beyond its (power-of-two-rounded) bound.
            assert!(s.extent(Dim::B) <= 32);
            assert!(s.extent(Dim::K) <= 64);
            assert!(s.extent(Dim::C) <= 128);
        }
        // Best-utilization candidates first.
        assert!(cands[0].product() >= cands.last().unwrap().product());
    }

    #[test]
    fn small_layers_still_get_candidates() {
        // K=8 cannot fill a 256-MAC array alone; B and C must help, and
        // the utilization floor adapts to what is achievable.
        let arch = presets::case_study_chip(128);
        let layer = Layer::matmul("s", 64, 8, 64, Precision::int8_acc24());
        let cands = spatial_candidates(&arch, &layer, &SpatialOptions::default());
        assert!(!cands.is_empty());
        assert!(cands[0].product() == 256, "{}", cands[0]);
    }

    #[test]
    fn joint_search_beats_or_matches_the_fixed_preset_spatial() {
        let arch = presets::case_study_chip(128);
        let layer = Layer::matmul("j", 128, 128, 8, Precision::int8_out24());
        let opts = MapperOptions {
            max_exhaustive: 500,
            samples: 40,
            ..MapperOptions::default()
        };
        let fixed = Mapper::new(
            &arch,
            &layer,
            SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]),
        )
        .with_options(opts)
        .search(Objective::Latency)
        .unwrap();
        let (spatial, joint) = search_spatial(
            &arch,
            &layer,
            &SpatialOptions::default(),
            opts,
            Objective::Latency,
        )
        .unwrap();
        assert!(
            joint.latency.cc_total <= fixed.best.latency.cc_total + 1e-9,
            "joint {} (spatial {spatial}) lost to fixed {}",
            joint.latency.cc_total,
            fixed.best.latency.cc_total
        );
    }

    #[test]
    fn no_candidate_means_clean_error() {
        // A 1x1x1 layer cannot occupy >= 50% of a 256-MAC array.
        let arch = presets::case_study_chip(128);
        let layer = Layer::matmul("t", 1, 1, 1, Precision::int8_acc24());
        let r = search_spatial(
            &arch,
            &layer,
            &SpatialOptions::default(),
            MapperOptions::default(),
            Objective::Latency,
        );
        assert!(matches!(r, Err(MapperError::NoLegalMapping { .. })));
    }
}
