//! Enumeration and sampling of temporal loop orderings.

use crate::factorize::Factor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Calls `visit` for every distinct ordering of the factor multiset
/// (innermost factor first), until `visit` returns `false` or all
/// orderings are exhausted. Returns the number of orderings visited.
///
/// Identical factors (same dimension, same prime) are interchangeable and
/// generate a single ordering, so the visit count equals
/// [`ordering_count`](crate::factorize::ordering_count) when not stopped
/// early.
pub fn for_each_ordering(factors: &[Factor], mut visit: impl FnMut(&[Factor]) -> bool) -> u64 {
    let mut counts: BTreeMap<Factor, usize> = BTreeMap::new();
    for &f in factors {
        *counts.entry(f).or_insert(0) += 1;
    }
    let mut items: Vec<(Factor, usize)> = counts.into_iter().collect();
    let mut current = Vec::with_capacity(factors.len());
    let mut visited = 0u64;
    fn rec(
        items: &mut [(Factor, usize)],
        current: &mut Vec<Factor>,
        remaining: usize,
        visited: &mut u64,
        visit: &mut impl FnMut(&[Factor]) -> bool,
    ) -> bool {
        if remaining == 0 {
            *visited += 1;
            return visit(current);
        }
        for i in 0..items.len() {
            if items[i].1 == 0 {
                continue;
            }
            items[i].1 -= 1;
            current.push(items[i].0);
            let keep_going = rec(items, current, remaining - 1, visited, visit);
            current.pop();
            items[i].1 += 1;
            if !keep_going {
                return false;
            }
        }
        true
    }
    rec(
        &mut items,
        &mut current,
        factors.len(),
        &mut visited,
        &mut visit,
    );
    visited
}

/// Canonical "grouped" orderings: for every permutation of the distinct
/// dimensions present, all of a dimension's factors appear consecutively
/// (innermost group first). These are the classic stationary dataflows —
/// e.g. `C… B… K…` is output-stationary, `B… C… K…` is weight-stationary —
/// and seed the search when the full space is too large to enumerate.
pub fn seeded_orderings(factors: &[Factor]) -> Vec<Vec<Factor>> {
    let mut dims: Vec<ulm_workload::Dim> = Vec::new();
    for &(d, _) in factors {
        if !dims.contains(&d) {
            dims.push(d);
        }
    }
    let mut out = Vec::new();
    let mut perm = dims.clone();
    permute(&mut perm, 0, &mut |order: &[ulm_workload::Dim]| {
        let mut seq = Vec::with_capacity(factors.len());
        for &d in order {
            for &(fd, p) in factors {
                if fd == d {
                    seq.push((fd, p));
                }
            }
        }
        out.push(seq);
    });
    out
}

fn permute<T: Copy>(items: &mut [T], k: usize, visit: &mut impl FnMut(&[T])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

/// Draws `n` uniformly shuffled orderings of the factor multiset
/// (duplicates possible), deterministically from `seed`.
pub fn sample_orderings(factors: &[Factor], n: usize, seed: u64) -> Vec<Vec<Factor>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut v = factors.to_vec();
            v.shuffle(&mut rng);
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorize::ordering_count;
    use ulm_workload::Dim;

    #[test]
    fn enumeration_matches_count() {
        let f = vec![(Dim::B, 2), (Dim::B, 2), (Dim::K, 3), (Dim::C, 5)];
        let expected = ordering_count(&f) as u64;
        let mut seen = std::collections::HashSet::new();
        let visited = for_each_ordering(&f, |ord| {
            seen.insert(ord.to_vec());
            true
        });
        assert_eq!(visited, expected); // 4!/2! = 12
        assert_eq!(seen.len() as u64, expected); // all distinct
    }

    #[test]
    fn early_stop_respected() {
        let f = vec![(Dim::B, 2), (Dim::K, 3), (Dim::C, 5)];
        let mut n = 0;
        let visited = for_each_ordering(&f, |_| {
            n += 1;
            n < 2
        });
        assert_eq!(visited, 2);
    }

    #[test]
    fn empty_multiset_visits_once() {
        let visited = for_each_ordering(&[], |ord| {
            assert!(ord.is_empty());
            true
        });
        assert_eq!(visited, 1);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let f = vec![(Dim::B, 2), (Dim::K, 3), (Dim::C, 5), (Dim::C, 2)];
        let a = sample_orderings(&f, 5, 42);
        let b = sample_orderings(&f, 5, 42);
        assert_eq!(a, b);
        let c = sample_orderings(&f, 5, 43);
        assert_ne!(a, c);
        // Every sample is a permutation of the input multiset.
        for s in &a {
            let mut x = s.clone();
            let mut y = f.clone();
            x.sort();
            y.sort();
            assert_eq!(x, y);
        }
    }
}
