//! Enumeration and sampling of temporal loop orderings.

use crate::factorize::Factor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Calls `visit` for every distinct ordering of the factor multiset
/// (innermost factor first), until `visit` returns `false` or all
/// orderings are exhausted. Returns the number of orderings visited.
///
/// Identical factors (same dimension, same prime) are interchangeable and
/// generate a single ordering, so the visit count equals
/// [`ordering_count`](crate::factorize::ordering_count) when not stopped
/// early.
pub fn for_each_ordering(factors: &[Factor], mut visit: impl FnMut(&[Factor]) -> bool) -> u64 {
    let mut counts: BTreeMap<Factor, usize> = BTreeMap::new();
    for &f in factors {
        *counts.entry(f).or_insert(0) += 1;
    }
    let mut items: Vec<(Factor, usize)> = counts.into_iter().collect();
    let mut current = Vec::with_capacity(factors.len());
    let mut visited = 0u64;
    fn rec(
        items: &mut [(Factor, usize)],
        current: &mut Vec<Factor>,
        remaining: usize,
        visited: &mut u64,
        visit: &mut impl FnMut(&[Factor]) -> bool,
    ) -> bool {
        if remaining == 0 {
            *visited += 1;
            return visit(current);
        }
        for i in 0..items.len() {
            if items[i].1 == 0 {
                continue;
            }
            items[i].1 -= 1;
            current.push(items[i].0);
            let keep_going = rec(items, current, remaining - 1, visited, visit);
            current.pop();
            items[i].1 += 1;
            if !keep_going {
                return false;
            }
        }
        true
    }
    rec(
        &mut items,
        &mut current,
        factors.len(),
        &mut visited,
        &mut visit,
    );
    visited
}

/// Like [`for_each_ordering`], but visits only the orderings with global
/// index in `[start, end)` (the index an ordering has in the full
/// enumeration), skipping whole subtrees outside the range by exact
/// multiset-permutation counting. Concatenating the ranges
/// `[0, a), [a, b), … [_, space_size)` visits every ordering exactly
/// once, in the same order as [`for_each_ordering`] — the property the
/// mapper's intra-design parallel search relies on.
pub fn for_each_ordering_in_range(
    factors: &[Factor],
    start: u128,
    end: u128,
    mut visit: impl FnMut(&[Factor]) -> bool,
) -> u64 {
    let mut counts: BTreeMap<Factor, usize> = BTreeMap::new();
    for &f in factors {
        *counts.entry(f).or_insert(0) += 1;
    }
    let mut items: Vec<(Factor, usize)> = counts.into_iter().collect();
    let total = crate::factorize::ordering_count(factors);
    let mut current = Vec::with_capacity(factors.len());
    let mut visited = 0u64;
    // Whole subtree inside the window: plain enumeration with no index
    // arithmetic. The per-node `sub * c_i / n` u128 division in `rec` is
    // what makes range bookkeeping expensive; once a subtree is known to
    // lie entirely in `[start, end)` none of it is needed.
    fn rec_all(
        items: &mut [(Factor, usize)],
        current: &mut Vec<Factor>,
        remaining: usize,
        visited: &mut u64,
        visit: &mut impl FnMut(&[Factor]) -> bool,
    ) -> bool {
        if remaining == 0 {
            *visited += 1;
            return visit(current);
        }
        for i in 0..items.len() {
            if items[i].1 == 0 {
                continue;
            }
            items[i].1 -= 1;
            current.push(items[i].0);
            let keep_going = rec_all(items, current, remaining - 1, visited, visit);
            current.pop();
            items[i].1 += 1;
            if !keep_going {
                return false;
            }
        }
        true
    }
    #[allow(clippy::too_many_arguments)]
    fn rec(
        items: &mut [(Factor, usize)],
        current: &mut Vec<Factor>,
        remaining: usize,
        // Global index of the first leaf under the current subtree.
        pos: &mut u128,
        // Number of leaves under the current subtree.
        sub: u128,
        start: u128,
        end: u128,
        visited: &mut u64,
        visit: &mut impl FnMut(&[Factor]) -> bool,
    ) -> bool {
        if *pos >= start && *pos + sub <= end {
            let keep_going = rec_all(items, current, remaining, visited, visit);
            *pos += sub;
            return keep_going;
        }
        if remaining == 0 {
            debug_assert!(*pos >= start && *pos < end);
            *pos += 1;
            *visited += 1;
            return visit(current);
        }
        for i in 0..items.len() {
            if items[i].1 == 0 {
                continue;
            }
            // Exact: multinomial(counts - e_i) = multinomial(counts) * c_i / n.
            let child = sub * items[i].1 as u128 / remaining as u128;
            if *pos + child <= start {
                *pos += child;
                continue;
            }
            if *pos >= end {
                return true;
            }
            items[i].1 -= 1;
            current.push(items[i].0);
            let keep_going = rec(
                items,
                current,
                remaining - 1,
                pos,
                child,
                start,
                end,
                visited,
                visit,
            );
            current.pop();
            items[i].1 += 1;
            if !keep_going {
                return false;
            }
        }
        true
    }
    if start < end {
        let mut pos = 0u128;
        rec(
            &mut items,
            &mut current,
            factors.len(),
            &mut pos,
            total,
            start,
            end,
            &mut visited,
            &mut visit,
        );
    }
    visited
}

/// Canonical "grouped" orderings: for every permutation of the distinct
/// dimensions present, all of a dimension's factors appear consecutively
/// (innermost group first). These are the classic stationary dataflows —
/// e.g. `C… B… K…` is output-stationary, `B… C… K…` is weight-stationary —
/// and seed the search when the full space is too large to enumerate.
pub fn seeded_orderings(factors: &[Factor]) -> Vec<Vec<Factor>> {
    let mut dims: Vec<ulm_workload::Dim> = Vec::new();
    for &(d, _) in factors {
        if !dims.contains(&d) {
            dims.push(d);
        }
    }
    let mut out = Vec::new();
    let mut perm = dims.clone();
    permute(&mut perm, 0, &mut |order: &[ulm_workload::Dim]| {
        let mut seq = Vec::with_capacity(factors.len());
        for &d in order {
            for &(fd, p) in factors {
                if fd == d {
                    seq.push((fd, p));
                }
            }
        }
        out.push(seq);
    });
    out
}

fn permute<T: Copy>(items: &mut [T], k: usize, visit: &mut impl FnMut(&[T])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

/// Draws `n` uniformly shuffled orderings of the factor multiset
/// (duplicates possible), deterministically from `seed`.
pub fn sample_orderings(factors: &[Factor], n: usize, seed: u64) -> Vec<Vec<Factor>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut v = factors.to_vec();
            v.shuffle(&mut rng);
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factorize::ordering_count;
    use ulm_workload::Dim;

    #[test]
    fn enumeration_matches_count() {
        let f = vec![(Dim::B, 2), (Dim::B, 2), (Dim::K, 3), (Dim::C, 5)];
        let expected = ordering_count(&f) as u64;
        let mut seen = std::collections::HashSet::new();
        let visited = for_each_ordering(&f, |ord| {
            seen.insert(ord.to_vec());
            true
        });
        assert_eq!(visited, expected); // 4!/2! = 12
        assert_eq!(seen.len() as u64, expected); // all distinct
    }

    #[test]
    fn early_stop_respected() {
        let f = vec![(Dim::B, 2), (Dim::K, 3), (Dim::C, 5)];
        let mut n = 0;
        let visited = for_each_ordering(&f, |_| {
            n += 1;
            n < 2
        });
        assert_eq!(visited, 2);
    }

    #[test]
    fn empty_multiset_visits_once() {
        let visited = for_each_ordering(&[], |ord| {
            assert!(ord.is_empty());
            true
        });
        assert_eq!(visited, 1);
    }

    #[test]
    fn range_concatenation_matches_full_enumeration() {
        let f = vec![
            (Dim::B, 2),
            (Dim::B, 2),
            (Dim::K, 3),
            (Dim::C, 5),
            (Dim::C, 5),
        ];
        let total = ordering_count(&f); // 5!/(2!·2!) = 30
        let mut full = Vec::new();
        for_each_ordering(&f, |ord| {
            full.push(ord.to_vec());
            true
        });
        for splits in [
            vec![0, total],
            vec![0, 7, total],
            vec![0, 1, 2, 29, total],
            vec![0, 10, 10, 20, total],
        ] {
            let mut concat = Vec::new();
            for w in splits.windows(2) {
                let n = for_each_ordering_in_range(&f, w[0], w[1], |ord| {
                    concat.push(ord.to_vec());
                    true
                });
                assert_eq!(n as u128, w[1] - w[0]);
            }
            assert_eq!(concat, full);
        }
    }

    #[test]
    fn range_early_stop_respected() {
        let f = vec![(Dim::B, 2), (Dim::K, 3), (Dim::C, 5)];
        let mut n = 0;
        let visited = for_each_ordering_in_range(&f, 1, 6, |_| {
            n += 1;
            n < 2
        });
        assert_eq!(visited, 2);
    }

    #[test]
    fn empty_range_visits_nothing() {
        let f = vec![(Dim::B, 2), (Dim::K, 3)];
        assert_eq!(for_each_ordering_in_range(&f, 1, 1, |_| true), 0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let f = vec![(Dim::B, 2), (Dim::K, 3), (Dim::C, 5), (Dim::C, 2)];
        let a = sample_orderings(&f, 5, 42);
        let b = sample_orderings(&f, 5, 42);
        assert_eq!(a, b);
        let c = sample_orderings(&f, 5, 43);
        assert_ne!(a, c);
        // Every sample is a permutation of the input multiset.
        for s in &a {
            let mut x = s.clone();
            let mut y = f.clone();
            x.sort();
            y.sort();
            assert_eq!(x, y);
        }
    }
}
