//! ZigZag-style temporal-mapping generation and search.
//!
//! The paper integrates its latency model "with ZigZag, a DNN accelerator
//! architecture-and-mapping DSE framework, to generate various design
//! points" (Section V). This crate is that mapper, built from scratch: it
//! factorizes the layer's loop bounds into prime loop factors, enumerates
//! (or samples, for large spaces) their orderings, allocates each ordering
//! to memory levels greedily, evaluates latency and energy, and returns
//! the best mapping under a chosen objective.
//!
//! # Example
//!
//! ```
//! use ulm_arch::presets;
//! use ulm_mapper::{Mapper, Objective};
//! use ulm_mapping::SpatialUnroll;
//! use ulm_workload::{Layer, Precision};
//!
//! let chip = presets::toy_chip();
//! let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
//! let spatial = SpatialUnroll::new(chip.spatial.clone());
//! let result = Mapper::new(&chip.arch, &layer, spatial)
//!     .search(Objective::Latency)?;
//! assert!(result.stats.evaluated > 0);
//! assert!(result.best.latency.cc_total > 0.0);
//! # Ok::<(), ulm_mapper::MapperError>(())
//! ```

pub mod anneal;
pub mod enumerate;
pub mod factorize;
pub mod spatial_search;

pub use anneal::AnnealOptions;
pub use spatial_search::{search_spatial, search_spatial_with, spatial_candidates, SpatialOptions};

use factorize::{ordering_count, temporal_factors, Factor};
use std::error::Error;
use std::fmt;
use std::time::Instant;
use ulm_arch::Architecture;
use ulm_energy::{EnergyModel, EnergyReport, EnergyScratch};
use ulm_mapping::{LoopStack, MappedLayer, Mapping, OperandAlloc, SpatialUnroll};
use ulm_model::{
    roofline_bound, BatchKernel, LaneOutcome, LatencyModel, LatencyReport, LoweredLayer,
    ModelScratch,
};
use ulm_workload::{DimSizes, Layer, PerOperand};

/// What the search minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Objective {
    /// Total latency in cycles.
    Latency,
    /// Total energy.
    Energy,
    /// Energy-delay product.
    Edp,
}

/// Search configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MapperOptions {
    /// Enumerate exhaustively while the ordering count is at most this.
    pub max_exhaustive: u128,
    /// Random orderings to draw when the space is larger.
    pub samples: usize,
    /// RNG seed for sampling.
    pub seed: u64,
    /// Evaluate latency with the bandwidth-aware model (true) or the
    /// BW-unaware baseline (false) — Case 3 compares both.
    pub bw_aware: bool,
}

impl Default for MapperOptions {
    fn default() -> Self {
        Self {
            max_exhaustive: 50_000,
            samples: 400,
            seed: 0xD1CE,
            bw_aware: true,
        }
    }
}

/// A mapping with its evaluations.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EvaluatedMapping {
    /// The mapping.
    pub mapping: Mapping,
    /// Latency report.
    pub latency: LatencyReport,
    /// Energy report.
    pub energy: EnergyReport,
}

impl EvaluatedMapping {
    /// Score under `obj` (lower is better).
    pub fn score(&self, obj: Objective) -> f64 {
        match obj {
            Objective::Latency => self.latency.cc_total,
            Objective::Energy => self.energy.total_fj,
            Objective::Edp => self.latency.cc_total * self.energy.total_fj,
        }
    }
}

/// Counters shared by every ordering-search surface (mapper, DSE,
/// serve): one definition of what the numbers mean, one serialization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SearchStats {
    /// Orderings generated (legal or not).
    pub generated: usize,
    /// Orderings whose mapping was legal and fully evaluated.
    pub evaluated: usize,
    /// Legal orderings skipped because a cheap lower bound already
    /// matched or exceeded the incumbent (never the eventual best —
    /// pruning preserves the argmin and its tie-break exactly).
    pub pruned: usize,
    /// Per-ordering prefix quantities reused from the previous ordering
    /// instead of recomputed (one per shared inner-prefix factor).
    pub cache_hits: u64,
    /// SoA evaluation lanes per batch on the latency hot path (1 =
    /// scalar path).
    pub batch_lanes: usize,
}

impl SearchStats {
    /// Accumulates `other` into `self`: counters add, `batch_lanes`
    /// keeps the widest batch seen.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.generated += other.generated;
        self.evaluated += other.evaluated;
        self.pruned += other.pruned;
        self.cache_hits += other.cache_hits;
        self.batch_lanes = self.batch_lanes.max(other.batch_lanes);
    }
}

/// Outcome of a mapping search.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SearchResult {
    /// The best legal mapping found.
    pub best: EvaluatedMapping,
    /// Search counters (orderings generated/evaluated/pruned, prefix
    /// reuse, batch width).
    pub stats: SearchStats,
    /// Size of the full ordering space.
    pub space_size: u128,
    /// True when the space was enumerated exhaustively.
    pub exhaustive: bool,
    /// Wall-clock search time in milliseconds.
    pub wall_ms: f64,
}

/// Errors from mapping search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapperError {
    /// No generated ordering produced a legal mapping.
    NoLegalMapping {
        /// Orderings tried.
        tried: usize,
    },
    /// A multi-lane batch was explicitly requested for an objective whose
    /// hot path has no batched kernel (the SoA kernel scores latency
    /// only), so honoring the request silently is impossible.
    BatchUnsupportedObjective {
        /// The requested objective, lowercase (`energy` / `edp`).
        objective: String,
        /// The explicitly requested lane count.
        lanes: usize,
    },
}

impl fmt::Display for MapperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapperError::NoLegalMapping { tried } => {
                write!(f, "no legal mapping found among {tried} orderings")
            }
            MapperError::BatchUnsupportedObjective { objective, lanes } => write!(
                f,
                "batch lanes {lanes} requested, but the batched kernel only scores the \
                 latency objective (not {objective}); drop --batch-lanes or set it to 1"
            ),
        }
    }
}

impl Error for MapperError {}

/// Reusable per-thread state for the allocation-free evaluation path:
/// a mapping shell rebuilt in place per ordering, the memoized prefix
/// extents shared between orderings with a common inner prefix, and the
/// model/energy scratch buffers. Build one with [`Mapper::scratch`].
#[derive(Debug)]
pub struct EvalScratch {
    mapping: Mapping,
    /// The previous ordering, for prefix-sharing detection.
    prev: Vec<Factor>,
    /// `prefix_ext[p]` = spatial extents x the innermost `p` factors of
    /// the current ordering. Entry `0` (spatial alone) never changes.
    prefix_ext: Vec<DimSizes>,
    residency: Vec<u64>,
    model: ModelScratch,
    energy: EnergyScratch,
    cache_hits: u64,
}

impl EvalScratch {
    fn new(spatial: &SpatialUnroll) -> Self {
        Self {
            mapping: Mapping::new(
                spatial.clone(),
                LoopStack::empty(),
                PerOperand::from_fn(|_| OperandAlloc::flat(0)),
            ),
            prev: Vec::new(),
            prefix_ext: vec![spatial.extents()],
            residency: Vec::new(),
            model: ModelScratch::default(),
            energy: EnergyScratch::default(),
            cache_hits: 0,
        }
    }

    /// Updates the memoized prefix extents for `ordering`, reusing every
    /// entry shared with the previous ordering's inner prefix. The
    /// incremental product multiplies the same `u64` factors in the same
    /// innermost-first order as the from-scratch computation, so the
    /// extents are identical (integer arithmetic is exact).
    fn update_prefixes(&mut self, ordering: &[Factor]) {
        let shared = self
            .prev
            .iter()
            .zip(ordering)
            .take_while(|(a, b)| *a == *b)
            .count();
        self.cache_hits += shared as u64;
        self.prefix_ext.truncate(shared + 1);
        for &(d, s) in &ordering[shared..] {
            let mut ext = *self.prefix_ext.last().expect("entry 0 always present");
            ext.multiply(d, s);
            self.prefix_ext.push(ext);
        }
        self.prev.clear();
        self.prev.extend_from_slice(ordering);
    }
}

/// Outcome of one bounded fast evaluation.
enum FastEval {
    /// No legal greedy allocation for this ordering.
    Illegal,
    /// Legal, but a lower bound proved it cannot beat the incumbent.
    Pruned,
    /// Fully evaluated: the objective score (bit-identical to
    /// [`EvaluatedMapping::score`] on the slow path).
    Scored(f64),
}

/// One search chunk's outcome (a contiguous slice of the ordering space
/// or of the sampled candidate list).
#[derive(Default)]
struct ChunkOutcome {
    /// Best `(score, ordering)` in visit order, first-strictly-better.
    best: Option<(f64, Vec<Factor>)>,
    evaluated: usize,
    generated: usize,
    pruned: usize,
    cache_hits: u64,
}

impl ChunkOutcome {
    fn consider(&mut self, score: f64, ordering: &[Factor]) {
        self.evaluated += 1;
        let better = self.best.as_ref().map(|b| score < b.0).unwrap_or(true);
        if better {
            self.best = Some((score, ordering.to_vec()));
        }
    }
}

/// Default SoA lane count for the batched latency hot path; chosen so a
/// batch's lane arrays stay L1-resident while amortizing per-batch
/// overhead. Override with [`Mapper::with_batch_lanes`].
pub const DEFAULT_BATCH_LANES: usize = 64;

/// The mapping-space search driver.
pub struct Mapper<'a> {
    arch: &'a Architecture,
    layer: &'a Layer,
    spatial: SpatialUnroll,
    opts: MapperOptions,
    parallelism: Option<usize>,
    batch_lanes: Option<usize>,
    latency_model: LatencyModel,
    energy_model: EnergyModel,
}

impl<'a> Mapper<'a> {
    /// A mapper with default options and models.
    pub fn new(arch: &'a Architecture, layer: &'a Layer, spatial: SpatialUnroll) -> Self {
        Self {
            arch,
            layer,
            spatial,
            opts: MapperOptions::default(),
            parallelism: None,
            batch_lanes: None,
            latency_model: LatencyModel::new(),
            energy_model: EnergyModel::new(),
        }
    }

    /// Overrides the search options.
    pub fn with_options(mut self, opts: MapperOptions) -> Self {
        self.opts = opts;
        self.latency_model = if opts.bw_aware {
            LatencyModel::new()
        } else {
            LatencyModel::bw_unaware()
        };
        self
    }

    /// Splits one design's ordering search across `threads` worker
    /// threads (`None` or `Some(1)` = serial). The result — best mapping,
    /// score, and tie-break — is identical at every thread count; only
    /// wall time and the `pruned`/`cache_hits` statistics may differ.
    pub fn with_parallelism(mut self, threads: Option<usize>) -> Self {
        self.parallelism = threads;
        self
    }

    /// SoA lanes per batch on the latency hot path: `None` uses
    /// [`DEFAULT_BATCH_LANES`], `Some(1)` forces the scalar path (the
    /// differential oracle the batched kernel is pinned against). The
    /// result is identical at every lane count — batching changes only
    /// throughput, never the argmin, score bits, or statistics.
    pub fn with_batch_lanes(mut self, lanes: Option<usize>) -> Self {
        self.batch_lanes = lanes;
        self
    }

    /// The lane count the latency hot path will actually use for `obj`
    /// (energy-bearing objectives evaluate scalar, lane count 1).
    pub fn effective_batch_lanes(&self, obj: Objective) -> usize {
        match obj {
            Objective::Latency => self.batch_lanes.unwrap_or(DEFAULT_BATCH_LANES).max(1),
            Objective::Energy | Objective::Edp => 1,
        }
    }

    /// Rejects lane requests the hot path cannot honor: an explicit
    /// `--batch-lanes > 1` with an energy-bearing objective used to be
    /// silently downgraded to the scalar path, making the knob a no-op.
    /// The default (`None`) and an explicit `1` still evaluate scalar.
    fn check_batch_lanes(&self, obj: Objective) -> Result<(), MapperError> {
        match (obj, self.batch_lanes) {
            (Objective::Energy | Objective::Edp, Some(lanes)) if lanes > 1 => {
                Err(MapperError::BatchUnsupportedObjective {
                    objective: match obj {
                        Objective::Energy => "energy".into(),
                        _ => "edp".into(),
                    },
                    lanes,
                })
            }
            _ => Ok(()),
        }
    }

    /// The temporal factor multiset for this layer/spatial pair.
    pub fn factors(&self) -> Vec<Factor> {
        temporal_factors(self.layer.shape().dims(), &self.spatial)
    }

    /// Size of the full ordering space.
    pub fn space_size(&self) -> u128 {
        ordering_count(&self.factors())
    }

    /// Builds and evaluates the mapping for one explicit ordering
    /// (innermost factor first). Returns `None` when the ordering has no
    /// legal greedy allocation.
    pub fn evaluate_ordering(&self, ordering: &[Factor]) -> Option<EvaluatedMapping> {
        let stack = LoopStack::from_pairs(ordering);
        let mapping =
            Mapping::with_greedy_alloc(self.arch, self.layer, self.spatial.clone(), stack).ok()?;
        let view = MappedLayer::new(self.layer, self.arch, &mapping).ok()?;
        // One lowering serves both models.
        let lowered = LoweredLayer::build(&view, self.latency_model.dtl_options());
        let latency = self.latency_model.evaluate_lowered(&view, &lowered);
        let energy = self.energy_model.evaluate_lowered(&view, &lowered);
        Some(EvaluatedMapping {
            mapping,
            latency,
            energy,
        })
    }

    /// A fresh scratch arena for
    /// [`evaluate_ordering_fast`](Self::evaluate_ordering_fast), sized to
    /// this mapper's spatial unrolling.
    pub fn scratch(&self) -> EvalScratch {
        EvalScratch::new(&self.spatial)
    }

    /// The fast counterpart of
    /// [`evaluate_ordering`](Self::evaluate_ordering): builds the greedy
    /// allocation in place
    /// inside `scratch` and evaluates only the `obj` score, performing
    /// zero heap allocations in the steady state. The returned score is
    /// bit-identical to `evaluate_ordering(...).score(obj)`; `None`
    /// means no legal greedy allocation (exactly when the slow path
    /// returns `None`).
    pub fn evaluate_ordering_fast(
        &self,
        ordering: &[Factor],
        obj: Objective,
        scratch: &mut EvalScratch,
    ) -> Option<f64> {
        match self.evaluate_ordering_bounded(ordering, obj, None, scratch) {
            FastEval::Illegal => None,
            FastEval::Pruned => unreachable!("no incumbent, nothing to prune against"),
            FastEval::Scored(score) => Some(score),
        }
    }

    /// Fast evaluation with branch-and-bound: when `incumbent` is set and
    /// `obj` is latency, cheap monotone lower bounds (the stall-free
    /// phase floor, and the roofline when the model is bw-aware) skip the
    /// expensive stall evaluation for orderings that provably cannot be
    /// *strictly* better than the incumbent — so pruning can never change
    /// the argmin or the first-strictly-better tie-break.
    fn evaluate_ordering_bounded(
        &self,
        ordering: &[Factor],
        obj: Objective,
        incumbent: Option<f64>,
        scratch: &mut EvalScratch,
    ) -> FastEval {
        scratch.update_prefixes(ordering);
        if !scratch
            .mapping
            .reassign_greedy(self.arch, self.layer, ordering, &scratch.prefix_ext)
        {
            return FastEval::Illegal;
        }
        let Some(view) = MappedLayer::new_fast(
            self.layer,
            self.arch,
            &scratch.mapping,
            &mut scratch.residency,
        ) else {
            return FastEval::Illegal;
        };
        match obj {
            Objective::Latency => {
                if let Some(inc) = incumbent {
                    // Exact bound: cc_total with the stall assumed zero.
                    // SS >= 0 and float addition of non-negatives is
                    // monotone, so floor >= inc implies score >= inc.
                    if self.latency_model.phase_floor(&view) >= inc {
                        return FastEval::Pruned;
                    }
                    // Roofline bound, with a tolerance margin matching
                    // the model's documented roofline slack.
                    if self.opts.bw_aware && roofline_bound(&view) - inc > 1e-6 + 1e-9 * inc.abs() {
                        return FastEval::Pruned;
                    }
                }
                let lat = self.latency_model.evaluate_fast(&view, &mut scratch.model);
                FastEval::Scored(lat.cc_total)
            }
            Objective::Energy => FastEval::Scored(
                self.energy_model
                    .evaluate_total_fast(&view, &mut scratch.energy),
            ),
            Objective::Edp => {
                let lat = self.latency_model.evaluate_fast(&view, &mut scratch.model);
                // The latency pass just lowered the view into
                // `scratch.model`; the energy total reads that same IR
                // instead of lowering a second time.
                let fj = self.energy_model.evaluate_total_lowered(
                    &view,
                    scratch.model.lowered(),
                    &mut scratch.energy,
                );
                FastEval::Scored(lat.cc_total * fj)
            }
        }
    }

    /// Runs the fast evaluator over orderings `[start, end)` of the full
    /// enumeration, keeping the chunk-local first-strictly-better best.
    /// Latency searches with more than one lane run the batched SoA
    /// kernel; the outcome sequence is identical either way.
    fn run_enumerated_chunk(
        &self,
        factors: &[Factor],
        obj: Objective,
        start: u128,
        end: u128,
        lanes: usize,
    ) -> ChunkOutcome {
        let mut out = ChunkOutcome::default();
        if lanes > 1 {
            let mut kernel = BatchKernel::new(
                self.arch,
                self.layer,
                &self.spatial,
                self.latency_model,
                factors,
                lanes,
            );
            enumerate::for_each_ordering_in_range(factors, start, end, |ordering| {
                if kernel.is_full() {
                    Self::drain_batch(&mut kernel, &mut out);
                }
                out.generated += 1;
                kernel.push(ordering);
                true
            });
            Self::drain_batch(&mut kernel, &mut out);
            out.cache_hits = kernel.cache_hits();
            return out;
        }
        let mut scratch = EvalScratch::new(&self.spatial);
        enumerate::for_each_ordering_in_range(factors, start, end, |ordering| {
            out.generated += 1;
            let incumbent = out.best.as_ref().map(|b| b.0);
            match self.evaluate_ordering_bounded(ordering, obj, incumbent, &mut scratch) {
                FastEval::Illegal => {}
                FastEval::Pruned => out.pruned += 1,
                FastEval::Scored(score) => out.consider(score, ordering),
            }
            true
        });
        out.cache_hits = scratch.cache_hits;
        out
    }

    /// Same as [`run_enumerated_chunk`](Self::run_enumerated_chunk) over
    /// a slice of an explicit candidate list.
    fn run_candidate_chunk(
        &self,
        candidates: &[Vec<Factor>],
        obj: Objective,
        lanes: usize,
    ) -> ChunkOutcome {
        let mut out = ChunkOutcome::default();
        if lanes > 1 {
            let factors = self.factors();
            let mut kernel = BatchKernel::new(
                self.arch,
                self.layer,
                &self.spatial,
                self.latency_model,
                &factors,
                lanes,
            );
            for ordering in candidates {
                if kernel.is_full() {
                    Self::drain_batch(&mut kernel, &mut out);
                }
                out.generated += 1;
                kernel.push(ordering);
            }
            Self::drain_batch(&mut kernel, &mut out);
            out.cache_hits = kernel.cache_hits();
            return out;
        }
        let mut scratch = EvalScratch::new(&self.spatial);
        for ordering in candidates {
            out.generated += 1;
            let incumbent = out.best.as_ref().map(|b| b.0);
            match self.evaluate_ordering_bounded(ordering, obj, incumbent, &mut scratch) {
                FastEval::Illegal => {}
                FastEval::Pruned => out.pruned += 1,
                FastEval::Scored(score) => out.consider(score, ordering),
            }
        }
        out.cache_hits = scratch.cache_hits;
        out
    }

    /// Flushes the kernel's filled lanes into the chunk outcome. The
    /// visit callback threads the chunk-local incumbent through every
    /// lane, so prune decisions match the scalar walk exactly.
    fn drain_batch(kernel: &mut BatchKernel<'_>, out: &mut ChunkOutcome) {
        let incumbent = out.best.as_ref().map(|b| b.0);
        kernel.drain(incumbent, |ordering, outcome| {
            match outcome {
                LaneOutcome::Illegal => {}
                LaneOutcome::Pruned => out.pruned += 1,
                LaneOutcome::Scored(score) => out.consider(score, ordering),
            }
            out.best.as_ref().map(|b| b.0)
        });
    }

    /// Searches the mapping space for the minimum-`obj` mapping:
    /// exhaustively when the ordering count is within
    /// [`MapperOptions::max_exhaustive`], by uniform sampling otherwise.
    ///
    /// The hot path is allocation-free (a per-thread [`EvalScratch`] is
    /// reused across orderings), prunes provably-worse orderings with
    /// monotone lower bounds, and — under
    /// [`with_parallelism`](Self::with_parallelism) — splits the ordering
    /// space across threads. All of these preserve the exact result of
    /// the naive serial enumeration: the same best mapping, the same
    /// score bits, the same first-strictly-better tie-break.
    ///
    /// # Errors
    ///
    /// Returns [`MapperError::NoLegalMapping`] if nothing legal was
    /// found, and [`MapperError::BatchUnsupportedObjective`] when an
    /// explicit multi-lane batch was requested for an energy-bearing
    /// objective (whose hot path has no batched kernel).
    pub fn search(&self, obj: Objective) -> Result<SearchResult, MapperError> {
        self.check_batch_lanes(obj)?;
        let t0 = Instant::now();
        let factors = self.factors();
        let space_size = ordering_count(&factors);
        let exhaustive = space_size <= self.opts.max_exhaustive;
        let threads = self.parallelism.unwrap_or(1).max(1);
        let lanes = self.effective_batch_lanes(obj);

        let outcomes: Vec<ChunkOutcome> = if exhaustive {
            // Don't bother spawning for trivially small spaces.
            let threads = if space_size < 256 { 1 } else { threads as u128 };
            if threads <= 1 {
                vec![self.run_enumerated_chunk(&factors, obj, 0, space_size, lanes)]
            } else {
                let per = space_size.div_ceil(threads);
                let ranges: Vec<(u128, u128)> = (0..threads)
                    .map(|t| (per * t, (per * (t + 1)).min(space_size)))
                    .filter(|(a, b)| a < b)
                    .collect();
                let factors = &factors;
                std::thread::scope(|s| {
                    let handles: Vec<_> = ranges
                        .iter()
                        .map(|&(a, b)| {
                            s.spawn(move || self.run_enumerated_chunk(factors, obj, a, b, lanes))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("search worker panicked"))
                        .collect()
                })
            }
        } else {
            // Seed with the canonical stationary dataflows, then sample.
            let mut candidates = enumerate::seeded_orderings(&factors);
            candidates.extend(enumerate::sample_orderings(
                &factors,
                self.opts.samples,
                self.opts.seed,
            ));
            if threads <= 1 || candidates.len() < 32 {
                vec![self.run_candidate_chunk(&candidates, obj, lanes)]
            } else {
                let per = candidates.len().div_ceil(threads);
                std::thread::scope(|s| {
                    let handles: Vec<_> = candidates
                        .chunks(per)
                        .map(|chunk| s.spawn(move || self.run_candidate_chunk(chunk, obj, lanes)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("search worker panicked"))
                        .collect()
                })
            }
        };

        // Deterministic merge: chunks cover contiguous, increasing index
        // ranges, so folding them in order with a strict `<` reproduces
        // the serial first-strictly-better argmin exactly.
        let mut stats = SearchStats {
            batch_lanes: lanes,
            ..SearchStats::default()
        };
        let mut winner: Option<(f64, Vec<Factor>)> = None;
        for out in outcomes {
            stats.generated += out.generated;
            stats.evaluated += out.evaluated;
            stats.pruned += out.pruned;
            stats.cache_hits += out.cache_hits;
            if let Some(b) = out.best {
                let better = winner.as_ref().map(|w| b.0 < w.0).unwrap_or(true);
                if better {
                    winner = Some(b);
                }
            }
        }

        match winner {
            Some((_, ordering)) => {
                let best = self
                    .evaluate_ordering(&ordering)
                    .expect("winning ordering was legal on the fast path");
                Ok(SearchResult {
                    best,
                    stats,
                    space_size,
                    exhaustive,
                    wall_ms: t0.elapsed().as_secs_f64() * 1e3,
                })
            }
            None => Err(MapperError::NoLegalMapping {
                tried: stats.generated,
            }),
        }
    }

    /// The latency-energy Pareto front of the (enumerable) mapping space,
    /// sorted by increasing latency. Case study 1's Mapping A and B are
    /// two points of exactly this front.
    ///
    /// # Errors
    ///
    /// Propagates [`MapperError::NoLegalMapping`] from
    /// [`enumerate_all`](Self::enumerate_all).
    pub fn pareto(&self) -> Result<Vec<EvaluatedMapping>, MapperError> {
        let mut all = self.enumerate_all()?;
        all.sort_by(|a, b| {
            a.latency
                .cc_total
                .total_cmp(&b.latency.cc_total)
                .then(a.energy.total_fj.total_cmp(&b.energy.total_fj))
        });
        let mut front: Vec<EvaluatedMapping> = Vec::new();
        let mut best_energy = f64::INFINITY;
        for em in all {
            if em.energy.total_fj < best_energy {
                best_energy = em.energy.total_fj;
                front.push(em);
            }
        }
        Ok(front)
    }

    /// Evaluates every legal mapping in the (exhaustively enumerable)
    /// space and returns them all — used by studies that plot whole
    /// mapping spaces.
    ///
    /// # Errors
    ///
    /// Returns [`MapperError::NoLegalMapping`] if nothing legal exists
    /// within the first `max_exhaustive` orderings.
    pub fn enumerate_all(&self) -> Result<Vec<EvaluatedMapping>, MapperError> {
        let factors = self.factors();
        let mut out = Vec::new();
        let mut generated = 0usize;
        let cap = self.opts.max_exhaustive;
        enumerate::for_each_ordering(&factors, |ordering| {
            generated += 1;
            if let Some(em) = self.evaluate_ordering(ordering) {
                out.push(em);
            }
            (generated as u128) < cap
        });
        if out.is_empty() {
            Err(MapperError::NoLegalMapping { tried: generated })
        } else {
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_workload::{Dim, Precision};

    fn toy() -> (ulm_arch::presets::PresetChip, Layer) {
        (
            presets::toy_chip(),
            Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24()),
        )
    }

    #[test]
    fn exhaustive_search_finds_best() {
        let (chip, layer) = toy();
        let mapper = Mapper::new(&chip.arch, &layer, SpatialUnroll::new(chip.spatial.clone()));
        // Factors: B2, K2, C2,C2,C2 -> 5!/3! = 20 orderings.
        assert_eq!(mapper.space_size(), 20);
        let r = mapper.search(Objective::Latency).unwrap();
        assert!(r.exhaustive);
        assert_eq!(r.stats.generated, 20);
        assert!(r.stats.evaluated > 0);
        // The best must beat (or tie) every enumerated mapping.
        let all = mapper.enumerate_all().unwrap();
        let min = all
            .iter()
            .map(|em| em.latency.cc_total)
            .fold(f64::INFINITY, f64::min);
        assert!((r.best.latency.cc_total - min).abs() < 1e-9);
    }

    #[test]
    fn seeded_orderings_cover_stationary_dataflows() {
        let f = vec![(Dim::C, 2), (Dim::C, 5), (Dim::B, 2), (Dim::K, 3)];
        let seeds = enumerate::seeded_orderings(&f);
        assert_eq!(seeds.len(), 6); // 3! dim permutations
                                    // Output-stationary ordering (C group innermost) is present.
        assert!(seeds.iter().any(|s| s[0].0 == Dim::C && s[1].0 == Dim::C));
        // Every seed is a permutation of the multiset.
        for s in &seeds {
            let mut a = s.clone();
            let mut b = f.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sampling_used_for_large_spaces() {
        let layer = Layer::matmul("big", 64, 96, 640, Precision::int8_acc24());
        let chip16 = presets::case_study_chip(128);
        let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
        let mapper = Mapper::new(&chip16, &layer, spatial).with_options(MapperOptions {
            max_exhaustive: 100,
            samples: 50,
            ..MapperOptions::default()
        });
        assert!(mapper.space_size() > 100);
        let r = mapper.search(Objective::Latency).unwrap();
        assert!(!r.exhaustive);
        // Seeds (dim permutations) + 50 samples.
        assert!(r.stats.generated <= 50 + 6);
    }

    #[test]
    fn objectives_disagree_when_tradeoffs_exist() {
        let (chip, layer) = toy();
        let mapper = Mapper::new(&chip.arch, &layer, SpatialUnroll::new(chip.spatial.clone()));
        let lat = mapper.search(Objective::Latency).unwrap();
        let en = mapper.search(Objective::Energy).unwrap();
        // The energy-best mapping can never have lower latency than the
        // latency-best one.
        assert!(en.best.latency.cc_total >= lat.best.latency.cc_total - 1e-9);
        assert!(lat.best.energy.total_fj >= en.best.energy.total_fj - 1e-9);
    }

    #[test]
    fn pareto_front_is_monotone_and_dominating() {
        let (chip, layer) = toy();
        let mapper = Mapper::new(&chip.arch, &layer, SpatialUnroll::new(chip.spatial.clone()));
        let front = mapper.pareto().unwrap();
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[1].latency.cc_total >= w[0].latency.cc_total);
            assert!(w[1].energy.total_fj < w[0].energy.total_fj);
        }
        // Every enumerated mapping is dominated by some front point.
        for em in mapper.enumerate_all().unwrap() {
            assert!(front.iter().any(|f| {
                f.latency.cc_total <= em.latency.cc_total + 1e-9
                    && f.energy.total_fj <= em.energy.total_fj + 1e-6
            }));
        }
    }

    #[test]
    fn search_is_deterministic() {
        let (chip, layer) = toy();
        let mapper = Mapper::new(&chip.arch, &layer, SpatialUnroll::new(chip.spatial.clone()));
        let a = mapper.search(Objective::Latency).unwrap();
        let b = mapper.search(Objective::Latency).unwrap();
        assert_eq!(a.best.mapping, b.best.mapping);
    }

    #[test]
    fn explicit_batch_lanes_with_energy_objectives_is_a_typed_error() {
        let (chip, layer) = toy();
        let spatial = SpatialUnroll::new(chip.spatial.clone());
        for obj in [Objective::Energy, Objective::Edp] {
            let err = Mapper::new(&chip.arch, &layer, spatial.clone())
                .with_batch_lanes(Some(8))
                .search(obj)
                .unwrap_err();
            assert!(
                matches!(err, MapperError::BatchUnsupportedObjective { lanes: 8, .. }),
                "{obj:?} with explicit lanes must error, got {err:?}"
            );
        }
        // The default (None) and an explicit 1 still evaluate scalar, and
        // latency keeps batching.
        for lanes in [None, Some(1)] {
            let r = Mapper::new(&chip.arch, &layer, spatial.clone())
                .with_batch_lanes(lanes)
                .search(Objective::Edp)
                .unwrap();
            assert_eq!(r.stats.batch_lanes, 1);
        }
        let r = Mapper::new(&chip.arch, &layer, spatial.clone())
            .with_batch_lanes(Some(8))
            .search(Objective::Latency)
            .unwrap();
        assert_eq!(r.stats.batch_lanes, 8);
    }

    #[test]
    fn edp_between_extremes() {
        let (chip, layer) = toy();
        let mapper = Mapper::new(&chip.arch, &layer, SpatialUnroll::new(chip.spatial.clone()));
        let edp = mapper.search(Objective::Edp).unwrap();
        let lat = mapper.search(Objective::Latency).unwrap();
        let en = mapper.search(Objective::Energy).unwrap();
        let edp_score = edp.best.score(Objective::Edp);
        assert!(edp_score <= lat.best.score(Objective::Edp) + 1e-6);
        assert!(edp_score <= en.best.score(Objective::Edp) + 1e-6);
    }
}
