//! ZigZag-style temporal-mapping generation and search.
//!
//! The paper integrates its latency model "with ZigZag, a DNN accelerator
//! architecture-and-mapping DSE framework, to generate various design
//! points" (Section V). This crate is that mapper, built from scratch: it
//! factorizes the layer's loop bounds into prime loop factors, enumerates
//! (or samples, for large spaces) their orderings, allocates each ordering
//! to memory levels greedily, evaluates latency and energy, and returns
//! the best mapping under a chosen objective.
//!
//! # Example
//!
//! ```
//! use ulm_arch::presets;
//! use ulm_mapper::{Mapper, Objective};
//! use ulm_mapping::SpatialUnroll;
//! use ulm_workload::{Layer, Precision};
//!
//! let chip = presets::toy_chip();
//! let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
//! let spatial = SpatialUnroll::new(chip.spatial.clone());
//! let result = Mapper::new(&chip.arch, &layer, spatial)
//!     .search(Objective::Latency)?;
//! assert!(result.evaluated > 0);
//! assert!(result.best.latency.cc_total > 0.0);
//! # Ok::<(), ulm_mapper::MapperError>(())
//! ```

pub mod anneal;
pub mod enumerate;
pub mod factorize;
pub mod spatial_search;

pub use anneal::AnnealOptions;
pub use spatial_search::{search_spatial, spatial_candidates, SpatialOptions};

use factorize::{ordering_count, temporal_factors, Factor};
use std::error::Error;
use std::fmt;
use ulm_arch::Architecture;
use ulm_energy::{EnergyModel, EnergyReport};
use ulm_mapping::{LoopStack, MappedLayer, Mapping, SpatialUnroll};
use ulm_model::{LatencyModel, LatencyReport};
use ulm_workload::Layer;

/// What the search minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Objective {
    /// Total latency in cycles.
    Latency,
    /// Total energy.
    Energy,
    /// Energy-delay product.
    Edp,
}

/// Search configuration.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MapperOptions {
    /// Enumerate exhaustively while the ordering count is at most this.
    pub max_exhaustive: u128,
    /// Random orderings to draw when the space is larger.
    pub samples: usize,
    /// RNG seed for sampling.
    pub seed: u64,
    /// Evaluate latency with the bandwidth-aware model (true) or the
    /// BW-unaware baseline (false) — Case 3 compares both.
    pub bw_aware: bool,
}

impl Default for MapperOptions {
    fn default() -> Self {
        Self {
            max_exhaustive: 50_000,
            samples: 400,
            seed: 0xD1CE,
            bw_aware: true,
        }
    }
}

/// A mapping with its evaluations.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct EvaluatedMapping {
    /// The mapping.
    pub mapping: Mapping,
    /// Latency report.
    pub latency: LatencyReport,
    /// Energy report.
    pub energy: EnergyReport,
}

impl EvaluatedMapping {
    /// Score under `obj` (lower is better).
    pub fn score(&self, obj: Objective) -> f64 {
        match obj {
            Objective::Latency => self.latency.cc_total,
            Objective::Energy => self.energy.total_fj,
            Objective::Edp => self.latency.cc_total * self.energy.total_fj,
        }
    }
}

/// Outcome of a mapping search.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SearchResult {
    /// The best legal mapping found.
    pub best: EvaluatedMapping,
    /// Orderings whose mapping was legal and evaluated.
    pub evaluated: usize,
    /// Orderings generated (legal or not).
    pub generated: usize,
    /// Size of the full ordering space.
    pub space_size: u128,
    /// True when the space was enumerated exhaustively.
    pub exhaustive: bool,
}

/// Errors from mapping search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapperError {
    /// No generated ordering produced a legal mapping.
    NoLegalMapping {
        /// Orderings tried.
        tried: usize,
    },
}

impl fmt::Display for MapperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapperError::NoLegalMapping { tried } => {
                write!(f, "no legal mapping found among {tried} orderings")
            }
        }
    }
}

impl Error for MapperError {}

/// The mapping-space search driver.
pub struct Mapper<'a> {
    arch: &'a Architecture,
    layer: &'a Layer,
    spatial: SpatialUnroll,
    opts: MapperOptions,
    latency_model: LatencyModel,
    energy_model: EnergyModel,
}

impl<'a> Mapper<'a> {
    /// A mapper with default options and models.
    pub fn new(arch: &'a Architecture, layer: &'a Layer, spatial: SpatialUnroll) -> Self {
        Self {
            arch,
            layer,
            spatial,
            opts: MapperOptions::default(),
            latency_model: LatencyModel::new(),
            energy_model: EnergyModel::new(),
        }
    }

    /// Overrides the search options.
    pub fn with_options(mut self, opts: MapperOptions) -> Self {
        self.opts = opts;
        self.latency_model = if opts.bw_aware {
            LatencyModel::new()
        } else {
            LatencyModel::bw_unaware()
        };
        self
    }

    /// The temporal factor multiset for this layer/spatial pair.
    pub fn factors(&self) -> Vec<Factor> {
        temporal_factors(self.layer.shape().dims(), &self.spatial)
    }

    /// Size of the full ordering space.
    pub fn space_size(&self) -> u128 {
        ordering_count(&self.factors())
    }

    /// Builds and evaluates the mapping for one explicit ordering
    /// (innermost factor first). Returns `None` when the ordering has no
    /// legal greedy allocation.
    pub fn evaluate_ordering(&self, ordering: &[Factor]) -> Option<EvaluatedMapping> {
        let stack = LoopStack::from_pairs(ordering);
        let mapping =
            Mapping::with_greedy_alloc(self.arch, self.layer, self.spatial.clone(), stack).ok()?;
        let view = MappedLayer::new(self.layer, self.arch, &mapping).ok()?;
        let latency = self.latency_model.evaluate(&view);
        let energy = self.energy_model.evaluate(&view);
        Some(EvaluatedMapping {
            mapping,
            latency,
            energy,
        })
    }

    /// Searches the mapping space for the minimum-`obj` mapping:
    /// exhaustively when the ordering count is within
    /// [`MapperOptions::max_exhaustive`], by uniform sampling otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`MapperError::NoLegalMapping`] if nothing legal was found.
    pub fn search(&self, obj: Objective) -> Result<SearchResult, MapperError> {
        let factors = self.factors();
        let space_size = ordering_count(&factors);
        let exhaustive = space_size <= self.opts.max_exhaustive;
        let mut best: Option<EvaluatedMapping> = None;
        let mut evaluated = 0usize;
        let mut generated = 0usize;
        fn consider(em: EvaluatedMapping, obj: Objective, best: &mut Option<EvaluatedMapping>) {
            let better = best
                .as_ref()
                .map(|b| em.score(obj) < b.score(obj))
                .unwrap_or(true);
            if better {
                *best = Some(em);
            }
        }
        if exhaustive {
            enumerate::for_each_ordering(&factors, |ordering| {
                generated += 1;
                if let Some(em) = self.evaluate_ordering(ordering) {
                    evaluated += 1;
                    consider(em, obj, &mut best);
                }
                true
            });
        } else {
            // Seed with the canonical stationary dataflows, then sample.
            let mut candidates = enumerate::seeded_orderings(&factors);
            candidates.extend(enumerate::sample_orderings(
                &factors,
                self.opts.samples,
                self.opts.seed,
            ));
            for ordering in candidates {
                generated += 1;
                if let Some(em) = self.evaluate_ordering(&ordering) {
                    evaluated += 1;
                    consider(em, obj, &mut best);
                }
            }
        }
        match best {
            Some(best) => Ok(SearchResult {
                best,
                evaluated,
                generated,
                space_size,
                exhaustive,
            }),
            None => Err(MapperError::NoLegalMapping { tried: generated }),
        }
    }

    /// The latency-energy Pareto front of the (enumerable) mapping space,
    /// sorted by increasing latency. Case study 1's Mapping A and B are
    /// two points of exactly this front.
    ///
    /// # Errors
    ///
    /// Propagates [`MapperError::NoLegalMapping`] from
    /// [`enumerate_all`](Self::enumerate_all).
    pub fn pareto(&self) -> Result<Vec<EvaluatedMapping>, MapperError> {
        let mut all = self.enumerate_all()?;
        all.sort_by(|a, b| {
            a.latency
                .cc_total
                .partial_cmp(&b.latency.cc_total)
                .expect("finite latency")
                .then(
                    a.energy
                        .total_fj
                        .partial_cmp(&b.energy.total_fj)
                        .expect("finite energy"),
                )
        });
        let mut front: Vec<EvaluatedMapping> = Vec::new();
        let mut best_energy = f64::INFINITY;
        for em in all {
            if em.energy.total_fj < best_energy {
                best_energy = em.energy.total_fj;
                front.push(em);
            }
        }
        Ok(front)
    }

    /// Evaluates every legal mapping in the (exhaustively enumerable)
    /// space and returns them all — used by studies that plot whole
    /// mapping spaces.
    ///
    /// # Errors
    ///
    /// Returns [`MapperError::NoLegalMapping`] if nothing legal exists
    /// within the first `max_exhaustive` orderings.
    pub fn enumerate_all(&self) -> Result<Vec<EvaluatedMapping>, MapperError> {
        let factors = self.factors();
        let mut out = Vec::new();
        let mut generated = 0usize;
        let cap = self.opts.max_exhaustive;
        enumerate::for_each_ordering(&factors, |ordering| {
            generated += 1;
            if let Some(em) = self.evaluate_ordering(ordering) {
                out.push(em);
            }
            (generated as u128) < cap
        });
        if out.is_empty() {
            Err(MapperError::NoLegalMapping { tried: generated })
        } else {
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_workload::{Dim, Precision};

    fn toy() -> (ulm_arch::presets::PresetChip, Layer) {
        (
            presets::toy_chip(),
            Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24()),
        )
    }

    #[test]
    fn exhaustive_search_finds_best() {
        let (chip, layer) = toy();
        let mapper = Mapper::new(&chip.arch, &layer, SpatialUnroll::new(chip.spatial.clone()));
        // Factors: B2, K2, C2,C2,C2 -> 5!/3! = 20 orderings.
        assert_eq!(mapper.space_size(), 20);
        let r = mapper.search(Objective::Latency).unwrap();
        assert!(r.exhaustive);
        assert_eq!(r.generated, 20);
        assert!(r.evaluated > 0);
        // The best must beat (or tie) every enumerated mapping.
        let all = mapper.enumerate_all().unwrap();
        let min = all
            .iter()
            .map(|em| em.latency.cc_total)
            .fold(f64::INFINITY, f64::min);
        assert!((r.best.latency.cc_total - min).abs() < 1e-9);
    }

    #[test]
    fn seeded_orderings_cover_stationary_dataflows() {
        let f = vec![(Dim::C, 2), (Dim::C, 5), (Dim::B, 2), (Dim::K, 3)];
        let seeds = enumerate::seeded_orderings(&f);
        assert_eq!(seeds.len(), 6); // 3! dim permutations
                                    // Output-stationary ordering (C group innermost) is present.
        assert!(seeds.iter().any(|s| s[0].0 == Dim::C && s[1].0 == Dim::C));
        // Every seed is a permutation of the multiset.
        for s in &seeds {
            let mut a = s.clone();
            let mut b = f.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sampling_used_for_large_spaces() {
        let layer = Layer::matmul("big", 64, 96, 640, Precision::int8_acc24());
        let chip16 = presets::case_study_chip(128);
        let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
        let mapper = Mapper::new(&chip16, &layer, spatial).with_options(MapperOptions {
            max_exhaustive: 100,
            samples: 50,
            ..MapperOptions::default()
        });
        assert!(mapper.space_size() > 100);
        let r = mapper.search(Objective::Latency).unwrap();
        assert!(!r.exhaustive);
        // Seeds (dim permutations) + 50 samples.
        assert!(r.generated <= 50 + 6);
    }

    #[test]
    fn objectives_disagree_when_tradeoffs_exist() {
        let (chip, layer) = toy();
        let mapper = Mapper::new(&chip.arch, &layer, SpatialUnroll::new(chip.spatial.clone()));
        let lat = mapper.search(Objective::Latency).unwrap();
        let en = mapper.search(Objective::Energy).unwrap();
        // The energy-best mapping can never have lower latency than the
        // latency-best one.
        assert!(en.best.latency.cc_total >= lat.best.latency.cc_total - 1e-9);
        assert!(lat.best.energy.total_fj >= en.best.energy.total_fj - 1e-9);
    }

    #[test]
    fn pareto_front_is_monotone_and_dominating() {
        let (chip, layer) = toy();
        let mapper = Mapper::new(&chip.arch, &layer, SpatialUnroll::new(chip.spatial.clone()));
        let front = mapper.pareto().unwrap();
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[1].latency.cc_total >= w[0].latency.cc_total);
            assert!(w[1].energy.total_fj < w[0].energy.total_fj);
        }
        // Every enumerated mapping is dominated by some front point.
        for em in mapper.enumerate_all().unwrap() {
            assert!(front.iter().any(|f| {
                f.latency.cc_total <= em.latency.cc_total + 1e-9
                    && f.energy.total_fj <= em.energy.total_fj + 1e-6
            }));
        }
    }

    #[test]
    fn search_is_deterministic() {
        let (chip, layer) = toy();
        let mapper = Mapper::new(&chip.arch, &layer, SpatialUnroll::new(chip.spatial.clone()));
        let a = mapper.search(Objective::Latency).unwrap();
        let b = mapper.search(Objective::Latency).unwrap();
        assert_eq!(a.best.mapping, b.best.mapping);
    }

    #[test]
    fn edp_between_extremes() {
        let (chip, layer) = toy();
        let mapper = Mapper::new(&chip.arch, &layer, SpatialUnroll::new(chip.spatial.clone()));
        let edp = mapper.search(Objective::Edp).unwrap();
        let lat = mapper.search(Objective::Latency).unwrap();
        let en = mapper.search(Objective::Energy).unwrap();
        let edp_score = edp.best.score(Objective::Edp);
        assert!(edp_score <= lat.best.score(Objective::Edp) + 1e-6);
        assert!(edp_score <= en.best.score(Objective::Edp) + 1e-6);
    }
}
