//! Prime factorization of loop bounds into orderable loop factors.

use ulm_workload::Dim;

/// Prime factorization of `n`, smallest factor first. `factorize(1)` is
/// empty.
///
/// # Example
///
/// ```
/// use ulm_mapper::factorize::factorize;
/// assert_eq!(factorize(12), vec![2, 2, 3]);
/// assert_eq!(factorize(1), Vec::<u64>::new());
/// assert_eq!(factorize(97), vec![97]);
/// ```
pub fn factorize(mut n: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut p = 2u64;
    while p * p <= n {
        while n.is_multiple_of(p) {
            out.push(p);
            n /= p;
        }
        p += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// One temporal loop factor awaiting ordering: a prime iteration count
/// along one dimension.
pub type Factor = (Dim, u64);

/// The multiset of temporal loop factors a layer needs on top of a given
/// spatial unrolling: for each dimension, the prime factors of
/// `ceil(bound / spatial_extent)`.
pub fn temporal_factors(
    dims: &ulm_workload::DimSizes,
    spatial: &ulm_mapping::SpatialUnroll,
) -> Vec<Factor> {
    let mut out = Vec::new();
    for (dim, bound) in dims.iter() {
        let needed = bound.div_ceil(spatial.extent(dim));
        for p in factorize(needed) {
            out.push((dim, p));
        }
    }
    out
}

/// Number of distinct orderings of the factor multiset:
/// `n! / Π (multiplicity!)`, saturating at `u128::MAX`.
pub fn ordering_count(factors: &[Factor]) -> u128 {
    use std::collections::HashMap;
    let mut counts: HashMap<Factor, u128> = HashMap::new();
    for &f in factors {
        *counts.entry(f).or_insert(0) += 1;
    }
    let mut numer: u128 = 1;
    for i in 1..=(factors.len() as u128) {
        numer = numer.saturating_mul(i);
    }
    if numer == u128::MAX {
        return u128::MAX;
    }
    let mut denom: u128 = 1;
    for &c in counts.values() {
        for i in 1..=c {
            denom = denom.saturating_mul(i);
        }
    }
    numer / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_mapping::SpatialUnroll;
    use ulm_workload::DimSizes;

    #[test]
    fn factorize_basics() {
        assert_eq!(factorize(360), vec![2, 2, 2, 3, 3, 5]);
        assert_eq!(factorize(2), vec![2]);
        assert_eq!(factorize(1), Vec::<u64>::new());
    }

    #[test]
    fn temporal_factors_respect_spatial() {
        // B=64, K=96, C=640 over spatial K16|B8|C2 -> temporal 8, 6, 320.
        let dims = DimSizes::new(64, 96, 640, 1, 1, 1, 1);
        let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
        let f = temporal_factors(&dims, &spatial);
        let prod_b: u64 = f
            .iter()
            .filter(|(d, _)| *d == Dim::B)
            .map(|(_, p)| p)
            .product();
        let prod_k: u64 = f
            .iter()
            .filter(|(d, _)| *d == Dim::K)
            .map(|(_, p)| p)
            .product();
        let prod_c: u64 = f
            .iter()
            .filter(|(d, _)| *d == Dim::C)
            .map(|(_, p)| p)
            .product();
        assert_eq!((prod_b, prod_k, prod_c), (8, 6, 320));
    }

    #[test]
    fn ceil_division_pads() {
        // B=10 over spatial B8 -> ceil = 2 (one padded iteration).
        let dims = DimSizes::new(10, 1, 1, 1, 1, 1, 1);
        let spatial = SpatialUnroll::new(vec![(Dim::B, 8)]);
        let f = temporal_factors(&dims, &spatial);
        assert_eq!(f, vec![(Dim::B, 2)]);
    }

    #[test]
    fn ordering_count_matches_multiset_formula() {
        // [2_B, 2_B, 3_K]: 3!/2! = 3 orderings.
        let f = vec![(Dim::B, 2), (Dim::B, 2), (Dim::K, 3)];
        assert_eq!(ordering_count(&f), 3);
        // Empty multiset: exactly one (empty) ordering.
        assert_eq!(ordering_count(&[]), 1);
    }
}
