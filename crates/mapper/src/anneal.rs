//! Simulated-annealing refinement of loop orderings, for mapping spaces
//! far too large to enumerate: start from the best canonical seed, swap
//! random factor positions, and accept uphill moves with a decaying
//! temperature. Deterministic for a fixed seed.

use crate::enumerate::seeded_orderings;
use crate::factorize::Factor;
use crate::{EvaluatedMapping, Mapper, MapperError, Objective};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealOptions {
    /// Neighbor evaluations.
    pub iterations: usize,
    /// Initial acceptance temperature as a fraction of the starting score
    /// (an uphill move of `t0 x score` is accepted with probability 1/e).
    pub t0: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        Self {
            iterations: 400,
            t0: 0.05,
            seed: 0xA11EA1,
        }
    }
}

impl<'a> Mapper<'a> {
    /// Anneals the loop ordering under `obj`, starting from the best
    /// canonical seed ordering, and returns the best mapping visited.
    ///
    /// # Errors
    ///
    /// Returns [`MapperError::NoLegalMapping`] when neither the seeds nor
    /// any visited neighbor is legal.
    pub fn search_annealed(
        &self,
        obj: Objective,
        opts: AnnealOptions,
    ) -> Result<EvaluatedMapping, MapperError> {
        let factors = self.factors();
        let mut tried = 0usize;

        // Start from the best seed.
        let mut current_order: Option<(Vec<Factor>, EvaluatedMapping)> = None;
        for seed in seeded_orderings(&factors) {
            tried += 1;
            if let Some(em) = self.evaluate_ordering(&seed) {
                let better = current_order
                    .as_ref()
                    .map(|(_, b)| em.score(obj) < b.score(obj))
                    .unwrap_or(true);
                if better {
                    current_order = Some((seed, em));
                }
            }
        }
        let (mut order, mut current) = match current_order {
            Some(x) => x,
            None => {
                // Fall back to the identity ordering.
                tried += 1;
                match self.evaluate_ordering(&factors) {
                    Some(em) => (factors.clone(), em),
                    None => return Err(MapperError::NoLegalMapping { tried }),
                }
            }
        };
        let mut best = current.clone();

        if order.len() >= 2 {
            let mut rng = StdRng::seed_from_u64(opts.seed);
            let start_score = current.score(obj).max(1.0);
            for it in 0..opts.iterations {
                let temp = opts.t0 * start_score * (1.0 - it as f64 / opts.iterations as f64);
                let i = rng.gen_range(0..order.len());
                let j = rng.gen_range(0..order.len());
                if i == j || order[i] == order[j] {
                    continue;
                }
                order.swap(i, j);
                match self.evaluate_ordering(&order) {
                    Some(em) => {
                        let delta = em.score(obj) - current.score(obj);
                        let accept = delta <= 0.0
                            || (temp > 0.0 && rng.gen::<f64>() < (-delta / temp).exp());
                        if em.score(obj) < best.score(obj) {
                            best = em.clone();
                        }
                        if accept {
                            current = em;
                        } else {
                            order.swap(i, j); // revert
                        }
                    }
                    None => order.swap(i, j), // illegal neighbor: revert
                }
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_mapping::SpatialUnroll;
    use ulm_workload::{Dim, Layer, Precision};

    fn big_mapper_parts() -> (ulm_arch::Architecture, Layer, SpatialUnroll) {
        (
            presets::case_study_chip(128),
            Layer::matmul("big", 256, 192, 320, Precision::int8_acc24()),
            SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]),
        )
    }

    #[test]
    fn annealing_never_loses_to_its_seeds() {
        let (arch, layer, spatial) = big_mapper_parts();
        let mapper = Mapper::new(&arch, &layer, spatial);
        let annealed = mapper
            .search_annealed(Objective::Latency, AnnealOptions::default())
            .unwrap();
        for seed in seeded_orderings(&mapper.factors()) {
            if let Some(em) = mapper.evaluate_ordering(&seed) {
                assert!(
                    annealed.latency.cc_total <= em.latency.cc_total + 1e-9,
                    "annealed {} lost to seed {}",
                    annealed.latency.cc_total,
                    em.latency.cc_total
                );
            }
        }
    }

    #[test]
    fn annealing_is_deterministic() {
        let (arch, layer, spatial) = big_mapper_parts();
        let mapper = Mapper::new(&arch, &layer, spatial);
        let opts = AnnealOptions {
            iterations: 100,
            ..AnnealOptions::default()
        };
        let a = mapper.search_annealed(Objective::Latency, opts).unwrap();
        let b = mapper.search_annealed(Objective::Latency, opts).unwrap();
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn annealing_handles_trivial_spaces() {
        // One factor: nothing to swap, the seed is returned.
        let arch = presets::case_study_chip(128);
        let layer = Layer::matmul("s", 8, 16, 4, Precision::int8_acc24());
        let spatial = SpatialUnroll::new(vec![(Dim::K, 16), (Dim::B, 8), (Dim::C, 2)]);
        let mapper = Mapper::new(&arch, &layer, spatial);
        let em = mapper
            .search_annealed(Objective::Latency, AnnealOptions::default())
            .unwrap();
        assert!(em.latency.cc_total > 0.0);
    }
}
