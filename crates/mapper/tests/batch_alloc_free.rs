//! Counting-allocator proof that the batched SoA kernel is
//! allocation-free in steady state: after one warm-up sweep has sized
//! the lane rows, the stall scratch and the survivor-score memo,
//! replaying the whole ordering space through `push`/`drain` performs
//! zero heap allocations.
//!
//! Own test binary with a single `#[test]`, for the same reason as
//! `alloc_free.rs`: the global allocator swap and the measured window
//! must not see another test thread's allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ulm_arch::presets;
use ulm_mapper::{enumerate, Mapper};
use ulm_mapping::SpatialUnroll;
use ulm_model::{BatchKernel, LaneOutcome, LatencyModel};
use ulm_workload::{Layer, Precision};

/// Wraps the system allocator and counts every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One full sweep of `orderings` through the kernel with incumbent
/// threading, exactly like the mapper's batched chunk loop. Returns
/// (evaluated, pruned, best) so sweeps can be cross-checked.
fn sweep(
    kernel: &mut BatchKernel<'_>,
    orderings: &[Vec<(ulm_workload::Dim, u64)>],
) -> (u64, u64, Option<f64>) {
    let mut evaluated = 0u64;
    let mut pruned = 0u64;
    let mut incumbent: Option<f64> = None;
    let mut drain = |k: &mut BatchKernel<'_>, inc: &mut Option<f64>| {
        let mut cur = *inc;
        k.drain(cur, |_, outcome| {
            match outcome {
                LaneOutcome::Scored(s) => {
                    evaluated += 1;
                    if cur.map(|b| s < b).unwrap_or(true) {
                        cur = Some(s);
                    }
                }
                LaneOutcome::Pruned => pruned += 1,
                LaneOutcome::Illegal => {}
            }
            cur
        });
        *inc = cur;
    };
    for ordering in orderings {
        if kernel.is_full() {
            drain(kernel, &mut incumbent);
        }
        kernel.push(ordering);
    }
    drain(kernel, &mut incumbent);
    (evaluated, pruned, incumbent)
}

#[test]
fn steady_state_batched_kernel_allocates_nothing() {
    let chip = presets::toy_chip();
    let layer = Layer::matmul("batch-alloc-probe", 8, 8, 16, Precision::int8_acc24());
    let spatial = SpatialUnroll::new(chip.spatial.clone());
    let mapper = Mapper::new(&chip.arch, &layer, spatial.clone());

    // Materialize the ordering space up front (this allocates, and
    // that's fine — it happens before the measured window).
    let factors = mapper.factors();
    let mut orderings: Vec<Vec<(ulm_workload::Dim, u64)>> = Vec::new();
    enumerate::for_each_ordering(&factors, |o| {
        orderings.push(o.to_vec());
        true
    });
    assert!(
        orderings.len() > 100,
        "need a non-trivial space, got {}",
        orderings.len()
    );

    for lanes in [8usize, 64] {
        let model = LatencyModel::new();
        let mut kernel = BatchKernel::new(&chip.arch, &layer, &spatial, model, &factors, lanes);

        // Warm-up sweep: grows the lane rows, the stall scratch and the
        // survivor-score memo to their high-water marks.
        let warm = sweep(&mut kernel, &orderings);
        assert!(warm.0 > 0, "lanes {lanes}: warm-up scored nothing");

        // Steady state: the identical sweep must not touch the heap.
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let steady = sweep(&mut kernel, &orderings);
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert_eq!(warm, steady, "lanes {lanes}: sweeps diverged");
        assert_eq!(
            after - before,
            0,
            "lanes {lanes}: steady-state sweep over {} orderings performed {} heap allocations",
            orderings.len(),
            after - before
        );
    }
}
