//! Property tests: the optimized search (allocation-free fast path,
//! branch-and-bound pruning, prefix memoization, intra-design
//! parallelism) returns the byte-identical best mapping — same latency
//! bits, same ordering, same first-strictly-better tie-break — as the
//! naive exhaustive/sampled serial search it replaced.

use proptest::prelude::*;
use ulm_arch::presets;
use ulm_mapper::{
    enumerate, factorize::Factor, EvaluatedMapping, Mapper, MapperOptions, Objective,
};
use ulm_mapping::SpatialUnroll;
use ulm_workload::{Layer, Precision};

/// The pre-optimization search semantics, reimplemented verbatim: list
/// the candidate orderings (full enumeration within `max_exhaustive`,
/// else stationary seeds + uniform samples), evaluate each with the slow
/// per-ordering path, keep the first strictly better score.
fn reference_search(
    mapper: &Mapper<'_>,
    opts: &MapperOptions,
    obj: Objective,
) -> Option<EvaluatedMapping> {
    let factors = mapper.factors();
    let candidates: Vec<Vec<Factor>> = if mapper.space_size() <= opts.max_exhaustive {
        let mut all = Vec::new();
        enumerate::for_each_ordering(&factors, |o| {
            all.push(o.to_vec());
            true
        });
        all
    } else {
        let mut c = enumerate::seeded_orderings(&factors);
        c.extend(enumerate::sample_orderings(
            &factors,
            opts.samples,
            opts.seed,
        ));
        c
    };
    let mut best: Option<EvaluatedMapping> = None;
    for ordering in &candidates {
        if let Some(em) = mapper.evaluate_ordering(ordering) {
            let better = best
                .as_ref()
                .map(|b| em.score(obj) < b.score(obj))
                .unwrap_or(true);
            if better {
                best = Some(em);
            }
        }
    }
    best
}

fn check_case(b: u64, k: u64, c: u64, obj: Objective, bw_aware: bool) -> Result<(), TestCaseError> {
    let chip = presets::toy_chip();
    let layer = Layer::matmul(format!("({b},{k},{c})"), b, k, c, Precision::int8_acc24());
    let opts = MapperOptions {
        max_exhaustive: 3_000,
        samples: 40,
        bw_aware,
        ..MapperOptions::default()
    };
    let mapper = Mapper::new(&chip.arch, &layer, SpatialUnroll::new(chip.spatial.clone()))
        .with_options(opts);
    let reference = reference_search(&mapper, &opts, obj);

    for threads in [None, Some(2), Some(4)] {
        for lanes in [Some(1), None] {
            let mapper = Mapper::new(&chip.arch, &layer, SpatialUnroll::new(chip.spatial.clone()))
                .with_options(opts)
                .with_parallelism(threads)
                .with_batch_lanes(lanes);
            let result = mapper.search(obj);
            match (&reference, result) {
                (None, Err(_)) => {}
                (Some(want), Ok(got)) => {
                    prop_assert_eq!(
                        &want.mapping,
                        &got.best.mapping,
                        "threads {:?} lanes {:?}: different best mapping",
                        threads,
                        lanes
                    );
                    prop_assert_eq!(
                        want.score(obj).to_bits(),
                        got.best.score(obj).to_bits(),
                        "threads {:?} lanes {:?}: score bits diverged",
                        threads,
                        lanes
                    );
                    prop_assert_eq!(
                        want.latency.cc_total.to_bits(),
                        got.best.latency.cc_total.to_bits()
                    );
                    // Every candidate is accounted for: scored, pruned, or
                    // illegal.
                    prop_assert!(got.stats.evaluated + got.stats.pruned <= got.stats.generated);
                }
                (want, got) => {
                    return Err(TestCaseError::fail(format!(
                        "threads {threads:?} lanes {lanes:?}: reference {} but search {}",
                        if want.is_some() {
                            "found a mapping"
                        } else {
                            "found nothing"
                        },
                        if got.is_ok() { "succeeded" } else { "failed" },
                    )));
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Latency search (the pruned path) is exactly equivalent to the
    /// naive serial search, at every thread count.
    #[test]
    fn pruned_parallel_latency_search_matches_reference(
        b in 1u64..=24,
        k in 1u64..=24,
        c in 1u64..=32,
        bw_aware in any::<bool>(),
    ) {
        check_case(b, k, c, Objective::Latency, bw_aware)?;
    }

    /// Energy and EDP searches (no pruning, different fast paths) are
    /// also exactly equivalent.
    #[test]
    fn energy_and_edp_search_match_reference(
        b in 1u64..=16,
        k in 1u64..=16,
        c in 1u64..=16,
    ) {
        check_case(b, k, c, Objective::Energy, true)?;
        check_case(b, k, c, Objective::Edp, true)?;
    }
}
