//! Counting-allocator proof that the steady-state fast evaluation path
//! is allocation-free: after one warm-up sweep sizes every scratch
//! buffer, re-evaluating the whole ordering space performs zero heap
//! allocations.
//!
//! This file is its own test binary (integration test) so the global
//! allocator swap cannot interfere with other tests, and it contains a
//! single `#[test]` so no concurrent test thread can allocate while the
//! steady-state window is being measured.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ulm_arch::presets;
use ulm_mapper::{enumerate, Mapper, Objective};
use ulm_mapping::SpatialUnroll;
use ulm_workload::{Layer, Precision};

/// Wraps the system allocator and counts every allocation.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_fast_evaluation_allocates_nothing() {
    let chip = presets::toy_chip();
    let layer = Layer::matmul("alloc-probe", 8, 8, 16, Precision::int8_acc24());
    let spatial = SpatialUnroll::new(chip.spatial.clone());
    let mapper = Mapper::new(&chip.arch, &layer, spatial);

    // Materialize the ordering space up front (this allocates, and
    // that's fine — it happens before the measured window).
    let factors = mapper.factors();
    let mut orderings: Vec<Vec<(ulm_workload::Dim, u64)>> = Vec::new();
    enumerate::for_each_ordering(&factors, |o| {
        orderings.push(o.to_vec());
        true
    });
    assert!(
        orderings.len() > 100,
        "need a non-trivial space, got {}",
        orderings.len()
    );

    for obj in [Objective::Latency, Objective::Energy, Objective::Edp] {
        let mut scratch = mapper.scratch();

        // Warm-up sweep: grows every scratch buffer to its high-water
        // mark for this ordering sequence.
        let mut legal = 0usize;
        for ordering in &orderings {
            if mapper
                .evaluate_ordering_fast(ordering, obj, &mut scratch)
                .is_some()
            {
                legal += 1;
            }
        }
        assert!(legal > 0, "{obj:?}: warm-up found no legal ordering");

        // Steady state: the identical sweep must not touch the heap.
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let mut check = 0.0f64;
        for ordering in &orderings {
            if let Some(score) = mapper.evaluate_ordering_fast(ordering, obj, &mut scratch) {
                check += score;
            }
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        assert!(check.is_finite());
        assert_eq!(
            after - before,
            0,
            "{obj:?}: steady-state sweep over {} orderings performed {} heap allocations",
            orderings.len(),
            after - before
        );
    }
}
