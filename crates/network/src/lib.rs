//! Cross-layer (whole-network) latency and energy aggregation.
//!
//! The paper closes with: "This intra-layer latency model builds a solid
//! foundation for future work of modeling and optimizing latency in
//! cross-layer multi-core DNN mapping scenarios." This crate takes the
//! first step of that future work: it schedules a sequence of layers on
//! one accelerator, optimizes each layer's mapping independently with the
//! intra-layer model, and aggregates network-level latency under two
//! inter-layer policies:
//!
//! * [`InterLayerOverlap::None`] — strictly sequential execution (the sum
//!   of per-layer totals);
//! * [`InterLayerOverlap::WeightPrefetch`] — the next layer's weight
//!   pre-load is hidden under the current layer's computation (classic
//!   double-buffered weight staging at the GB boundary), saving
//!   `min(next.preload, current.compute)` cycles per boundary.
//!
//! # Example
//!
//! ```no_run
//! use ulm_arch::presets;
//! use ulm_mapping::SpatialUnroll;
//! use ulm_network::{InterLayerOverlap, NetworkEvaluator};
//! use ulm_workload::networks;
//!
//! let chip = presets::validation_chip();
//! let eval = NetworkEvaluator::new(&chip.arch, SpatialUnroll::new(chip.spatial.clone()))
//!     .with_overlap(InterLayerOverlap::WeightPrefetch);
//! let report = eval.evaluate(&networks::handtracking_validation_layers())?;
//! println!("{report}");
//! # Ok::<(), ulm_network::NetworkError>(())
//! ```

pub mod multicore;

pub use multicore::{
    scaling_sweep, BackingStore, MultiCoreEvaluator, MultiCoreLayerReport, MultiCoreReport,
    Partition,
};

use std::error::Error;
use std::fmt;
use ulm_arch::Architecture;
use ulm_energy::{EnergyModel, EnergyReport};
use ulm_mapper::{Mapper, MapperError, MapperOptions, Objective};
use ulm_mapping::{FuseError, FusedSegment, MappedLayer, Mapping, SegmentResidency, SpatialUnroll};
use ulm_model::{LatencyModel, LatencyReport, LoweredLayer, ResidencyPins};
use ulm_workload::Layer;

/// How consecutive layers may overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum InterLayerOverlap {
    /// Strictly sequential: each layer starts after the previous finishes.
    #[default]
    None,
    /// The next layer's weight pre-load is prefetched during the current
    /// layer's computation phase.
    WeightPrefetch,
}

/// Per-layer outcome inside a network schedule.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct LayerResult {
    /// The layer's name.
    pub name: String,
    /// The optimized mapping.
    pub mapping: Mapping,
    /// The intra-layer latency report.
    pub latency: LatencyReport,
    /// The intra-layer energy report.
    pub energy: EnergyReport,
    /// Cycles of this layer's pre-load hidden under the previous layer.
    pub hidden_preload: u64,
}

/// The whole-network result.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct NetworkReport {
    /// Per-layer results in execution order.
    pub layers: Vec<LayerResult>,
    /// The overlap policy used.
    pub overlap: InterLayerOverlap,
    /// Residency tables of the fused segments applied (empty when the
    /// network ran layer-by-layer).
    #[serde(default)]
    pub segments: Vec<SegmentResidency>,
}

impl NetworkReport {
    /// End-to-end cycles under the chosen overlap policy.
    pub fn total_cycles(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.latency.cc_total - l.hidden_preload as f64)
            .sum()
    }

    /// End-to-end cycles with no overlap (the strict sequential bound).
    pub fn sequential_cycles(&self) -> f64 {
        self.layers.iter().map(|l| l.latency.cc_total).sum()
    }

    /// Total energy in fJ.
    pub fn total_fj(&self) -> f64 {
        self.layers.iter().map(|l| l.energy.total_fj).sum()
    }

    /// Network-level MAC-array utilization: summed ideal cycles over the
    /// end-to-end cycles.
    pub fn utilization(&self) -> f64 {
        let ideal: f64 = self.layers.iter().map(|l| l.latency.cc_ideal).sum();
        ideal / self.total_cycles()
    }
}

impl fmt::Display for NetworkReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "network: {} layers, {:.0} cycles ({}), U {:.1}%, {:.1} uJ",
            self.layers.len(),
            self.total_cycles(),
            match self.overlap {
                InterLayerOverlap::None => "sequential",
                InterLayerOverlap::WeightPrefetch => "weight-prefetch overlap",
            },
            self.utilization() * 100.0,
            self.total_fj() / 1.0e9
        )?;
        for l in &self.layers {
            writeln!(
                f,
                "  {:<24} {:>12.0} cc  U {:>5.1}%  hidden preload {:>6}",
                l.name,
                l.latency.cc_total,
                l.latency.utilization * 100.0,
                l.hidden_preload
            )?;
        }
        Ok(())
    }
}

/// Errors from network evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A layer could not be mapped at all.
    LayerUnmappable {
        /// The layer's name.
        layer: String,
        /// The mapper's error.
        source: MapperError,
    },
    /// A fused segment failed validation against this network + chip.
    BadFusion {
        /// The fusion validator's error.
        source: FuseError,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::LayerUnmappable { layer, source } => {
                write!(f, "layer `{layer}` cannot be mapped: {source}")
            }
            NetworkError::BadFusion { source } => {
                write!(f, "invalid fused segment: {source}")
            }
        }
    }
}

impl Error for NetworkError {}

impl From<FuseError> for NetworkError {
    fn from(source: FuseError) -> Self {
        NetworkError::BadFusion { source }
    }
}

/// Evaluates layer sequences on one accelerator.
pub struct NetworkEvaluator<'a> {
    arch: &'a Architecture,
    spatial: SpatialUnroll,
    mapper_opts: MapperOptions,
    overlap: InterLayerOverlap,
    objective: Objective,
    parallelism: Option<usize>,
    fusion: Vec<FusedSegment>,
}

impl<'a> NetworkEvaluator<'a> {
    /// An evaluator with default mapper options, sequential execution and
    /// the latency objective.
    pub fn new(arch: &'a Architecture, spatial: SpatialUnroll) -> Self {
        Self {
            arch,
            spatial,
            mapper_opts: MapperOptions {
                max_exhaustive: 2_000,
                samples: 100,
                ..MapperOptions::default()
            },
            overlap: InterLayerOverlap::None,
            objective: Objective::Latency,
            parallelism: None,
            fusion: Vec::new(),
        }
    }

    /// Sets the inter-layer overlap policy.
    pub fn with_overlap(mut self, overlap: InterLayerOverlap) -> Self {
        self.overlap = overlap;
        self
    }

    /// Sets the per-layer mapping-search options.
    pub fn with_mapper_options(mut self, opts: MapperOptions) -> Self {
        self.mapper_opts = opts;
        self
    }

    /// Sets the per-layer mapping objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Schedules the given fused segments depth-first: each segment's
    /// intermediate tensors stay pinned in its local-buffer level, and the
    /// fused layers are lowered with the segment's residency pins so the
    /// elided backing-store round-trips drop out of latency, energy and
    /// preload alike. Segments are validated against the network when
    /// [`evaluate`](Self::evaluate) runs. The per-layer mapping search
    /// itself stays fusion-blind (it optimizes the unpinned layer), so a
    /// degenerate segment — pinned at the backing store, eliding nothing —
    /// reproduces the layer-by-layer result exactly.
    pub fn with_fusion(mut self, fusion: Vec<FusedSegment>) -> Self {
        self.fusion = fusion;
        self
    }

    /// Sets how many threads the per-layer mapping searches may use.
    /// `None`/`Some(1)` is serial; each layer's search is deterministic and
    /// the overlap post-pass is always applied in layer order, so every
    /// thread count produces the identical report.
    pub fn with_parallelism(mut self, parallelism: Option<usize>) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Searches one layer's mapping and evaluates it (no scheduling yet),
    /// lowering with the given fusion residency pins (`[None; 3]` for an
    /// unfused layer — pin-free lowering is byte-identical to
    /// [`LoweredLayer::build`]).
    fn evaluate_layer(
        &self,
        layer: &Layer,
        pins: ResidencyPins,
    ) -> Result<(Mapping, LatencyReport, EnergyReport), NetworkError> {
        let mapper =
            Mapper::new(self.arch, layer, self.spatial.clone()).with_options(self.mapper_opts);
        let best = mapper
            .search(self.objective)
            .map_err(|source| NetworkError::LayerUnmappable {
                layer: layer.name().to_string(),
                source,
            })?
            .best;
        let view = MappedLayer::new(layer, self.arch, &best.mapping)
            .expect("search returns validated mappings");
        // One lowering feeds both models: latency and energy read the
        // same residency tables, so their block counts agree by
        // construction.
        let model = LatencyModel::new();
        let lowered = LoweredLayer::build_pinned(&view, model.dtl_options(), pins);
        let latency = model.evaluate_lowered(&view, &lowered);
        let energy = EnergyModel::new().evaluate_lowered(&view, &lowered);
        Ok((best.mapping, latency, energy))
    }

    /// Validates every fused segment and merges their residency pins into
    /// one per-layer table (a layer fused in two adjacent segments keeps
    /// the tighter — lower-level — pin per operand).
    fn fusion_pins(
        &self,
        layers: &[Layer],
    ) -> Result<(Vec<SegmentResidency>, Vec<ResidencyPins>), NetworkError> {
        let mut pins: Vec<ResidencyPins> = vec![[None; 3]; layers.len()];
        let mut segments = Vec::with_capacity(self.fusion.len());
        for seg in &self.fusion {
            let res = seg.residency(self.arch, layers)?;
            for (idx, merged) in pins.iter_mut().enumerate() {
                for (slot, pin) in merged.iter_mut().zip(res.pins_for(idx)) {
                    if let Some(level) = pin {
                        *slot = Some(slot.map_or(level, |cur: usize| cur.min(level)));
                    }
                }
            }
            segments.push(res);
        }
        Ok((segments, pins))
    }

    /// Optimizes and schedules every layer.
    ///
    /// The per-layer searches are independent, so with
    /// [`with_parallelism`](Self::with_parallelism) they run on multiple
    /// threads; the inter-layer overlap pass stays sequential (it needs the
    /// previous layer's result) and errors are reported in layer order
    /// either way.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::LayerUnmappable`] naming the first layer
    /// with no legal mapping.
    pub fn evaluate(&self, layers: &[Layer]) -> Result<NetworkReport, NetworkError> {
        type LayerEval = Result<(Mapping, LatencyReport, EnergyReport), NetworkError>;
        let (segments, pins) = self.fusion_pins(layers)?;
        let threads = self.parallelism.unwrap_or(1).clamp(1, layers.len().max(1));
        let evals: Vec<LayerEval> = if threads <= 1 {
            layers
                .iter()
                .zip(&pins)
                .map(|(l, &p)| self.evaluate_layer(l, p))
                .collect()
        } else {
            let mut slots: Vec<Option<LayerEval>> = vec![None; layers.len()];
            let chunk = layers.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for ((l_chunk, p_chunk), s_chunk) in layers
                    .chunks(chunk)
                    .zip(pins.chunks(chunk))
                    .zip(slots.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        for ((layer, &p), slot) in
                            l_chunk.iter().zip(p_chunk.iter()).zip(s_chunk.iter_mut())
                        {
                            *slot = Some(self.evaluate_layer(layer, p));
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("every layer slot is filled"))
                .collect()
        };

        // Sequential post-pass: weight prefetch hides this layer's preload
        // under the previous layer's computation phase, and the first
        // unmappable layer (in order) is the one reported.
        let mut results: Vec<LayerResult> = Vec::with_capacity(layers.len());
        for (layer, eval) in layers.iter().zip(evals) {
            let (mapping, latency, energy) = eval?;
            let hidden_preload = match (self.overlap, results.last()) {
                (InterLayerOverlap::WeightPrefetch, Some(prev)) => {
                    (latency.preload as f64).min(prev.latency.cc_compute()) as u64
                }
                _ => 0,
            };
            results.push(LayerResult {
                name: layer.name().to_string(),
                mapping,
                latency,
                energy,
                hidden_preload,
            });
        }
        Ok(NetworkReport {
            layers: results,
            overlap: self.overlap,
            segments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_workload::{Layer, Precision};

    fn small_net() -> Vec<Layer> {
        vec![
            Layer::matmul("l0", 64, 64, 128, Precision::int8_acc24()),
            Layer::matmul("l1", 64, 128, 64, Precision::int8_acc24()),
            Layer::matmul("l2", 64, 32, 128, Precision::int8_acc24()),
        ]
    }

    fn quick(arch: &Architecture) -> NetworkEvaluator<'_> {
        NetworkEvaluator::new(
            arch,
            SpatialUnroll::new(vec![
                (ulm_workload::Dim::K, 16),
                (ulm_workload::Dim::B, 8),
                (ulm_workload::Dim::C, 2),
            ]),
        )
        .with_mapper_options(MapperOptions {
            max_exhaustive: 300,
            samples: 30,
            ..MapperOptions::default()
        })
    }

    #[test]
    fn sequential_total_is_sum_of_layers() {
        let arch = presets::case_study_chip(128);
        let r = quick(&arch).evaluate(&small_net()).unwrap();
        assert_eq!(r.layers.len(), 3);
        let sum: f64 = r.layers.iter().map(|l| l.latency.cc_total).sum();
        assert!((r.total_cycles() - sum).abs() < 1e-9);
        assert!((r.sequential_cycles() - sum).abs() < 1e-9);
    }

    #[test]
    fn weight_prefetch_never_slower() {
        let arch = presets::case_study_chip(128);
        let seq = quick(&arch).evaluate(&small_net()).unwrap();
        let ov = quick(&arch)
            .with_overlap(InterLayerOverlap::WeightPrefetch)
            .evaluate(&small_net())
            .unwrap();
        assert!(ov.total_cycles() <= seq.total_cycles());
        // The first layer can never hide its preload.
        assert_eq!(ov.layers[0].hidden_preload, 0);
        // The strict bound is unchanged.
        assert!((ov.sequential_cycles() - seq.sequential_cycles()).abs() < 1e-9);
    }

    #[test]
    fn energy_adds_across_layers() {
        let arch = presets::case_study_chip(128);
        let r = quick(&arch).evaluate(&small_net()).unwrap();
        let sum: f64 = r.layers.iter().map(|l| l.energy.total_fj).sum();
        assert!((r.total_fj() - sum).abs() < 1e-6);
        assert!(r.total_fj() > 0.0);
    }

    #[test]
    fn utilization_is_ideal_over_total() {
        let arch = presets::case_study_chip(128);
        let r = quick(&arch).evaluate(&small_net()).unwrap();
        assert!(r.utilization() > 0.0 && r.utilization() <= 1.0);
    }

    #[test]
    fn parallel_evaluate_matches_serial_exactly() {
        let arch = presets::case_study_chip(128);
        let serial = quick(&arch)
            .with_overlap(InterLayerOverlap::WeightPrefetch)
            .evaluate(&small_net())
            .unwrap();
        for threads in [2usize, 3, 8] {
            let par = quick(&arch)
                .with_overlap(InterLayerOverlap::WeightPrefetch)
                .with_parallelism(Some(threads))
                .evaluate(&small_net())
                .unwrap();
            assert_eq!(serial.layers.len(), par.layers.len());
            for (s, p) in serial.layers.iter().zip(&par.layers) {
                assert_eq!(s.name, p.name);
                assert_eq!(s.mapping, p.mapping, "parallelism={threads}");
                assert_eq!(s.latency, p.latency);
                assert_eq!(s.energy.total_fj, p.energy.total_fj);
                assert_eq!(s.hidden_preload, p.hidden_preload);
            }
        }
    }

    #[test]
    fn parallel_error_is_first_in_layer_order() {
        let arch = presets::case_study_chip(128);
        // Two unmappable layers: the *first* one must be the error named,
        // even when a later chunk fails first in wall-clock time.
        let layers = vec![
            Layer::matmul("ok0", 64, 64, 128, Precision::int8_acc24()),
            Layer::matmul("bad1", 64, 64, 64, Precision::uniform(512)),
            Layer::matmul("ok2", 64, 32, 128, Precision::int8_acc24()),
            Layer::matmul("bad3", 32, 64, 64, Precision::uniform(512)),
        ];
        let err = quick(&arch)
            .with_parallelism(Some(4))
            .evaluate(&layers)
            .unwrap_err();
        assert!(err.to_string().contains("bad1"), "{err}");
    }

    #[test]
    fn unmappable_layer_is_reported_by_name() {
        let arch = presets::case_study_chip(128);
        // A layer whose spatial block cannot enter the registers.
        let fat = vec![Layer::matmul("fat", 64, 64, 64, Precision::uniform(512))];
        let err = quick(&arch).evaluate(&fat).unwrap_err();
        assert!(err.to_string().contains("fat"), "{err}");
    }

    fn fusable_net() -> Vec<Layer> {
        // b consumes exactly what a produces (32 words), so `a -> b` is a
        // legal fused edge on any chip whose LB serves O and I.
        vec![
            Layer::matmul("a", 4, 8, 8, Precision::int8_acc24()),
            Layer::matmul("b", 4, 8, 8, Precision::int8_acc24()),
        ]
    }

    fn toy_eval(arch: &Architecture) -> NetworkEvaluator<'_> {
        NetworkEvaluator::new(
            arch,
            SpatialUnroll::new(vec![(ulm_workload::Dim::K, 2), (ulm_workload::Dim::B, 2)]),
        )
    }

    #[test]
    fn degenerate_fusion_matches_layer_by_layer_exactly() {
        // Pinning at the toy chip's LB — its backing store — elides
        // nothing, so the fused evaluation must be bit-identical to the
        // layer-by-layer oracle.
        let chip = presets::toy_chip();
        let layers = fusable_net();
        let oracle = toy_eval(&chip.arch).evaluate(&layers).unwrap();
        let seg = ulm_mapping::FusedSegment::new(vec!["a".into(), "b".into()], "LB");
        let fused = toy_eval(&chip.arch)
            .with_fusion(vec![seg])
            .evaluate(&layers)
            .unwrap();
        assert_eq!(fused.segments.len(), 1);
        for (o, f) in oracle.layers.iter().zip(&fused.layers) {
            assert_eq!(o.mapping, f.mapping);
            assert_eq!(o.latency, f.latency);
            assert_eq!(o.energy.total_fj, f.energy.total_fj);
        }
        assert_eq!(oracle.total_cycles(), fused.total_cycles());
    }

    #[test]
    fn resident_intermediates_are_strictly_cheaper() {
        // On the fusion chip the LB sits below a narrow DRAM link:
        // pinning the a->b intermediate there elides the producer's
        // writeback and the consumer's refill, so the fused run must beat
        // the oracle on both cycles and energy.
        let chip = presets::fusion_chip();
        let layers = fusable_net();
        let oracle = toy_eval(&chip.arch).evaluate(&layers).unwrap();
        let seg = ulm_mapping::FusedSegment::new(vec!["a".into(), "b".into()], "LB");
        let fused = toy_eval(&chip.arch)
            .with_fusion(vec![seg])
            .evaluate(&layers)
            .unwrap();
        assert!(
            fused.total_cycles() < oracle.total_cycles(),
            "fused {} !< oracle {}",
            fused.total_cycles(),
            oracle.total_cycles()
        );
        assert!(
            fused.total_fj() < oracle.total_fj(),
            "fused {} !< oracle {}",
            fused.total_fj(),
            oracle.total_fj()
        );
        // The consumer no longer fills its input from DRAM (its weight
        // fill may still dominate the preload phase, so `<=`).
        assert!(fused.layers[1].latency.preload <= oracle.layers[1].latency.preload);
    }

    #[test]
    fn bad_fusion_is_reported() {
        let chip = presets::toy_chip();
        let seg = ulm_mapping::FusedSegment::new(vec!["a".into(), "nope".into()], "LB");
        let err = toy_eval(&chip.arch)
            .with_fusion(vec![seg])
            .evaluate(&fusable_net())
            .unwrap_err();
        assert!(matches!(
            err,
            NetworkError::BadFusion {
                source: ulm_mapping::FuseError::UnknownLayer { .. }
            }
        ));
    }

    #[test]
    fn display_lists_every_layer() {
        let arch = presets::case_study_chip(128);
        let r = quick(&arch).evaluate(&small_net()).unwrap();
        let s = r.to_string();
        for l in &r.layers {
            assert!(s.contains(&l.name), "{s}");
        }
    }
}
