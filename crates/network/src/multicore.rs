//! Multi-core layer partitioning — the second half of the paper's stated
//! future work ("cross-layer **multi-core** DNN mapping scenarios").
//!
//! A layer is split across `n` identical cores along the batch or the
//! output-channel dimension; each core runs its sub-layer under the
//! intra-layer model, the layer completes at the slowest core (barrier
//! synchronization), and — when the cores share one backing store — each
//! core sees only `1/n` of the shared bandwidth, which the per-core
//! architecture factory receives as an input. That bandwidth scaling is
//! where the intra-layer model's BW-awareness earns its keep: it decides
//! whether adding cores actually helps.

use crate::NetworkError;
use std::fmt;
use ulm_arch::Architecture;
use ulm_mapper::{Mapper, MapperOptions, Objective};
use ulm_mapping::{MappedLayer, SpatialUnroll};
use ulm_model::LatencyModel;
use ulm_workload::{Dim, Layer};

/// How a layer is divided across cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Each core processes a slice of the batch (data parallelism).
    Batch,
    /// Each core produces a slice of the output channels.
    OutputChannels,
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Partition::Batch => write!(f, "batch-split"),
            Partition::OutputChannels => write!(f, "K-split"),
        }
    }
}

/// Whether the cores own private backing-store bandwidth or share it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackingStore {
    /// Every core keeps the full backing-store bandwidth (e.g. private
    /// DRAM channels).
    Private,
    /// The given total bandwidth is divided evenly among the cores.
    Shared {
        /// Total bits/cycle across all cores.
        total_bw_bits: u64,
    },
}

/// Result of running one layer across the cores.
#[derive(Debug, Clone)]
pub struct MultiCoreLayerReport {
    /// The layer's name.
    pub name: String,
    /// The per-core sub-layer that was actually evaluated.
    pub sub_layer: String,
    /// Cores with non-trivial work.
    pub active_cores: u64,
    /// Cycles of the slowest core (the layer's latency).
    pub cycles: f64,
    /// The slowest core's MAC utilization.
    pub utilization: f64,
}

/// Result across a whole network.
#[derive(Debug, Clone)]
pub struct MultiCoreReport {
    /// Number of cores.
    pub cores: u64,
    /// The partition strategy.
    pub partition: Partition,
    /// Per-layer results.
    pub layers: Vec<MultiCoreLayerReport>,
}

impl MultiCoreReport {
    /// End-to-end cycles (layer barriers, no inter-layer overlap).
    pub fn total_cycles(&self) -> f64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }
}

impl fmt::Display for MultiCoreReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} cores ({}): {:.0} cycles",
            self.cores,
            self.partition,
            self.total_cycles()
        )?;
        for l in &self.layers {
            writeln!(
                f,
                "  {:<24} {:>12.0} cc  x{} cores  U {:>5.1}%  [{}]",
                l.name,
                l.cycles,
                l.active_cores,
                l.utilization * 100.0,
                l.sub_layer
            )?;
        }
        Ok(())
    }
}

/// Evaluates layers across `n` identical cores built by a factory.
pub struct MultiCoreEvaluator<F>
where
    F: Fn(u64) -> (Architecture, SpatialUnroll),
{
    factory: F,
    cores: u64,
    partition: Partition,
    backing: BackingStore,
    mapper_opts: MapperOptions,
}

impl<F> MultiCoreEvaluator<F>
where
    F: Fn(u64) -> (Architecture, SpatialUnroll),
{
    /// Builds an evaluator. `factory(gb_bw_bits)` must instantiate one
    /// core whose backing store runs at the given bandwidth; under
    /// [`BackingStore::Private`] it receives `u64::MAX / 4` (unconstrained).
    pub fn new(factory: F, cores: u64, partition: Partition, backing: BackingStore) -> Self {
        assert!(cores > 0, "at least one core");
        Self {
            factory,
            cores,
            partition,
            backing,
            mapper_opts: MapperOptions {
                max_exhaustive: 1_000,
                samples: 60,
                ..MapperOptions::default()
            },
        }
    }

    /// Overrides the per-layer mapping-search options.
    pub fn with_mapper_options(mut self, opts: MapperOptions) -> Self {
        self.mapper_opts = opts;
        self
    }

    /// The bandwidth each core sees at its backing store.
    fn per_core_bw(&self) -> u64 {
        match self.backing {
            BackingStore::Private => u64::MAX / 4,
            BackingStore::Shared { total_bw_bits } => (total_bw_bits / self.cores).max(1),
        }
    }

    /// The sub-layer one core processes, and how many cores have work.
    fn split(&self, layer: &Layer) -> (Layer, u64) {
        let d = layer.shape().dims();
        let (dim, bound) = match self.partition {
            Partition::Batch => (Dim::B, d[Dim::B]),
            Partition::OutputChannels => (Dim::K, d[Dim::K]),
        };
        let active = self.cores.min(bound);
        let share = bound.div_ceil(active);
        let mut dims = *d;
        dims[dim] = share;
        let shape = ulm_workload::LayerShape::conv(
            dims[Dim::B],
            dims[Dim::K],
            dims[Dim::C],
            dims[Dim::OY],
            dims[Dim::OX],
            dims[Dim::FY],
            dims[Dim::FX],
        )
        .with_stride(layer.shape().stride().0, layer.shape().stride().1)
        .with_dilation(layer.shape().dilation().0, layer.shape().dilation().1);
        (
            Layer::new(
                format!("{}/core", layer.name()),
                layer.layer_type(),
                shape,
                *layer.precision(),
            ),
            active,
        )
    }

    /// Runs one layer across the cores.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::LayerUnmappable`] if the sub-layer has no
    /// legal mapping on a core.
    pub fn evaluate_layer(&self, layer: &Layer) -> Result<MultiCoreLayerReport, NetworkError> {
        let (arch, spatial) = (self.factory)(self.per_core_bw());
        let (sub, active) = self.split(layer);
        let best = Mapper::new(&arch, &sub, spatial)
            .with_options(self.mapper_opts)
            .search(Objective::Latency)
            .map_err(|source| NetworkError::LayerUnmappable {
                layer: layer.name().to_string(),
                source,
            })?
            .best;
        let view = MappedLayer::new(&sub, &arch, &best.mapping)
            .expect("search returns validated mappings");
        let report = LatencyModel::new().evaluate(&view);
        Ok(MultiCoreLayerReport {
            name: layer.name().to_string(),
            sub_layer: format!("{}", sub.shape().dims()),
            active_cores: active,
            cycles: report.cc_total,
            utilization: report.utilization,
        })
    }

    /// Runs a whole network, barrier-synchronized per layer.
    ///
    /// # Errors
    ///
    /// Propagates the first unmappable layer.
    pub fn evaluate(&self, layers: &[Layer]) -> Result<MultiCoreReport, NetworkError> {
        let layers = layers
            .iter()
            .map(|l| self.evaluate_layer(l))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MultiCoreReport {
            cores: self.cores,
            partition: self.partition,
            layers,
        })
    }
}

/// Scaling summary: cycles and parallel efficiency at each core count.
pub fn scaling_sweep<F>(
    factory: F,
    core_counts: &[u64],
    partition: Partition,
    total_bw_bits: u64,
    layers: &[Layer],
) -> Result<Vec<(u64, f64, f64)>, NetworkError>
where
    F: Fn(u64) -> (Architecture, SpatialUnroll) + Copy,
{
    let mut out = Vec::new();
    let mut single = None;
    for &n in core_counts {
        let eval = MultiCoreEvaluator::new(
            factory,
            n,
            partition,
            BackingStore::Shared { total_bw_bits },
        );
        let total = eval.evaluate(layers)?.total_cycles();
        let base = *single.get_or_insert(total * n.min(1) as f64);
        let speedup = base / total;
        out.push((n, total, speedup / n as f64));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_workload::Precision;

    fn factory(gb_bw: u64) -> (Architecture, SpatialUnroll) {
        // Clamp: the preset takes a literal bus width.
        let bw = gb_bw.min(1 << 20);
        let chip = presets::scaled_case_study_chip(16, bw);
        (chip.arch, SpatialUnroll::new(chip.spatial))
    }

    fn layer() -> Layer {
        Layer::matmul("l", 256, 128, 256, Precision::int8_acc24())
    }

    #[test]
    fn one_core_matches_single_core_model() {
        let mc = MultiCoreEvaluator::new(
            factory,
            1,
            Partition::Batch,
            BackingStore::Shared { total_bw_bits: 128 },
        );
        let r = mc.evaluate_layer(&layer()).unwrap();
        let (arch, spatial) = factory(128);
        let best = Mapper::new(&arch, &layer(), spatial)
            .with_options(MapperOptions {
                max_exhaustive: 1_000,
                samples: 60,
                ..MapperOptions::default()
            })
            .search(Objective::Latency)
            .unwrap()
            .best;
        assert!((r.cycles - best.latency.cc_total).abs() < 1e-9);
        assert_eq!(r.active_cores, 1);
    }

    #[test]
    fn private_bandwidth_scales_nearly_linearly() {
        let run = |n| {
            MultiCoreEvaluator::new(factory, n, Partition::Batch, BackingStore::Private)
                .evaluate_layer(&layer())
                .unwrap()
                .cycles
        };
        let c1 = run(1);
        let c4 = run(4);
        let speedup = c1 / c4;
        assert!(
            speedup > 3.0,
            "private-BW 4-core speedup should be near 4x, got {speedup:.2}"
        );
    }

    #[test]
    fn shared_bandwidth_throttles_scaling() {
        let run = |n| {
            MultiCoreEvaluator::new(
                factory,
                n,
                Partition::Batch,
                BackingStore::Shared { total_bw_bits: 128 },
            )
            .evaluate_layer(&layer())
            .unwrap()
            .cycles
        };
        let c1 = run(1);
        let c4 = run(4);
        let shared_speedup = c1 / c4;
        let private_speedup = {
            let p1 = MultiCoreEvaluator::new(factory, 1, Partition::Batch, BackingStore::Private)
                .evaluate_layer(&layer())
                .unwrap()
                .cycles;
            let p4 = MultiCoreEvaluator::new(factory, 4, Partition::Batch, BackingStore::Private)
                .evaluate_layer(&layer())
                .unwrap()
                .cycles;
            p1 / p4
        };
        assert!(
            shared_speedup < private_speedup,
            "shared backing store must scale worse: {shared_speedup:.2} vs {private_speedup:.2}"
        );
    }

    #[test]
    fn partition_cannot_exceed_dimension() {
        // K = 8: only 8 cores can have work even if 16 are configured.
        let small = Layer::matmul("s", 64, 8, 64, Precision::int8_acc24());
        let mc = MultiCoreEvaluator::new(
            factory,
            16,
            Partition::OutputChannels,
            BackingStore::Private,
        );
        let r = mc.evaluate_layer(&small).unwrap();
        assert_eq!(r.active_cores, 8);
    }

    #[test]
    fn network_totals_sum_layer_maxima() {
        let layers = vec![
            layer(),
            Layer::matmul("m2", 128, 64, 128, Precision::int8_acc24()),
        ];
        let mc = MultiCoreEvaluator::new(
            factory,
            2,
            Partition::Batch,
            BackingStore::Shared { total_bw_bits: 256 },
        );
        let r = mc.evaluate(&layers).unwrap();
        assert_eq!(r.layers.len(), 2);
        let sum: f64 = r.layers.iter().map(|l| l.cycles).sum();
        assert!((r.total_cycles() - sum).abs() < 1e-9);
        let s = r.to_string();
        assert!(s.contains("m2"), "{s}");
    }

    #[test]
    fn scaling_sweep_reports_efficiency() {
        let layers = vec![layer()];
        let rows = scaling_sweep(factory, &[1, 2, 4], Partition::Batch, 512, &layers).unwrap();
        assert_eq!(rows.len(), 3);
        // Efficiency at 1 core is 1.0 by construction.
        assert!((rows[0].2 - 1.0).abs() < 1e-9);
        // Total cycles never increase with more cores... they may at high
        // contention, but with 512 b/cy shared they should decrease here.
        assert!(rows[2].1 <= rows[0].1);
    }
}
