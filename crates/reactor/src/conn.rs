//! Line framing for the per-connection read state machine.
//!
//! The reactor appends whatever the socket yields into a per-connection
//! buffer; [`extract_line`] pulls complete, length-bounded NDJSON lines
//! back out. Oversized lines flip the connection into *discard* mode: the
//! offending bytes are dropped (never buffered) until the terminating
//! newline restores sync, so one hostile client cannot balloon memory.

/// One step of the framing state machine.
#[derive(Debug, PartialEq, Eq)]
pub enum Extracted {
    /// A complete line, stripped of the trailing `\n` (and `\r`).
    Line(String),
    /// A line longer than the bound was dropped (up to its newline, or
    /// into discard mode when the newline has not arrived yet).
    Oversized,
    /// No complete line is buffered yet.
    Incomplete,
}

/// Pulls the next complete line out of `buf`, enforcing `max_len`.
///
/// `discarding` carries the oversized-resync state across calls: while
/// set, bytes are dropped until a newline is seen. Call repeatedly until
/// [`Extracted::Incomplete`].
pub fn extract_line(buf: &mut Vec<u8>, discarding: &mut bool, max_len: usize) -> Extracted {
    if *discarding {
        match buf.iter().position(|&b| b == b'\n') {
            Some(p) => {
                buf.drain(..=p);
                *discarding = false;
            }
            None => {
                buf.clear();
                return Extracted::Incomplete;
            }
        }
    }
    match buf.iter().position(|&b| b == b'\n') {
        Some(p) => {
            if p > max_len {
                buf.drain(..=p);
                return Extracted::Oversized;
            }
            let mut line: Vec<u8> = buf.drain(..=p).collect();
            line.pop(); // the \n
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            Extracted::Line(String::from_utf8_lossy(&line).into_owned())
        }
        None if buf.len() > max_len => {
            buf.clear();
            *discarding = true;
            Extracted::Oversized
        }
        None => Extracted::Incomplete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(buf: &mut Vec<u8>, bytes: &[u8]) {
        buf.extend_from_slice(bytes);
    }

    #[test]
    fn lines_come_out_in_order_with_crlf_stripped() {
        let mut buf = Vec::new();
        let mut discard = false;
        feed(&mut buf, b"alpha\r\nbeta\ngam");
        assert_eq!(
            extract_line(&mut buf, &mut discard, 64),
            Extracted::Line("alpha".into())
        );
        assert_eq!(
            extract_line(&mut buf, &mut discard, 64),
            Extracted::Line("beta".into())
        );
        assert_eq!(
            extract_line(&mut buf, &mut discard, 64),
            Extracted::Incomplete
        );
        feed(&mut buf, b"ma\n");
        assert_eq!(
            extract_line(&mut buf, &mut discard, 64),
            Extracted::Line("gamma".into())
        );
    }

    #[test]
    fn oversized_terminated_line_is_dropped_whole() {
        let mut buf = Vec::new();
        let mut discard = false;
        feed(&mut buf, b"0123456789\nok\n");
        assert_eq!(
            extract_line(&mut buf, &mut discard, 4),
            Extracted::Oversized
        );
        assert!(!discard, "the newline already restored sync");
        assert_eq!(
            extract_line(&mut buf, &mut discard, 4),
            Extracted::Line("ok".into())
        );
    }

    #[test]
    fn unterminated_oversized_line_discards_until_newline() {
        let mut buf = Vec::new();
        let mut discard = false;
        feed(&mut buf, b"xxxxxxxxxx");
        assert_eq!(
            extract_line(&mut buf, &mut discard, 4),
            Extracted::Oversized
        );
        assert!(discard);
        assert!(buf.is_empty(), "oversized bytes are never buffered");
        // More of the same line streams in and is dropped.
        feed(&mut buf, b"yyyyyyyyyy");
        assert_eq!(
            extract_line(&mut buf, &mut discard, 4),
            Extracted::Incomplete
        );
        assert!(buf.is_empty());
        // The newline resyncs; the next line parses.
        feed(&mut buf, b"zz\nok\n");
        assert_eq!(
            extract_line(&mut buf, &mut discard, 4),
            Extracted::Line("ok".into())
        );
        assert!(!discard);
    }

    #[test]
    fn boundary_length_is_accepted() {
        let mut buf = Vec::new();
        let mut discard = false;
        feed(&mut buf, b"abcd\n");
        assert_eq!(
            extract_line(&mut buf, &mut discard, 4),
            Extracted::Line("abcd".into())
        );
        feed(&mut buf, b"abcde\n");
        assert_eq!(
            extract_line(&mut buf, &mut discard, 4),
            Extracted::Oversized
        );
    }
}
