//! `ulm-reactor` — a dependency-free, event-driven TCP serving tier.
//!
//! One thread multiplexes every connection through Linux `epoll`:
//! nonblocking sockets, per-connection read/write state machines for a
//! line-oriented (NDJSON) protocol, a hashed timer wheel for idle and
//! slow-reader timeouts, a connection ceiling, and graceful shutdown that
//! drains in-flight work before returning. The protocol engine stays
//! outside the crate behind the [`LineService`] trait: the reactor hands it
//! complete request lines and receives response lines back through
//! [`Completion`] handles, so the same service implementation can also be
//! driven by a thread-per-connection server for differential testing.
//!
//! Backpressure is structural rather than cooperative:
//!
//! - at most one request per connection is in flight, so a connection's
//!   responses always come back in request order;
//! - read interest is dropped while a connection has a request executing
//!   or too many unflushed response bytes, so slow readers stall only
//!   themselves;
//! - globally at most [`LineService::capacity_hint`] submissions are
//!   outstanding, so a service backed by a bounded worker pool is never
//!   asked to block the event loop — surplus lines are parked and fed as
//!   completions drain.
//!
//! Only the event loop itself is Linux-specific. On other platforms
//! [`Reactor::new`] returns [`ReactorError::Unsupported`] and callers fall
//! back to their threaded path.

pub mod timer;

mod api;
mod conn;

pub use api::{
    Completion, LineService, ReactorError, ReactorOptions, ReactorSummary, ShutdownHandle,
};
pub use conn::{extract_line, Extracted};

#[cfg(target_os = "linux")]
mod sys;

#[cfg(target_os = "linux")]
mod reactor;

#[cfg(target_os = "linux")]
pub use reactor::Reactor;

#[cfg(not(target_os = "linux"))]
mod stub {
    use super::*;
    use std::net::{SocketAddr, TcpListener};

    /// Stub reactor for non-Linux builds; construction always fails with
    /// [`ReactorError::Unsupported`] so callers fall back to the threaded
    /// serving path.
    pub struct Reactor {
        never: std::convert::Infallible,
    }

    impl Reactor {
        /// Always returns [`ReactorError::Unsupported`] on this platform.
        pub fn new(_listener: TcpListener, _opts: ReactorOptions) -> Result<Self, ReactorError> {
            Err(ReactorError::Unsupported)
        }

        /// Unreachable: the stub cannot be constructed.
        pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
            match self.never {}
        }

        /// Unreachable: the stub cannot be constructed.
        pub fn shutdown_handle(&self) -> ShutdownHandle {
            match self.never {}
        }

        /// Unreachable: the stub cannot be constructed.
        pub fn run<S: LineService>(self, _service: &S) -> Result<ReactorSummary, ReactorError> {
            match self.never {}
        }
    }
}

#[cfg(not(target_os = "linux"))]
pub use stub::Reactor;
