//! Thin, safe wrappers over the Linux readiness primitives the reactor
//! needs: `epoll` and `eventfd`.
//!
//! The workspace is std-only — no `libc` crate — so the three epoll entry
//! points and `eventfd` are declared here as `extern "C"` symbols; every
//! Rust binary on Linux already links the C runtime that provides them.
//! File descriptors are held in [`OwnedFd`] so they close on drop.

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint};
use std::time::Duration;

/// Readable readiness (also reported for peer half-close).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never subscribed).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, never subscribed).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// One readiness report. On x86-64 the kernel ABI packs this struct to
/// 12 bytes, hence the packed repr there.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN` | …).
    pub events: u32,
    /// The token registered with the fd.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll instance.
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) }).map(|_| ())
    }

    /// Registers `fd` with the given interest mask and token.
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the interest mask of an already-registered fd.
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for readiness, filling `events`; returns how many fired.
    /// `timeout = None` blocks indefinitely. Interrupted waits report zero
    /// events rather than an error.
    pub fn wait(&self, events: &mut [EpollEvent], timeout: Option<Duration>) -> io::Result<usize> {
        let ms: c_int = match timeout {
            None => -1,
            // Round up so a 1ns timeout does not spin at 0ms.
            Some(t) => t
                .as_millis()
                .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                .min(c_int::MAX as u128) as c_int,
        };
        let n = unsafe {
            epoll_wait(
                self.fd.as_raw_fd(),
                events.as_mut_ptr(),
                events.len().min(c_int::MAX as usize) as c_int,
                ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

/// A nonblocking eventfd used to wake `epoll_wait` from other threads
/// (worker completions, shutdown requests).
pub struct EventFd {
    fd: OwnedFd,
}

impl EventFd {
    /// Creates a nonblocking, close-on-exec eventfd.
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// The raw descriptor, for epoll registration.
    pub fn raw(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Posts one wakeup. Safe from any thread; a full counter (impossible
    /// in practice) is ignored — the reactor is already awake then.
    pub fn notify(&self) {
        let one: u64 = 1;
        let _ = unsafe {
            write(
                self.fd.as_raw_fd(),
                one.to_ne_bytes().as_ptr(),
                std::mem::size_of::<u64>(),
            )
        };
    }

    /// Drains pending wakeups so level-triggered epoll stops reporting.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = unsafe { read(self.fd.as_raw_fd(), buf.as_mut_ptr(), buf.len()) };
    }
}

/// Reads stdin (fd 0) without blocking the caller beyond one syscall;
/// returns how many bytes arrived, 0 meaning end-of-file.
pub fn read_stdin_chunk(buf: &mut [u8]) -> io::Result<usize> {
    let n = unsafe { read(0, buf.as_mut_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw(), EPOLLIN, 42).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing posted: a zero-timeout wait reports no events.
        assert_eq!(ep.wait(&mut events, Some(Duration::ZERO)).unwrap(), 0);
        ev.notify();
        let n = ep.wait(&mut events, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 42);
        assert_ne!({ events[0].events } & EPOLLIN, 0);
        ev.drain();
        assert_eq!(ep.wait(&mut events, Some(Duration::ZERO)).unwrap(), 0);
    }

    #[test]
    fn epoll_tracks_socket_readiness() {
        use std::io::Write as _;
        use std::net::{TcpListener, TcpStream};

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let ep = Epoll::new().unwrap();
        listener.set_nonblocking(true).unwrap();
        ep.add(listener.as_raw_fd(), EPOLLIN, 1).unwrap();

        let mut client = TcpStream::connect(addr).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        let n = ep.wait(&mut events, Some(Duration::from_secs(1))).unwrap();
        assert_eq!(n, 1, "pending accept makes the listener readable");

        let (stream, _) = listener.accept().unwrap();
        stream.set_nonblocking(true).unwrap();
        ep.add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 2).unwrap();
        client.write_all(b"hello\n").unwrap();
        let n = ep.wait(&mut events, Some(Duration::from_secs(1))).unwrap();
        assert!(n >= 1);
        assert!((0..n).any(|i| { events[i].data } == 2));
        ep.delete(stream.as_raw_fd()).unwrap();
    }
}
