//! The platform-independent surface of the reactor: the [`LineService`]
//! contract a protocol engine implements, the [`Completion`] channel its
//! workers answer through, the tuning knobs, the run summary and the error
//! type. Everything here compiles on any platform; only the epoll loop
//! itself is Linux-specific.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A line-oriented request handler driven by the reactor.
///
/// The reactor owns all sockets and framing; the service only ever sees
/// complete request lines. [`submit`](LineService::submit) must not block
/// the caller for long — it runs on the event-loop thread. Hand the work to
/// a pool and call [`Completion::send`] from wherever it finishes; the
/// reactor enforces its side of the backpressure contract by keeping at
/// most [`capacity_hint`](LineService::capacity_hint) submissions in
/// flight.
pub trait LineService: Send + Sync {
    /// Handles one request line, eventually answering through `done`.
    fn submit(&self, line: String, done: Completion);

    /// The response line for a request that exceeded `limit` bytes, or
    /// `None` to drop it silently.
    fn oversized(&self, limit: usize) -> Option<String> {
        let _ = limit;
        None
    }

    /// The parting line for a connection rejected because `active`
    /// connections are already open, or `None` to close silently.
    fn over_capacity(&self, active: usize) -> Option<String> {
        let _ = active;
        None
    }

    /// How many submissions may be in flight before the reactor pauses
    /// reading. Must be at least 1; return the job-queue capacity when the
    /// service dispatches to a bounded pool whose `submit` blocks.
    fn capacity_hint(&self) -> usize {
        usize::MAX
    }
}

/// Where completed responses are parked until the event loop collects
/// them, plus the wakeup that tells it to look.
pub(crate) struct CompletionSink {
    pub(crate) queue: Mutex<Vec<(u64, Option<String>)>>,
    /// Wakes the event loop (an eventfd write on Linux).
    pub(crate) waker: Box<dyn Fn() + Send + Sync>,
    pub(crate) shutdown: AtomicBool,
}

impl CompletionSink {
    pub(crate) fn push(&self, token: u64, response: Option<String>) {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((token, response));
        (self.waker)();
    }
}

/// The write-half of one request: calling [`send`](Completion::send)
/// delivers the response line to the reactor, which routes it back to the
/// right connection. Dropping a `Completion` unanswered still releases the
/// request slot (the connection simply gets no response line), so a
/// panicking worker can never wedge a connection.
pub struct Completion {
    pub(crate) sink: Arc<CompletionSink>,
    pub(crate) token: u64,
    pub(crate) sent: bool,
}

impl Completion {
    /// Delivers the response (`None` emits nothing, like a blank line).
    pub fn send(mut self, response: Option<String>) {
        self.sent = true;
        self.sink.push(self.token, response);
    }
}

impl Drop for Completion {
    fn drop(&mut self) {
        if !self.sent {
            self.sink.push(self.token, None);
        }
    }
}

/// Asks a running reactor to shut down gracefully: stop accepting, let
/// in-flight requests finish and flush, then return. Cloneable and safe to
/// call from any thread (or a signal-ish context like a stdin watcher).
#[derive(Clone)]
pub struct ShutdownHandle {
    pub(crate) sink: Arc<CompletionSink>,
}

impl ShutdownHandle {
    /// Requests graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.sink.shutdown.store(true, Ordering::SeqCst);
        (self.sink.waker)();
    }

    /// True once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.sink.shutdown.load(Ordering::SeqCst)
    }
}

/// Tuning for one reactor run.
#[derive(Debug, Clone)]
pub struct ReactorOptions {
    /// Concurrent-connection ceiling; connection number `max + 1` is told
    /// [`LineService::over_capacity`] and closed.
    pub max_connections: usize,
    /// Longest accepted request line in bytes; longer lines are answered
    /// with [`LineService::oversized`] and discarded up to the newline.
    pub max_line_len: usize,
    /// Close connections with no client activity for this long (while no
    /// request of theirs is executing).
    pub idle_timeout: Option<Duration>,
    /// Close connections that leave responses unread for this long.
    pub write_timeout: Option<Duration>,
    /// How long graceful shutdown waits for in-flight work and unflushed
    /// responses before force-closing.
    pub drain_timeout: Duration,
    /// Treat end-of-file on stdin as a shutdown request (lets a parent
    /// process stop the server by closing a pipe — no signals needed).
    pub shutdown_on_stdin_close: bool,
    /// Timer-wheel granularity; timeouts fire within one tick of their
    /// deadline.
    pub timer_tick: Duration,
}

impl Default for ReactorOptions {
    fn default() -> Self {
        ReactorOptions {
            max_connections: 65_536,
            max_line_len: 1 << 20,
            idle_timeout: None,
            write_timeout: None,
            drain_timeout: Duration::from_secs(10),
            shutdown_on_stdin_close: false,
            timer_tick: Duration::from_millis(100),
        }
    }
}

/// What one reactor run did, returned when the loop exits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReactorSummary {
    /// Connections accepted.
    pub accepted: u64,
    /// Request lines handed to the service.
    pub requests: u64,
    /// Response lines written back.
    pub responses: u64,
    /// Connections closed by the idle timeout.
    pub closed_idle: u64,
    /// Connections closed by the slow-reader write timeout.
    pub closed_write_timeout: u64,
    /// Connections rejected at the connection ceiling.
    pub rejected_over_capacity: u64,
    /// Request lines rejected for exceeding the length bound.
    pub oversized_lines: u64,
    /// Transient `accept` failures survived (`EMFILE`, `ECONNABORTED`, …).
    pub accept_retries: u64,
    /// True when shutdown drained every connection before the deadline.
    pub drained_cleanly: bool,
}

/// Failures of the event loop itself (never of individual connections —
/// those are handled by closing the connection).
#[derive(Debug)]
pub enum ReactorError {
    /// An epoll/listener-level I/O failure.
    Io(std::io::Error),
    /// The reactor is only implemented for Linux epoll on this build.
    Unsupported,
}

impl fmt::Display for ReactorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReactorError::Io(e) => write!(f, "reactor I/O failure: {e}"),
            ReactorError::Unsupported => {
                f.write_str("the epoll reactor requires Linux; use the threaded serve path")
            }
        }
    }
}

impl std::error::Error for ReactorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReactorError::Io(e) => Some(e),
            ReactorError::Unsupported => None,
        }
    }
}

impl From<std::io::Error> for ReactorError {
    fn from(e: std::io::Error) -> Self {
        ReactorError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropped_completions_still_release_their_token() {
        let sink = Arc::new(CompletionSink {
            queue: Mutex::new(Vec::new()),
            waker: Box::new(|| {}),
            shutdown: AtomicBool::new(false),
        });
        let c = Completion {
            sink: Arc::clone(&sink),
            token: 9,
            sent: false,
        };
        drop(c);
        let c = Completion {
            sink: Arc::clone(&sink),
            token: 10,
            sent: false,
        };
        c.send(Some("hi".into()));
        let q = sink.queue.lock().unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q[0], (9, None));
        assert_eq!(q[1], (10, Some("hi".to_string())));
    }

    #[test]
    fn shutdown_handle_is_sticky_and_wakes() {
        use std::sync::atomic::AtomicUsize;
        let wakes = Arc::new(AtomicUsize::new(0));
        let w = Arc::clone(&wakes);
        let sink = Arc::new(CompletionSink {
            queue: Mutex::new(Vec::new()),
            waker: Box::new(move || {
                w.fetch_add(1, Ordering::SeqCst);
            }),
            shutdown: AtomicBool::new(false),
        });
        let handle = ShutdownHandle {
            sink: Arc::clone(&sink),
        };
        assert!(!handle.is_shutdown());
        handle.clone().shutdown();
        assert!(handle.is_shutdown());
        assert_eq!(wakes.load(Ordering::SeqCst), 1);
    }
}
