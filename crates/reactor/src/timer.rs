//! A hashed timer wheel with lazy cancellation.
//!
//! Connection timeouts are coarse (hundreds of milliseconds to minutes), so
//! the reactor never needs an exact priority queue. Deadlines hash into one
//! of `slots` buckets by tick index; [`TimerWheel::advance`] sweeps every
//! bucket the clock passed and hands back candidate tokens. Entries are
//! never removed on activity — the owner re-validates each candidate
//! against the connection's *current* deadline and simply re-arms the ones
//! that moved. Stale entries for closed connections fall out on their own
//! because token generations stop matching.

use std::time::{Duration, Instant};

/// A fixed-size hashed timer wheel over opaque `u64` tokens.
pub struct TimerWheel {
    slots: Vec<Vec<u64>>,
    tick: Duration,
    /// First tick not yet swept.
    cursor: u64,
    start: Instant,
}

impl TimerWheel {
    /// A wheel of `slots` buckets advancing every `tick` (clamped to 1ms+).
    pub fn new(slots: usize, tick: Duration) -> Self {
        TimerWheel {
            slots: (0..slots.max(1)).map(|_| Vec::new()).collect(),
            tick: tick.max(Duration::from_millis(1)),
            cursor: 0,
            start: Instant::now(),
        }
    }

    /// The wheel's tick duration.
    pub fn tick(&self) -> Duration {
        self.tick
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.start);
        // Round up: firing a deadline one tick late is fine, early is not.
        (elapsed.as_nanos() / self.tick.as_nanos()).min(u128::from(u64::MAX)) as u64 + 1
    }

    /// Arms `token` to surface from [`TimerWheel::advance`] at or shortly
    /// after `deadline`. Duplicate arms are fine; the owner re-validates.
    pub fn arm(&mut self, token: u64, deadline: Instant) {
        // A deadline already in the past goes into the next unswept slot.
        let tick = self.tick_of(deadline).max(self.cursor);
        let idx = (tick % self.slots.len() as u64) as usize;
        if self.slots[idx].last() == Some(&token) {
            return; // Cheap dedup for back-to-back re-arms.
        }
        self.slots[idx].push(token);
    }

    /// Sweeps all slots between the last sweep and `now`, collecting the
    /// candidates into `out` (deduplicated per call).
    pub fn advance(&mut self, now: Instant, out: &mut Vec<u64>) {
        let target = self.tick_of(now);
        if target <= self.cursor {
            return;
        }
        // Cap the sweep at one full revolution; older slots would repeat.
        let from = self
            .cursor
            .max(target.saturating_sub(self.slots.len() as u64));
        for tick in from..target {
            let idx = (tick % self.slots.len() as u64) as usize;
            out.append(&mut self.slots[idx]);
        }
        self.cursor = target;
        out.sort_unstable();
        out.dedup();
    }

    /// The duration until the next non-empty slot fires, if any — an upper
    /// bound for the epoll wait timeout.
    pub fn next_due(&self, now: Instant) -> Option<Duration> {
        if self.slots.iter().all(Vec::is_empty) {
            return None;
        }
        // Scan from the first unswept tick: slots between the cursor and
        // "now" are due immediately. Hash collisions can make this an
        // underestimate — an early wakeup, which the owner tolerates.
        for ahead in 0..self.slots.len() as u64 {
            let tick = self.cursor + ahead;
            if !self.slots[(tick % self.slots.len() as u64) as usize].is_empty() {
                let fire_ns = u128::from(tick) * self.tick.as_nanos();
                let now_ns = now.saturating_duration_since(self.start).as_nanos();
                let wait = fire_ns.saturating_sub(now_ns);
                return Some(Duration::from_nanos(wait.min(u128::from(u64::MAX)) as u64));
            }
        }
        // Entries exist but all slots ahead were empty within one
        // revolution — fire a full revolution out.
        Some(self.tick * self.slots.len() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn armed_tokens_surface_after_their_deadline() {
        let mut wheel = TimerWheel::new(8, Duration::from_millis(10));
        let now = Instant::now();
        wheel.arm(1, now + Duration::from_millis(15));
        wheel.arm(2, now + Duration::from_millis(55));
        let mut fired = Vec::new();
        wheel.advance(now + Duration::from_millis(5), &mut fired);
        assert!(fired.is_empty(), "nothing due yet: {fired:?}");
        wheel.advance(now + Duration::from_millis(30), &mut fired);
        assert_eq!(fired, vec![1]);
        fired.clear();
        wheel.advance(now + Duration::from_millis(80), &mut fired);
        assert_eq!(fired, vec![2]);
    }

    #[test]
    fn duplicates_collapse_within_one_sweep() {
        let mut wheel = TimerWheel::new(4, Duration::from_millis(10));
        let now = Instant::now();
        wheel.arm(7, now + Duration::from_millis(5));
        wheel.arm(7, now + Duration::from_millis(12));
        wheel.arm(7, now + Duration::from_millis(5));
        let mut fired = Vec::new();
        wheel.advance(now + Duration::from_millis(40), &mut fired);
        assert_eq!(fired, vec![7]);
    }

    #[test]
    fn past_deadlines_fire_on_the_next_sweep() {
        let mut wheel = TimerWheel::new(4, Duration::from_millis(10));
        let now = Instant::now();
        let mut fired = Vec::new();
        wheel.advance(now + Duration::from_millis(100), &mut fired);
        assert!(fired.is_empty());
        // Arm far in the past; it must still fire (in the next slot), not
        // be lost behind the cursor.
        wheel.arm(3, now);
        wheel.advance(now + Duration::from_millis(130), &mut fired);
        assert_eq!(fired, vec![3]);
    }

    #[test]
    fn next_due_bounds_the_wait() {
        let mut wheel = TimerWheel::new(16, Duration::from_millis(10));
        let now = Instant::now();
        assert_eq!(wheel.next_due(now), None, "empty wheel needs no wakeup");
        wheel.arm(1, now + Duration::from_millis(40));
        let due = wheel.next_due(now).expect("armed wheel has a due time");
        assert!(due <= Duration::from_millis(60), "{due:?}");
    }
}
