//! The Linux epoll event loop.
//!
//! One thread owns every socket. Connections are nonblocking; readiness
//! drives per-connection read/write state machines ([`crate::conn`]);
//! request execution happens elsewhere (the [`LineService`] hands work to
//! its own pool) and completed responses come back through a wake-up
//! eventfd. A hashed [`TimerWheel`] enforces idle and slow-reader
//! timeouts, and a [`ShutdownHandle`] (or end-of-file on stdin, when
//! enabled) triggers a graceful drain: stop accepting, finish in-flight
//! requests, flush, close, return.

#![cfg(target_os = "linux")]

use crate::api::{
    Completion, CompletionSink, LineService, ReactorError, ReactorOptions, ReactorSummary,
    ShutdownHandle,
};
use crate::conn::{extract_line, Extracted};
use crate::sys::{
    read_stdin_chunk, Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use crate::timer::TimerWheel;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKE: u64 = u64::MAX - 1;
const TOKEN_STDIN: u64 = u64::MAX - 2;

/// Responses buffered for a slow reader beyond this stop further request
/// extraction on that connection until the backlog flushes.
const MAX_PENDING_OUT: usize = 256 * 1024;

/// How long `epoll_wait` may sleep with no timers armed.
const MAX_WAIT: Duration = Duration::from_millis(500);

/// `accept()` backoff after a transient failure like `EMFILE`.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(100);

fn token_of(idx: usize, gen: u32) -> u64 {
    (u64::from(gen) << 32) | idx as u64
}

/// Errno values that mean "this accept failed, the listener is fine":
/// fd exhaustion (process or system), transient memory pressure, or a
/// connection that died in the backlog.
fn is_transient_accept_error(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::Interrupted
            | io::ErrorKind::WouldBlock
    ) || matches!(
        e.raw_os_error(),
        Some(23 /* ENFILE */)
            | Some(24 /* EMFILE */)
            | Some(12 /* ENOMEM */)
            | Some(105 /* ENOBUFS */)
            | Some(71 /* EPROTO */)
    )
}

struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    out_buf: Vec<u8>,
    out_pos: usize,
    discarding: bool,
    inflight: bool,
    peer_closed: bool,
    interest: u32,
    last_activity: Instant,
    /// When the oldest unflushed response byte was queued (or last made
    /// progress); drives the slow-reader write timeout.
    write_since: Option<Instant>,
}

impl Conn {
    fn out_pending(&self) -> usize {
        self.out_buf.len() - self.out_pos
    }
}

/// Why a connection was closed by the reactor (for counters).
enum CloseReason {
    Normal,
    IdleTimeout,
    WriteTimeout,
}

/// An epoll reactor bound to one listener. Create it, keep a
/// [`ShutdownHandle`], then [`run`](Reactor::run) it (usually on a
/// dedicated thread).
pub struct Reactor {
    listener: TcpListener,
    epoll: Epoll,
    wake: Arc<EventFd>,
    sink: Arc<CompletionSink>,
    opts: ReactorOptions,
}

impl Reactor {
    /// Wraps `listener` (switched to nonblocking) in a new event loop.
    pub fn new(listener: TcpListener, opts: ReactorOptions) -> Result<Self, ReactorError> {
        let epoll = Epoll::new()?;
        let wake = Arc::new(EventFd::new()?);
        let notifier = Arc::clone(&wake);
        let sink = Arc::new(CompletionSink {
            queue: Mutex::new(Vec::new()),
            waker: Box::new(move || notifier.notify()),
            shutdown: AtomicBool::new(false),
        });
        listener.set_nonblocking(true)?;
        Ok(Reactor {
            listener,
            epoll,
            wake,
            sink,
            opts,
        })
    }

    /// The address the listener is bound to.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that asks this reactor to drain and exit.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            sink: Arc::clone(&self.sink),
        }
    }

    /// Runs the event loop until shutdown, consuming the reactor.
    pub fn run<S: LineService>(self, service: &S) -> Result<ReactorSummary, ReactorError> {
        let Reactor {
            listener,
            epoll,
            wake,
            sink,
            opts,
        } = self;
        let mut lp = EventLoop {
            epoll: &epoll,
            service,
            sink: &sink,
            opts: &opts,
            slab: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            active: 0,
            parked: VecDeque::new(),
            inflight: 0,
            timers: TimerWheel::new(512, opts.timer_tick),
            summary: ReactorSummary::default(),
            draining: false,
        };
        epoll.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        epoll.add(wake.raw(), EPOLLIN, TOKEN_WAKE)?;
        let mut listener_armed = true;
        if opts.shutdown_on_stdin_close {
            // Regular-file stdin cannot be epoll-watched (EPERM); shutdown
            // then only comes from the handle.
            let _ = epoll.add(0, EPOLLIN, TOKEN_STDIN);
        }

        let mut events = vec![EpollEvent { events: 0, data: 0 }; 1024];
        let mut drain_deadline: Option<Instant> = None;
        let mut accept_paused_until: Option<Instant> = None;
        loop {
            let now = Instant::now();
            if sink.shutdown.load(Ordering::SeqCst) && !lp.draining {
                if listener_armed {
                    let _ = epoll.delete(listener.as_raw_fd());
                    listener_armed = false;
                }
                drain_deadline = Some(now + opts.drain_timeout);
                lp.begin_drain();
            }
            if lp.draining {
                if lp.active == 0 {
                    lp.summary.drained_cleanly = true;
                    break;
                }
                if drain_deadline.is_some_and(|d| now >= d) {
                    lp.close_all();
                    break;
                }
            }
            if accept_paused_until.is_some_and(|p| now >= p) && !lp.draining {
                accept_paused_until = None;
                if epoll
                    .add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)
                    .is_ok()
                {
                    listener_armed = true;
                }
                if let Some(pause) = lp.accept_all(&listener)? {
                    let _ = epoll.delete(listener.as_raw_fd());
                    listener_armed = false;
                    accept_paused_until = Some(pause);
                }
            }

            let mut timeout = lp.timers.next_due(now).unwrap_or(MAX_WAIT).min(MAX_WAIT);
            if let Some(d) = drain_deadline {
                timeout = timeout.min(d.saturating_duration_since(now));
            }
            if let Some(p) = accept_paused_until {
                timeout = timeout.min(p.saturating_duration_since(now));
            }
            let n = epoll.wait(&mut events, Some(timeout))?;

            let mut accept_ready = false;
            for event in events.iter().take(n) {
                let token = { event.data };
                let mask = { event.events };
                match token {
                    TOKEN_WAKE => wake.drain(),
                    TOKEN_LISTENER => accept_ready = true,
                    TOKEN_STDIN => {
                        let mut chunk = [0u8; 256];
                        if matches!(read_stdin_chunk(&mut chunk), Ok(0)) {
                            let _ = epoll.delete(0);
                            sink.shutdown.store(true, Ordering::SeqCst);
                        }
                    }
                    _ => lp.on_conn_event(token, mask),
                }
            }
            if accept_ready && listener_armed && !lp.draining {
                if let Some(pause) = lp.accept_all(&listener)? {
                    let _ = epoll.delete(listener.as_raw_fd());
                    listener_armed = false;
                    accept_paused_until = Some(pause);
                }
            }
            lp.drain_completions();
            lp.feed_parked();
            lp.handle_timeouts(Instant::now());
        }
        Ok(lp.summary)
    }
}

struct EventLoop<'a, S: LineService> {
    epoll: &'a Epoll,
    service: &'a S,
    sink: &'a Arc<CompletionSink>,
    opts: &'a ReactorOptions,
    slab: Vec<Option<Conn>>,
    /// Per-slot generation; bumped on close so stale tokens miss.
    gens: Vec<u32>,
    free: Vec<usize>,
    active: usize,
    /// Extracted lines waiting for submission capacity.
    parked: VecDeque<(u64, String)>,
    /// Submissions not yet answered (excludes parked lines).
    inflight: usize,
    timers: TimerWheel,
    summary: ReactorSummary,
    draining: bool,
}

impl<S: LineService> EventLoop<'_, S> {
    fn capacity(&self) -> usize {
        self.service.capacity_hint().max(1)
    }

    fn conn_idx(&self, token: u64) -> Option<usize> {
        let idx = (token & u64::from(u32::MAX)) as usize;
        let gen = (token >> 32) as u32;
        (idx < self.slab.len() && self.slab[idx].is_some() && self.gens[idx] == gen).then_some(idx)
    }

    /// Accepts until the backlog is empty. `Some(until)` asks the caller to
    /// pause accepting (fd pressure); fatal listener errors propagate.
    fn accept_all(&mut self, listener: &TcpListener) -> Result<Option<Instant>, ReactorError> {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if self.active >= self.opts.max_connections {
                        self.summary.rejected_over_capacity += 1;
                        let _ = stream.set_nonblocking(true);
                        if let Some(line) = self.service.over_capacity(self.active) {
                            let mut bytes = line.into_bytes();
                            bytes.push(b'\n');
                            let _ = (&stream).write(&bytes);
                        }
                        continue; // Dropping the stream closes it.
                    }
                    self.open_conn(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) if is_transient_accept_error(&e) => {
                    self.summary.accept_retries += 1;
                    eprintln!("ulm-reactor: accept failed ({e}); pausing accepts briefly");
                    return Ok(Some(Instant::now() + ACCEPT_BACKOFF));
                }
                Err(e) => return Err(ReactorError::Io(e)),
            }
        }
    }

    fn open_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slab.push(None);
                self.gens.push(0);
                self.slab.len() - 1
            }
        };
        let token = token_of(idx, self.gens[idx]);
        let interest = EPOLLIN | EPOLLRDHUP;
        if self.epoll.add(stream.as_raw_fd(), interest, token).is_err() {
            self.free.push(idx);
            return;
        }
        self.slab[idx] = Some(Conn {
            stream,
            read_buf: Vec::new(),
            out_buf: Vec::new(),
            out_pos: 0,
            discarding: false,
            inflight: false,
            peer_closed: false,
            interest,
            last_activity: Instant::now(),
            write_since: None,
        });
        self.active += 1;
        self.summary.accepted += 1;
        self.arm_timer(idx);
    }

    fn close_conn(&mut self, idx: usize, reason: CloseReason) {
        if let Some(conn) = self.slab[idx].take() {
            let _ = self.epoll.delete(conn.stream.as_raw_fd());
            self.gens[idx] = self.gens[idx].wrapping_add(1);
            self.free.push(idx);
            self.active -= 1;
            match reason {
                CloseReason::Normal => {}
                CloseReason::IdleTimeout => self.summary.closed_idle += 1,
                CloseReason::WriteTimeout => self.summary.closed_write_timeout += 1,
            }
        }
    }

    fn close_all(&mut self) {
        for idx in 0..self.slab.len() {
            self.close_conn(idx, CloseReason::Normal);
        }
    }

    fn on_conn_event(&mut self, token: u64, mask: u32) {
        let Some(idx) = self.conn_idx(token) else {
            return;
        };
        if mask & (EPOLLERR | EPOLLHUP) != 0 {
            self.close_conn(idx, CloseReason::Normal);
            return;
        }
        if mask & (EPOLLIN | EPOLLRDHUP) != 0 {
            self.on_readable(idx);
        }
        self.try_advance(idx);
    }

    /// Reads everything available; never blocks.
    fn on_readable(&mut self, idx: usize) {
        let now = Instant::now();
        let mut dead = false;
        {
            let Some(conn) = self.slab[idx].as_mut() else {
                return;
            };
            let mut chunk = [0u8; 4096];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.last_activity = now;
                        conn.read_buf.extend_from_slice(&chunk[..n]);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
        }
        if dead {
            self.close_conn(idx, CloseReason::Normal);
        }
    }

    /// Drives one connection as far as it can go: flush pending output,
    /// extract and dispatch request lines, close when finished.
    fn try_advance(&mut self, idx: usize) {
        if !self.flush_writes(idx) {
            return;
        }
        loop {
            enum Step {
                Submit(u64, String),
                Oversized,
                Stop,
            }
            let step = {
                let Some(conn) = self.slab[idx].as_mut() else {
                    return;
                };
                if conn.inflight || self.draining || conn.out_pending() > MAX_PENDING_OUT {
                    Step::Stop
                } else {
                    match extract_line(
                        &mut conn.read_buf,
                        &mut conn.discarding,
                        self.opts.max_line_len,
                    ) {
                        Extracted::Line(line) => {
                            conn.inflight = true;
                            Step::Submit(token_of(idx, self.gens[idx]), line)
                        }
                        Extracted::Oversized => Step::Oversized,
                        Extracted::Incomplete => Step::Stop,
                    }
                }
            };
            match step {
                Step::Submit(token, line) => {
                    self.summary.requests += 1;
                    self.submit_or_park(token, line);
                }
                Step::Oversized => {
                    self.summary.oversized_lines += 1;
                    if let Some(resp) = self.service.oversized(self.opts.max_line_len) {
                        self.queue_output(idx, &resp);
                    }
                }
                Step::Stop => break,
            }
        }
        if !self.flush_writes(idx) {
            return;
        }
        let done = {
            let Some(conn) = self.slab[idx].as_ref() else {
                return;
            };
            (conn.peer_closed || self.draining) && !conn.inflight && conn.out_pending() == 0
        };
        if done {
            self.close_conn(idx, CloseReason::Normal);
            return;
        }
        self.update_interest(idx);
        self.arm_timer(idx);
    }

    /// Writes as much buffered output as the socket takes. Returns false
    /// when the connection died.
    fn flush_writes(&mut self, idx: usize) -> bool {
        let now = Instant::now();
        let mut dead = false;
        {
            let Some(conn) = self.slab[idx].as_mut() else {
                return false;
            };
            while conn.out_pos < conn.out_buf.len() {
                match conn.stream.write(&conn.out_buf[conn.out_pos..]) {
                    Ok(0) => {
                        dead = true;
                        break;
                    }
                    Ok(n) => {
                        conn.out_pos += n;
                        conn.last_activity = now;
                        conn.write_since = Some(now); // Progress restarts the clock.
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead = true;
                        break;
                    }
                }
            }
            if !dead && conn.out_pos == conn.out_buf.len() && conn.out_pos > 0 {
                conn.out_buf.clear();
                conn.out_pos = 0;
                conn.write_since = None;
            }
        }
        if dead {
            self.close_conn(idx, CloseReason::Normal);
            return false;
        }
        true
    }

    fn queue_output(&mut self, idx: usize, line: &str) {
        let Some(conn) = self.slab[idx].as_mut() else {
            return;
        };
        if conn.out_pending() == 0 {
            conn.out_buf.clear();
            conn.out_pos = 0;
            conn.write_since = Some(Instant::now());
        } else if conn.out_pos > 4096 {
            conn.out_buf.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
        conn.out_buf.extend_from_slice(line.as_bytes());
        conn.out_buf.push(b'\n');
    }

    fn submit_or_park(&mut self, token: u64, line: String) {
        if self.inflight < self.capacity() {
            self.inflight += 1;
            self.service.submit(line, self.completion(token));
        } else {
            self.parked.push_back((token, line));
        }
    }

    fn completion(&self, token: u64) -> Completion {
        Completion {
            sink: Arc::clone(self.sink),
            token,
            sent: false,
        }
    }

    /// Routes finished responses back onto their connections.
    fn drain_completions(&mut self) {
        loop {
            let batch = std::mem::take(
                &mut *self
                    .sink
                    .queue
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner),
            );
            if batch.is_empty() {
                return;
            }
            for (token, response) in batch {
                self.inflight = self.inflight.saturating_sub(1);
                let Some(idx) = self.conn_idx(token) else {
                    continue; // The connection died while the job ran.
                };
                if let Some(conn) = self.slab[idx].as_mut() {
                    conn.inflight = false;
                }
                if let Some(line) = response {
                    self.summary.responses += 1;
                    self.queue_output(idx, &line);
                }
                self.try_advance(idx);
            }
        }
    }

    /// Submits parked lines as completions free capacity.
    fn feed_parked(&mut self) {
        while self.inflight < self.capacity() {
            let Some((token, line)) = self.parked.pop_front() else {
                return;
            };
            if self.conn_idx(token).is_some() {
                self.inflight += 1;
                self.service.submit(line, self.completion(token));
            }
        }
    }

    /// The connection's current deadline, if any timeouts apply.
    fn deadline_of(&self, idx: usize) -> Option<(Instant, CloseReason)> {
        let conn = self.slab[idx].as_ref()?;
        if conn.out_pending() > 0 {
            let since = conn.write_since.unwrap_or(conn.last_activity);
            self.opts
                .write_timeout
                .map(|wt| (since + wt, CloseReason::WriteTimeout))
        } else if !conn.inflight {
            self.opts
                .idle_timeout
                .map(|it| (conn.last_activity + it, CloseReason::IdleTimeout))
        } else {
            None // The server itself is working; never penalize the client.
        }
    }

    fn arm_timer(&mut self, idx: usize) {
        if let Some((deadline, _)) = self.deadline_of(idx) {
            self.timers.arm(token_of(idx, self.gens[idx]), deadline);
        }
    }

    fn handle_timeouts(&mut self, now: Instant) {
        let mut due = Vec::new();
        self.timers.advance(now, &mut due);
        for token in due {
            let Some(idx) = self.conn_idx(token) else {
                continue;
            };
            match self.deadline_of(idx) {
                Some((deadline, reason)) if deadline <= now => self.close_conn(idx, reason),
                Some((deadline, _)) => self.timers.arm(token, deadline),
                // No active timeout right now; re-armed on state change.
                None => {}
            }
        }
    }

    /// Starts a graceful drain: no new reads, finish in-flight work, flush
    /// and close. Idle connections close immediately.
    fn begin_drain(&mut self) {
        self.draining = true;
        for idx in 0..self.slab.len() {
            if self.slab[idx].is_some() {
                self.try_advance(idx);
            }
        }
    }

    fn update_interest(&mut self, idx: usize) {
        let Some(conn) = self.slab[idx].as_mut() else {
            return;
        };
        let mut want = EPOLLRDHUP;
        if !conn.peer_closed
            && !conn.inflight
            && !self.draining
            && conn.out_pending() <= MAX_PENDING_OUT
        {
            want |= EPOLLIN;
        }
        if conn.out_pending() > 0 {
            want |= EPOLLOUT;
        }
        if want != conn.interest {
            let token = token_of(idx, self.gens[idx]);
            if self
                .epoll
                .modify(conn.stream.as_raw_fd(), want, token)
                .is_ok()
            {
                conn.interest = want;
            }
        }
    }
}
