//! End-to-end tests of the epoll event loop over real loopback sockets:
//! echo round-trips, pipelining under a capacity of one, idle and
//! over-capacity policies, oversized-line handling, and graceful drain of
//! in-flight work. These exercise the loop exactly as `ulm serve
//! --reactor` does, just with a toy service instead of the evaluator.

#![cfg(target_os = "linux")]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

use ulm_reactor::{Completion, LineService, Reactor, ReactorOptions, ReactorSummary};

/// Answers `echo:<line>` inline on the event-loop thread.
struct Echo;

impl LineService for Echo {
    fn submit(&self, line: String, done: Completion) {
        done.send(Some(format!("echo:{line}")));
    }

    fn oversized(&self, limit: usize) -> Option<String> {
        Some(format!("too-long:{limit}"))
    }

    fn over_capacity(&self, active: usize) -> Option<String> {
        Some(format!("busy:{active}"))
    }
}

/// Answers from a worker thread after a delay — exercises the eventfd
/// wakeup path and shutdown draining.
struct SlowEcho {
    delay: Duration,
}

impl LineService for SlowEcho {
    fn submit(&self, line: String, done: Completion) {
        let delay = self.delay;
        thread::spawn(move || {
            thread::sleep(delay);
            done.send(Some(format!("late:{line}")));
        });
    }
}

fn start<S: LineService + 'static>(
    service: S,
    opts: ReactorOptions,
) -> (
    std::net::SocketAddr,
    ulm_reactor::ShutdownHandle,
    thread::JoinHandle<ReactorSummary>,
) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let reactor = Reactor::new(listener, opts).expect("reactor setup");
    let addr = reactor.local_addr().expect("local addr");
    let handle = reactor.shutdown_handle();
    let join = thread::spawn(move || reactor.run(&service).expect("reactor run"));
    (addr, handle, join)
}

#[test]
fn echo_round_trip_and_summary() {
    let (addr, shutdown, join) = start(Echo, ReactorOptions::default());
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut stream = stream;
    for i in 0..3 {
        writeln!(stream, "ping-{i}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), format!("echo:ping-{i}"));
    }
    drop(reader);
    drop(stream);
    shutdown.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.accepted, 1);
    assert_eq!(summary.requests, 3);
    assert_eq!(summary.responses, 3);
    assert!(summary.drained_cleanly, "{summary:?}");
}

#[test]
fn pipelined_lines_answer_in_order() {
    // capacity_hint is 1 for this service: the reactor may hold only one
    // submission in flight, so a burst of lines exercises the parked-line
    // queue, yet every response must still come back in request order.
    struct OneAtATime;
    impl LineService for OneAtATime {
        fn submit(&self, line: String, done: Completion) {
            thread::spawn(move || done.send(Some(format!("ok:{line}"))));
        }
        fn capacity_hint(&self) -> usize {
            1
        }
    }

    let (addr, shutdown, join) = start(OneAtATime, ReactorOptions::default());
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut burst = String::new();
    for i in 0..32 {
        burst.push_str(&format!("b{i}\n"));
    }
    stream.write_all(burst.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    for i in 0..32 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), format!("ok:b{i}"));
    }
    shutdown.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.requests, 32);
}

#[test]
fn idle_connections_are_reaped() {
    let opts = ReactorOptions {
        idle_timeout: Some(Duration::from_millis(80)),
        timer_tick: Duration::from_millis(20),
        ..ReactorOptions::default()
    };
    let (addr, shutdown, join) = start(Echo, opts);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Say nothing; the server should hang up on us.
    let mut buf = [0u8; 16];
    let n = stream.read(&mut buf).unwrap();
    assert_eq!(n, 0, "idle connection sees EOF from the reaper");
    shutdown.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.closed_idle, 1, "{summary:?}");
}

#[test]
fn oversized_lines_get_the_policy_reply_and_the_stream_resyncs() {
    let opts = ReactorOptions {
        max_line_len: 8,
        ..ReactorOptions::default()
    };
    let (addr, shutdown, join) = start(Echo, opts);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"way-too-long-for-the-bound\nok\n")
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "too-long:8");
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "echo:ok");
    shutdown.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.oversized_lines, 1);
    assert_eq!(summary.requests, 1);
}

#[test]
fn connections_beyond_the_ceiling_are_turned_away() {
    let opts = ReactorOptions {
        max_connections: 1,
        ..ReactorOptions::default()
    };
    let (addr, shutdown, join) = start(Echo, opts);
    let mut first = TcpStream::connect(addr).unwrap();
    writeln!(first, "hold").unwrap();
    let mut reader = BufReader::new(first.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "echo:hold");

    let second = TcpStream::connect(addr).unwrap();
    second
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut turned_away = String::new();
    let mut second_reader = BufReader::new(second);
    second_reader.read_line(&mut turned_away).unwrap();
    assert_eq!(turned_away.trim_end(), "busy:1");
    let n = second_reader.read_line(&mut turned_away).unwrap();
    assert_eq!(n, 0, "rejected connection is closed after the parting line");

    shutdown.shutdown();
    let summary = join.join().unwrap();
    assert_eq!(summary.accepted, 1);
    assert_eq!(summary.rejected_over_capacity, 1);
}

#[test]
fn shutdown_drains_in_flight_work_before_closing() {
    let service = SlowEcho {
        delay: Duration::from_millis(150),
    };
    let (addr, shutdown, join) = start(service, ReactorOptions::default());
    let mut stream = TcpStream::connect(addr).unwrap();
    writeln!(stream, "finish-me").unwrap();
    // Give the loop a moment to read the line, then ask it to stop while
    // the worker is still sleeping.
    thread::sleep(Duration::from_millis(40));
    shutdown.shutdown();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "late:finish-me", "drain kept the response");
    line.clear();
    let n = reader.read_line(&mut line).unwrap();
    assert_eq!(n, 0, "connection closes after the drain");
    let summary = join.join().unwrap();
    assert!(summary.drained_cleanly, "{summary:?}");
    assert_eq!(summary.responses, 1);
}
