//! Finite periodic window functions and their union/intersection measures.
//!
//! The paper models each data-transfer link's *memory updating window*
//! (`MUW_u`) "as a finite periodic function, supporting union and
//! intersection operation" (Fig. 2a). A window function is described by
//! four parameters: the period (`Mem_CC`), the active length within one
//! period (`X`), the active start offset (`S`) and the number of periods
//! (`Z`). Step 2 of the model needs the *measure* (total active length) of
//! the union of several such windows — `MUW_comb = |∪ MUW_u|` — which this
//! crate computes exactly whenever feasible and with documented bounds
//! otherwise.
//!
//! # Example
//!
//! ```
//! use ulm_periodic::{PeriodicWindow, union_measure};
//!
//! // A full window (double-buffered link: can update any time)...
//! let a = PeriodicWindow::full(8.0, 4)?;
//! // ...and a keep-out window active only in the last quarter of each
//! // 16-cycle period (non-double-buffered link with an ir top loop).
//! let b = PeriodicWindow::trailing(16.0, 4.0, 2)?;
//! assert_eq!(a.measure(), 32.0);
//! assert_eq!(b.measure(), 8.0);
//! // `a` already covers the whole timeline, so the union is everything.
//! let u = union_measure(&[a, b]);
//! assert_eq!(u.value(), 32.0);
//! assert!(u.is_exact());
//! # Ok::<(), ulm_periodic::WindowError>(())
//! ```

mod sweep;
mod window;

pub use sweep::{
    intersection_measure, union_measure, union_measure_scratch, union_measure_with, Exactness,
    Measure, UnionOptions, UnionScratch,
};
pub use window::{PeriodicWindow, WindowError};
