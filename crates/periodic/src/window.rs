//! The [`PeriodicWindow`] type: `Z` repetitions of an active interval
//! `[S, S+X)` inside a period of length `Mem_CC`.

use std::error::Error;
use std::fmt;

/// A finite periodic window function (Fig. 2a of the paper).
///
/// The function is *active* on `[k*P + S, k*P + S + X)` for
/// `k = 0 .. Z-1`, where `P` is the period, `S` the start offset, `X` the
/// active length and `Z` the number of periods. Values are `f64` because
/// the model produces fractional active lengths (`X_REQ = Mem_CC / n` for
/// an `n`-fold irrelevant top loop); periods themselves are integral cycle
/// counts represented exactly.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PeriodicWindow {
    period: f64,
    start: f64,
    len: f64,
    count: u64,
}

/// Error for invalid window parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowError {
    /// The period must be positive and finite.
    BadPeriod(f64),
    /// `start`/`len` must be non-negative with `start + len <= period`.
    BadInterval {
        /// Offending start offset.
        start: f64,
        /// Offending active length.
        len: f64,
        /// The window's period.
        period: f64,
    },
}

impl fmt::Display for WindowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WindowError::BadPeriod(p) => write!(f, "period must be positive and finite, got {p}"),
            WindowError::BadInterval { start, len, period } => write!(
                f,
                "active interval [start={start}, start+len={}) must lie within one \
                 period of length {period}",
                start + len
            ),
        }
    }
}

impl Error for WindowError {}

impl PeriodicWindow {
    /// Builds a window with explicit period, start offset, active length
    /// and period count.
    ///
    /// # Errors
    ///
    /// Returns [`WindowError`] if the period is not positive/finite or the
    /// active interval does not fit inside one period.
    pub fn new(period: f64, start: f64, len: f64, count: u64) -> Result<Self, WindowError> {
        if !(period.is_finite() && period > 0.0) {
            return Err(WindowError::BadPeriod(period));
        }
        // Tolerate tiny floating-point overshoot from X = P / n * n round
        // trips, then clamp.
        let eps = period * 1e-12;
        if !(start.is_finite() && len.is_finite())
            || start < 0.0
            || len < 0.0
            || start + len > period + eps
        {
            return Err(WindowError::BadInterval { start, len, period });
        }
        let len = len.min(period - start);
        Ok(Self {
            period,
            start,
            len,
            count,
        })
    }

    /// A window active for the whole of each period (a double-buffered or
    /// relevant-top-loop link: memory updating may fully overlap compute).
    pub fn full(period: f64, count: u64) -> Result<Self, WindowError> {
        Self::new(period, 0.0, period, count)
    }

    /// A window active only during the *last* `len` cycles of each period —
    /// the paper's "Mem Update Keep-Out Zone" shape for non-double-buffered
    /// memories whose top loop is irrelevant (Fig. 3 d-f).
    pub fn trailing(period: f64, len: f64, count: u64) -> Result<Self, WindowError> {
        let len = len.min(period);
        Self::new(period, period - len, len, count)
    }

    /// Period length `Mem_CC`.
    pub fn period(&self) -> f64 {
        self.period
    }

    /// Active start offset `S` within a period.
    pub fn start(&self) -> f64 {
        self.start
    }

    /// Active length `X` within a period.
    pub fn len(&self) -> f64 {
        self.len
    }

    /// True if the active length is zero (the window never opens).
    pub fn is_empty(&self) -> bool {
        self.len == 0.0 || self.count == 0
    }

    /// Number of periods `Z`.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total timeline covered: `Z * Mem_CC`.
    pub fn span(&self) -> f64 {
        self.period * self.count as f64
    }

    /// Total active measure: `X * Z` (the paper's `MUW_u = X_REQ x Z`).
    pub fn measure(&self) -> f64 {
        self.len * self.count as f64
    }

    /// True if the window is active for the whole of every period.
    pub fn is_full(&self) -> bool {
        self.start == 0.0 && self.len == self.period
    }

    /// The `k`-th active interval `[lo, hi)` on the absolute timeline.
    ///
    /// # Panics
    ///
    /// Panics if `k >= count`.
    pub fn interval(&self, k: u64) -> (f64, f64) {
        assert!(k < self.count, "interval index {k} out of {}", self.count);
        let base = self.period * k as f64 + self.start;
        (base, base + self.len)
    }

    /// Restricts the window to the timeline prefix `[0, span)` by reducing
    /// the period count (used to align windows of unequal spans).
    pub fn truncated_to_span(&self, span: f64) -> Self {
        let count = ((span / self.period).floor() as u64).min(self.count);
        Self { count, ..*self }
    }
}

impl fmt::Display for PeriodicWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "window(P={}, S={}, X={}, Z={})",
            self.period, self.start, self.len, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_window_spans_period() {
        let w = PeriodicWindow::full(10.0, 3).unwrap();
        assert!(w.is_full());
        assert_eq!(w.measure(), 30.0);
        assert_eq!(w.span(), 30.0);
        assert_eq!(w.interval(2), (20.0, 30.0));
    }

    #[test]
    fn trailing_window_sits_at_period_end() {
        let w = PeriodicWindow::trailing(12.0, 3.0, 2).unwrap();
        assert_eq!(w.start(), 9.0);
        assert_eq!(w.interval(0), (9.0, 12.0));
        assert_eq!(w.interval(1), (21.0, 24.0));
        assert_eq!(w.measure(), 6.0);
    }

    #[test]
    fn trailing_clamps_oversize_len() {
        let w = PeriodicWindow::trailing(4.0, 9.0, 1).unwrap();
        assert!(w.is_full());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(matches!(
            PeriodicWindow::new(0.0, 0.0, 0.0, 1),
            Err(WindowError::BadPeriod(_))
        ));
        assert!(matches!(
            PeriodicWindow::new(10.0, 6.0, 6.0, 1),
            Err(WindowError::BadInterval { .. })
        ));
        assert!(matches!(
            PeriodicWindow::new(10.0, -1.0, 2.0, 1),
            Err(WindowError::BadInterval { .. })
        ));
        assert!(PeriodicWindow::new(10.0, 0.0, f64::NAN, 1).is_err());
    }

    #[test]
    fn float_round_trip_tolerated() {
        // X = P/n can overshoot by an ulp when recombined; new() clamps.
        let p = 3.0;
        let x = p / 7.0 * 7.0; // may be 3.0000000000000004
        let w = PeriodicWindow::new(p, 0.0, x, 5).unwrap();
        assert!(w.len() <= p);
    }

    #[test]
    fn truncation_reduces_count() {
        let w = PeriodicWindow::full(10.0, 5).unwrap();
        assert_eq!(w.truncated_to_span(32.0).count(), 3);
        assert_eq!(w.truncated_to_span(1000.0).count(), 5);
        assert_eq!(w.truncated_to_span(0.0).count(), 0);
    }

    #[test]
    fn zero_count_window_is_empty() {
        let w = PeriodicWindow::full(10.0, 0).unwrap();
        assert!(w.is_empty());
        assert_eq!(w.measure(), 0.0);
    }
}
