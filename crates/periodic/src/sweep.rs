//! Union and intersection measures of sets of periodic windows.
//!
//! Three strategies, tried in order:
//!
//! 1. **Trivial**: if any window is full (active over its entire span) and
//!    its span covers the longest span, the union is the whole timeline.
//! 2. **Hyperperiod**: when periods form a divisibility chain — which they
//!    always do for windows derived from one temporal loop stack, since
//!    every `Mem_CC` is a prefix product of the same loop list — the union
//!    within one largest period repeats exactly, so one bounded sweep gives
//!    the exact answer.
//! 3. **Direct sweep**: a k-way merge over every active interval; exact but
//!    `O(Σ Z_i)`, used while the total interval count is below a cap.
//!
//! Above the cap the measure falls back to an *independence estimate*
//! (`T * (1 - Π(1 - X_i/P_i))`) clamped to provable bounds, and is marked
//! [`Exactness::Approximate`].

use crate::PeriodicWindow;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Whether a [`Measure`] is exact or a bounded estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exactness {
    /// Computed by exact sweep (trivial, hyperperiod or direct).
    Exact,
    /// Independence estimate clamped to `[max_i |w_i|, min(T, Σ |w_i|)]`.
    Approximate,
}

/// A union/intersection measure together with its exactness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measure {
    value: f64,
    exactness: Exactness,
}

impl Measure {
    fn exact(value: f64) -> Self {
        Self {
            value,
            exactness: Exactness::Exact,
        }
    }

    fn approximate(value: f64) -> Self {
        Self {
            value,
            exactness: Exactness::Approximate,
        }
    }

    /// The measured total length.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// True when the value was computed exactly.
    pub fn is_exact(&self) -> bool {
        self.exactness == Exactness::Exact
    }

    /// The exactness marker.
    pub fn exactness(&self) -> Exactness {
        self.exactness
    }
}

/// Tuning knobs for the union computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct UnionOptions {
    /// Maximum number of individual intervals any exact strategy may
    /// materialize before falling back to the approximation.
    pub max_intervals: u64,
}

impl Default for UnionOptions {
    fn default() -> Self {
        Self {
            max_intervals: 1 << 20,
        }
    }
}

/// Reusable buffers for [`union_measure_scratch`], so repeated union
/// computations (one per DTL port group per candidate mapping) perform no
/// steady-state heap allocations.
#[derive(Debug, Default)]
pub struct UnionScratch {
    live: Vec<PeriodicWindow>,
    periods: Vec<f64>,
    intervals: Vec<(f64, f64)>,
    heap: BinaryHeap<HeapItem>,
}

/// Exact-when-feasible measure of `|∪ windows|` with default options.
///
/// Empty input yields an exact zero. See the module docs for the strategy
/// cascade.
pub fn union_measure(windows: &[PeriodicWindow]) -> Measure {
    union_measure_with(windows, UnionOptions::default())
}

/// [`union_measure`] with explicit [`UnionOptions`].
pub fn union_measure_with(windows: &[PeriodicWindow], opts: UnionOptions) -> Measure {
    union_measure_scratch(windows, opts, &mut UnionScratch::default())
}

/// [`union_measure_with`] reusing caller-provided [`UnionScratch`] buffers.
///
/// Returns the same value (bit for bit) as [`union_measure_with`]; the only
/// difference is where the temporary buffers live.
pub fn union_measure_scratch(
    windows: &[PeriodicWindow],
    opts: UnionOptions,
    scratch: &mut UnionScratch,
) -> Measure {
    scratch.live.clear();
    scratch
        .live
        .extend(windows.iter().copied().filter(|w| !w.is_empty()));
    let live = &scratch.live;
    if live.is_empty() {
        return Measure::exact(0.0);
    }
    if live.len() == 1 {
        return Measure::exact(live[0].measure());
    }
    let total_span = live.iter().map(|w| w.span()).fold(0.0, f64::max);

    // Strategy 1: a full window covering the longest span absorbs all.
    if live
        .iter()
        .any(|w| w.is_full() && w.span() >= total_span - total_span * 1e-12)
    {
        return Measure::exact(total_span);
    }

    // Strategy 2: divisibility-chain hyperperiod sweep.
    if let Some(m) = try_hyperperiod_union(
        live,
        total_span,
        opts,
        &mut scratch.periods,
        &mut scratch.intervals,
    ) {
        return m;
    }

    // Strategy 3: direct sweep over all intervals.
    let total_intervals: u64 = live.iter().map(|w| w.count()).sum();
    if total_intervals <= opts.max_intervals {
        return Measure::exact(sweep_union(live, &mut scratch.heap));
    }

    // Fallback: independence estimate with provable clamps.
    let density_gap: f64 = live.iter().map(|w| 1.0 - w.len() / w.period()).product();
    let estimate = total_span * (1.0 - density_gap);
    let lower = live.iter().map(|w| w.measure()).fold(0.0, f64::max);
    let upper = live
        .iter()
        .map(|w| w.measure())
        .sum::<f64>()
        .min(total_span);
    Measure::approximate(estimate.clamp(lower, upper))
}

/// Exact measure of `|a ∩ b|` (needed by consumers that intersect allowed
/// windows, e.g. for port-arbitration what-ifs), computed by direct sweep.
///
/// Returns an approximate product-density estimate above the interval cap.
pub fn intersection_measure(a: &PeriodicWindow, b: &PeriodicWindow, opts: UnionOptions) -> Measure {
    if a.is_empty() || b.is_empty() {
        return Measure::exact(0.0);
    }
    if a.count() + b.count() <= opts.max_intervals {
        return Measure::exact(sweep_intersection(a, b));
    }
    let span = a.span().min(b.span());
    let est = span * (a.len() / a.period()) * (b.len() / b.period());
    Measure::approximate(est.min(a.measure()).min(b.measure()))
}

/// Hyperperiod fast path: periods must form a divisibility chain and the
/// spans must all equal the longest span (true for windows derived from a
/// common loop stack). Returns `None` when inapplicable or over the cap.
fn try_hyperperiod_union(
    windows: &[PeriodicWindow],
    total_span: f64,
    opts: UnionOptions,
    periods: &mut Vec<f64>,
    intervals: &mut Vec<(f64, f64)>,
) -> Option<Measure> {
    let eps = total_span * 1e-9;
    if windows.iter().any(|w| (w.span() - total_span).abs() > eps) {
        return None;
    }
    periods.clear();
    periods.extend(windows.iter().map(|w| w.period()));
    periods.sort_by(f64::total_cmp);
    let hyper = *periods.last().expect("non-empty");
    for p in periods.iter() {
        let ratio = hyper / p;
        if (ratio - ratio.round()).abs() > 1e-9 {
            return None;
        }
    }
    let reps: u64 = windows
        .iter()
        .map(|w| (hyper / w.period()).round() as u64)
        .sum();
    if reps > opts.max_intervals {
        return None;
    }
    // Collect every interval within [0, hyper) and sweep once.
    intervals.clear();
    intervals.reserve(reps as usize);
    for w in windows {
        let n = (hyper / w.period()).round() as u64;
        for k in 0..n {
            let base = w.period() * k as f64;
            intervals.push((base + w.start(), base + w.start() + w.len()));
        }
    }
    let per_hyper = merged_length(intervals);
    let repeats = total_span / hyper;
    Some(Measure::exact(per_hyper * repeats))
}

/// Sorts intervals and returns the measure of their union.
fn merged_length(intervals: &mut [(f64, f64)]) -> f64 {
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let mut cur: Option<(f64, f64)> = None;
    for &(lo, hi) in intervals.iter() {
        match cur {
            None => cur = Some((lo, hi)),
            Some((clo, chi)) => {
                if lo <= chi {
                    cur = Some((clo, chi.max(hi)));
                } else {
                    total += chi - clo;
                    cur = Some((lo, hi));
                }
            }
        }
    }
    if let Some((clo, chi)) = cur {
        total += chi - clo;
    }
    total
}

/// Heap entry for the k-way interval merge: next interval of window `idx`.
#[derive(Debug)]
struct HeapItem {
    lo: f64,
    hi: f64,
    idx: usize,
    k: u64,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.lo == other.lo
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on interval start (BinaryHeap is a max-heap).
        other.lo.total_cmp(&self.lo)
    }
}

/// Exact union measure by k-way merge over all windows' intervals.
fn sweep_union(windows: &[PeriodicWindow], heap: &mut BinaryHeap<HeapItem>) -> f64 {
    heap.clear();
    for (idx, w) in windows.iter().enumerate() {
        let (lo, hi) = w.interval(0);
        heap.push(HeapItem { lo, hi, idx, k: 0 });
    }
    let mut total = 0.0;
    let mut cur: Option<(f64, f64)> = None;
    while let Some(item) = heap.pop() {
        let w = &windows[item.idx];
        if item.k + 1 < w.count() {
            let (lo, hi) = w.interval(item.k + 1);
            heap.push(HeapItem {
                lo,
                hi,
                idx: item.idx,
                k: item.k + 1,
            });
        }
        match cur {
            None => cur = Some((item.lo, item.hi)),
            Some((clo, chi)) => {
                if item.lo <= chi {
                    cur = Some((clo, chi.max(item.hi)));
                } else {
                    total += chi - clo;
                    cur = Some((item.lo, item.hi));
                }
            }
        }
    }
    if let Some((clo, chi)) = cur {
        total += chi - clo;
    }
    total
}

/// Exact intersection measure of two windows by dual-pointer sweep.
fn sweep_intersection(a: &PeriodicWindow, b: &PeriodicWindow) -> f64 {
    let mut total = 0.0;
    let (mut ia, mut ib) = (0u64, 0u64);
    while ia < a.count() && ib < b.count() {
        let (alo, ahi) = a.interval(ia);
        let (blo, bhi) = b.interval(ib);
        let lo = alo.max(blo);
        let hi = ahi.min(bhi);
        if hi > lo {
            total += hi - lo;
        }
        if ahi <= bhi {
            ia += 1;
        } else {
            ib += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeriodicWindow;

    fn w(period: f64, start: f64, len: f64, count: u64) -> PeriodicWindow {
        PeriodicWindow::new(period, start, len, count).unwrap()
    }

    /// Brute-force union measure on an integer grid (windows must have
    /// integer parameters).
    fn brute_union(windows: &[PeriodicWindow]) -> f64 {
        let span = windows.iter().map(|x| x.span()).fold(0.0, f64::max) as usize;
        let mut grid = vec![false; span];
        for win in windows {
            for k in 0..win.count() {
                let (lo, hi) = win.interval(k);
                for cell in grid
                    .iter_mut()
                    .take(hi.round() as usize)
                    .skip(lo.round() as usize)
                {
                    *cell = true;
                }
            }
        }
        grid.iter().filter(|&&b| b).count() as f64
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(union_measure(&[]).value(), 0.0);
        assert!(union_measure(&[]).is_exact());
    }

    #[test]
    fn single_window_is_its_measure() {
        let a = w(10.0, 2.0, 3.0, 4);
        let m = union_measure(&[a]);
        assert_eq!(m.value(), 12.0);
        assert!(m.is_exact());
    }

    #[test]
    fn full_window_absorbs_everything() {
        let a = PeriodicWindow::full(5.0, 8).unwrap();
        let b = w(10.0, 1.0, 2.0, 4);
        let m = union_measure(&[a, b]);
        assert_eq!(m.value(), 40.0);
        assert!(m.is_exact());
    }

    #[test]
    fn disjoint_windows_add() {
        // Period 10: [0,2) and [5,7) per period never overlap.
        let a = w(10.0, 0.0, 2.0, 3);
        let b = w(10.0, 5.0, 2.0, 3);
        assert_eq!(union_measure(&[a, b]).value(), 12.0);
    }

    #[test]
    fn overlapping_windows_merge() {
        let a = w(10.0, 0.0, 4.0, 2);
        let b = w(10.0, 2.0, 4.0, 2);
        // Per period: [0,4) u [2,6) = 6 cycles.
        assert_eq!(union_measure(&[a, b]).value(), 12.0);
    }

    #[test]
    fn hyperperiod_path_matches_brute_force() {
        // Divisibility chain 4 | 8 | 16, trailing windows.
        let a = PeriodicWindow::trailing(4.0, 1.0, 8).unwrap();
        let b = PeriodicWindow::trailing(8.0, 3.0, 4).unwrap();
        let c = PeriodicWindow::trailing(16.0, 5.0, 2).unwrap();
        let set = [a, b, c];
        let m = union_measure(&set);
        assert!(m.is_exact());
        assert_eq!(m.value(), brute_union(&set));
    }

    #[test]
    fn non_chain_periods_use_direct_sweep() {
        // 6 and 10 do not divide each other; spans also differ (30 vs 30).
        let a = w(6.0, 1.0, 2.0, 5);
        let b = w(10.0, 4.0, 3.0, 3);
        let m = union_measure(&[a, b]);
        assert!(m.is_exact());
        assert_eq!(m.value(), brute_union(&[a, b]));
    }

    #[test]
    fn unequal_spans_handled_by_direct_sweep() {
        let a = w(10.0, 0.0, 5.0, 2); // span 20
        let b = w(4.0, 1.0, 2.0, 10); // span 40
        let m = union_measure(&[a, b]);
        assert!(m.is_exact());
        assert_eq!(m.value(), brute_union(&[a, b]));
    }

    #[test]
    fn cap_triggers_clamped_approximation() {
        // Periods 6 and 10 break the divisibility chain, so only the direct
        // sweep could be exact — and the cap of 10 intervals forbids it.
        let a = w(6.0, 3.0, 1.0, 1_000);
        let b = w(10.0, 0.0, 2.0, 600);
        let opts = UnionOptions { max_intervals: 10 };
        let m = union_measure_with(&[a, b], opts);
        assert!(!m.is_exact());
        let lower = a.measure().max(b.measure());
        let upper = (a.measure() + b.measure()).min(6000.0);
        assert!(m.value() >= lower && m.value() <= upper, "{}", m.value());
        // And the exact answer lies within the same clamp.
        let exact = union_measure(&[a, b]);
        assert!(exact.is_exact());
        assert!(exact.value() >= lower && exact.value() <= upper);
    }

    #[test]
    fn intersection_of_identical_windows_is_their_measure() {
        let a = w(10.0, 2.0, 3.0, 4);
        let m = intersection_measure(&a, &a, UnionOptions::default());
        assert_eq!(m.value(), a.measure());
        assert!(m.is_exact());
    }

    #[test]
    fn intersection_of_disjoint_windows_is_zero() {
        let a = w(10.0, 0.0, 2.0, 4);
        let b = w(10.0, 5.0, 2.0, 4);
        assert_eq!(
            intersection_measure(&a, &b, UnionOptions::default()).value(),
            0.0
        );
    }

    #[test]
    fn intersection_cross_period() {
        // a: [0,6) of 8; b: [4,10) of 12 -> overlaps vary per period.
        let a = w(8.0, 0.0, 6.0, 3);
        let b = w(12.0, 4.0, 6.0, 2);
        let m = intersection_measure(&a, &b, UnionOptions::default());
        // Manual: a active [0,6),[8,14),[16,22); b active [4,10),[16,22).
        // Overlaps: [4,6) =2, [8,10)=2, [16,22)=6 -> 10.
        assert_eq!(m.value(), 10.0);
    }

    #[test]
    fn zero_length_windows_ignored() {
        let a = w(10.0, 0.0, 0.0, 4);
        let b = w(10.0, 1.0, 2.0, 4);
        assert_eq!(union_measure(&[a, b]).value(), 8.0);
    }
}
