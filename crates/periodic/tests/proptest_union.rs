//! Property tests: the union/intersection sweeps agree with a brute-force
//! integer-grid oracle on randomized window sets.

use proptest::prelude::*;
use ulm_periodic::{intersection_measure, union_measure, PeriodicWindow, UnionOptions};

/// Strategy for a small integer-parameter window.
fn arb_window() -> impl Strategy<Value = PeriodicWindow> {
    (2u64..24, 1u64..6).prop_flat_map(|(period, count)| {
        (0..period, Just(period), Just(count)).prop_flat_map(move |(start, period, count)| {
            (0..=(period - start)).prop_map(move |len| {
                PeriodicWindow::new(period as f64, start as f64, len as f64, count)
                    .expect("constructed within bounds")
            })
        })
    })
}

/// Strategy for chained-period windows (period = base * 2^i), the shape the
/// latency model actually produces, with equal spans.
fn arb_chain() -> impl Strategy<Value = Vec<PeriodicWindow>> {
    (1u64..6, 1u64..4).prop_flat_map(|(base, levels)| {
        let span = base * (1 << levels); // hyperperiod = largest period
        proptest::collection::vec((0u64..3, 0u64..100), 1..=levels as usize).prop_map(
            move |params| {
                params
                    .iter()
                    .enumerate()
                    .map(|(i, &(_, seed))| {
                        let period = base * (1 << (i + 1));
                        let count = span / period;
                        let start = seed % period;
                        let len = (seed / 7) % (period - start + 1);
                        PeriodicWindow::new(period as f64, start as f64, len as f64, count)
                            .expect("constructed within bounds")
                    })
                    .collect()
            },
        )
    })
}

fn brute_union(windows: &[PeriodicWindow]) -> f64 {
    let span = windows.iter().map(|w| w.span()).fold(0.0, f64::max) as usize;
    let mut grid = vec![false; span];
    for w in windows {
        for k in 0..w.count() {
            let (lo, hi) = w.interval(k);
            for cell in grid
                .iter_mut()
                .take(hi.round() as usize)
                .skip(lo.round() as usize)
            {
                *cell = true;
            }
        }
    }
    grid.iter().filter(|&&b| b).count() as f64
}

fn brute_intersection(a: &PeriodicWindow, b: &PeriodicWindow) -> f64 {
    let span = a.span().min(b.span()) as usize;
    let mark = |w: &PeriodicWindow| {
        let mut grid = vec![false; span];
        for k in 0..w.count() {
            let (lo, hi) = w.interval(k);
            for cell in grid
                .iter_mut()
                .take((hi.round() as usize).min(span))
                .skip((lo.round() as usize).min(span))
            {
                *cell = true;
            }
        }
        grid
    };
    let (ga, gb) = (mark(a), mark(b));
    ga.iter().zip(gb.iter()).filter(|(x, y)| **x && **y).count() as f64
}

proptest! {
    #[test]
    fn union_matches_brute_force(windows in proptest::collection::vec(arb_window(), 1..6)) {
        let m = union_measure(&windows);
        prop_assert!(m.is_exact());
        let expected = brute_union(&windows);
        prop_assert!((m.value() - expected).abs() < 1e-6,
            "sweep {} != brute {expected}", m.value());
    }

    #[test]
    fn chained_union_matches_brute_force(windows in arb_chain()) {
        let m = union_measure(&windows);
        prop_assert!(m.is_exact());
        let expected = brute_union(&windows);
        prop_assert!((m.value() - expected).abs() < 1e-6,
            "sweep {} != brute {expected}", m.value());
    }

    #[test]
    fn union_bounds_hold(windows in proptest::collection::vec(arb_window(), 1..6)) {
        let m = union_measure(&windows);
        let max_single = windows.iter().map(|w| w.measure()).fold(0.0, f64::max);
        let sum: f64 = windows.iter().map(|w| w.measure()).sum();
        let span = windows.iter().map(|w| w.span()).fold(0.0, f64::max);
        prop_assert!(m.value() + 1e-9 >= max_single);
        prop_assert!(m.value() <= sum.min(span) + 1e-9);
    }

    #[test]
    fn approximation_respects_bounds(windows in proptest::collection::vec(arb_window(), 2..6)) {
        let opts = UnionOptions { max_intervals: 0 };
        let m = ulm_periodic::union_measure_with(&windows, opts);
        let max_single = windows.iter().map(|w| w.measure()).fold(0.0, f64::max);
        let sum: f64 = windows.iter().map(|w| w.measure()).sum();
        let span = windows.iter().map(|w| w.span()).fold(0.0, f64::max);
        prop_assert!(m.value() + 1e-9 >= max_single);
        prop_assert!(m.value() <= sum.min(span) + 1e-9);
    }

    #[test]
    fn intersection_matches_brute_force(a in arb_window(), b in arb_window()) {
        let m = intersection_measure(&a, &b, UnionOptions::default());
        prop_assert!(m.is_exact());
        let expected = brute_intersection(&a, &b);
        prop_assert!((m.value() - expected).abs() < 1e-6,
            "sweep {} != brute {expected}", m.value());
    }

    #[test]
    fn intersection_is_commutative(a in arb_window(), b in arb_window()) {
        let ab = intersection_measure(&a, &b, UnionOptions::default());
        let ba = intersection_measure(&b, &a, UnionOptions::default());
        prop_assert!((ab.value() - ba.value()).abs() < 1e-9);
    }
}
