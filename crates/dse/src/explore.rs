//! Per-design mapping optimization, latency-area evaluation and Pareto
//! extraction.

use crate::pool::{DesignParams, DesignPoint};
use ulm_arch::AreaModel;
use ulm_mapper::{Mapper, MapperError, MapperOptions, Objective};
use ulm_workload::Layer;

/// One evaluated hardware design.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DsePoint {
    /// The design's free parameters.
    pub params: DesignParams,
    /// Best (mapping-optimized) total latency in cycles.
    pub latency: f64,
    /// Area in mm², GB excluded (as in Fig. 8).
    pub area_mm2: f64,
    /// MAC utilization at the best mapping.
    pub utilization: f64,
    /// Temporal stall of the best mapping, cycles.
    pub ss_overall: f64,
}

/// DSE configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExploreOptions {
    /// Mapping-search settings per design point.
    pub mapper: MapperOptions,
    /// Area-model parameters.
    pub area: AreaModel,
    /// Worker threads for [`explore`]: `None` or `Some(1)` evaluates
    /// serially; `Some(n)` splits the design list across `n` threads.
    /// Results are merged in design order, so the output is identical for
    /// every thread count.
    pub parallelism: Option<usize>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        Self {
            // DSE sweeps thousands of designs: keep per-design mapping
            // search light but meaningful.
            mapper: MapperOptions {
                max_exhaustive: 2_000,
                samples: 60,
                ..MapperOptions::default()
            },
            area: AreaModel::default(),
            parallelism: None,
        }
    }
}

/// Evaluates one design: optimizes the mapping for lowest latency and
/// computes the GB-excluded area.
///
/// # Errors
///
/// Propagates [`MapperError::NoLegalMapping`] when the design cannot run
/// the layer at all (e.g. registers too small for the spatial block).
pub fn evaluate_design(
    design: &DesignPoint,
    layer: &Layer,
    opts: &ExploreOptions,
) -> Result<DsePoint, MapperError> {
    let mapper = Mapper::new(&design.arch, layer, design.spatial.clone()).with_options(opts.mapper);
    let result = mapper.search(Objective::Latency)?;
    let h = design.arch.hierarchy();
    let exclude: Vec<_> = h.find("GB").into_iter().collect();
    let area_mm2 = opts.area.total_mm2(&design.arch, &exclude);
    Ok(DsePoint {
        params: design.params,
        latency: result.best.latency.cc_total,
        area_mm2,
        utilization: result.best.latency.utilization,
        ss_overall: result.best.latency.ss_overall,
    })
}

/// Evaluates every design, silently skipping ones with no legal mapping.
///
/// With `opts.parallelism = Some(n)` (n > 1) the designs are split across
/// `n` threads; each design is still evaluated by the same deterministic
/// seeded search and the results are merged back in design order, so the
/// returned vector is byte-identical to the serial one.
pub fn explore(designs: &[DesignPoint], layer: &Layer, opts: &ExploreOptions) -> Vec<DsePoint> {
    let threads = opts.parallelism.unwrap_or(1).clamp(1, designs.len().max(1));
    if threads <= 1 {
        return designs
            .iter()
            .filter_map(|d| evaluate_design(d, layer, opts).ok())
            .collect();
    }
    let mut slots: Vec<Option<DsePoint>> = vec![None; designs.len()];
    let chunk = designs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (d_chunk, s_chunk) in designs.chunks(chunk).zip(slots.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (d, slot) in d_chunk.iter().zip(s_chunk.iter_mut()) {
                    *slot = evaluate_design(d, layer, opts).ok();
                }
            });
        }
    });
    slots.into_iter().flatten().collect()
}

/// Indices of the latency-area Pareto front (minimizing both), sorted by
/// increasing area.
pub fn pareto_front(points: &[DsePoint]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .area_mm2
            .partial_cmp(&points[b].area_mm2)
            .expect("areas are finite")
            .then(
                points[a]
                    .latency
                    .partial_cmp(&points[b].latency)
                    .expect("latencies are finite"),
            )
    });
    let mut front = Vec::new();
    let mut best_latency = f64::INFINITY;
    for idx in order {
        if points[idx].latency < best_latency {
            best_latency = points[idx].latency;
            front.push(idx);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{build_design, enumerate_designs, MemoryPool};
    use ulm_workload::Precision;

    fn small_layer() -> Layer {
        Layer::matmul("l", 64, 64, 128, Precision::int8_out24())
    }

    fn quick_opts() -> ExploreOptions {
        ExploreOptions {
            mapper: MapperOptions {
                max_exhaustive: 200,
                samples: 20,
                ..MapperOptions::default()
            },
            ..ExploreOptions::default()
        }
    }

    #[test]
    fn single_design_evaluates() {
        let d = build_design(DesignParams {
            array_side: 16,
            w_reg_words: 1,
            i_reg_words: 1,
            o_reg_words: 1,
            w_lb_kb: 16,
            i_lb_kb: 8,
            gb_bw_bits: 128,
        });
        let p = evaluate_design(&d, &small_layer(), &quick_opts()).unwrap();
        assert!(p.latency > 0.0);
        assert!(p.area_mm2 > 0.0);
        assert!(p.utilization > 0.0 && p.utilization <= 1.0);
    }

    #[test]
    fn more_memory_costs_more_area() {
        let base = DesignParams {
            array_side: 16,
            w_reg_words: 1,
            i_reg_words: 1,
            o_reg_words: 1,
            w_lb_kb: 4,
            i_lb_kb: 4,
            gb_bw_bits: 128,
        };
        let small = evaluate_design(&build_design(base), &small_layer(), &quick_opts()).unwrap();
        let big = evaluate_design(
            &build_design(DesignParams {
                w_lb_kb: 64,
                i_lb_kb: 64,
                ..base
            }),
            &small_layer(),
            &quick_opts(),
        )
        .unwrap();
        assert!(big.area_mm2 > small.area_mm2);
    }

    #[test]
    fn parallel_explore_matches_serial_exactly() {
        let pool = MemoryPool {
            w_reg_words_per_mac: vec![1, 2],
            i_reg_words_per_mac: vec![1, 2],
            o_reg_words_per_pe: vec![1],
            w_lb_kb: vec![4, 16],
            i_lb_kb: vec![4, 16],
        };
        let designs = enumerate_designs(&pool, &[16], 128);
        let serial = explore(&designs, &small_layer(), &quick_opts());
        for threads in [2usize, 3, 8] {
            let par = explore(
                &designs,
                &small_layer(),
                &ExploreOptions {
                    parallelism: Some(threads),
                    ..quick_opts()
                },
            );
            assert_eq!(serial, par, "parallelism={threads} diverged from serial");
        }
    }

    #[test]
    fn pareto_front_is_monotone() {
        let pool = MemoryPool {
            w_reg_words_per_mac: vec![1, 2],
            i_reg_words_per_mac: vec![1],
            o_reg_words_per_pe: vec![1],
            w_lb_kb: vec![4, 16],
            i_lb_kb: vec![4, 16],
        };
        let designs = enumerate_designs(&pool, &[16], 128);
        let points = explore(&designs, &small_layer(), &quick_opts());
        assert!(!points.is_empty());
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        // Along the front, area increases and latency strictly decreases.
        for w in front.windows(2) {
            assert!(points[w[1]].area_mm2 >= points[w[0]].area_mm2);
            assert!(points[w[1]].latency < points[w[0]].latency);
        }
        // Every non-front point is dominated by some front point.
        for (i, p) in points.iter().enumerate() {
            if front.contains(&i) {
                continue;
            }
            assert!(front.iter().any(|&f| {
                points[f].area_mm2 <= p.area_mm2 + 1e-12 && points[f].latency <= p.latency + 1e-9
            }));
        }
    }
}
