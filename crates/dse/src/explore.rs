//! Per-design mapping optimization, latency-area evaluation and Pareto
//! extraction.

use crate::pool::{build_design, DesignParams, DesignPoint};
use ulm_arch::AreaModel;
pub use ulm_mapper::SearchStats;
use ulm_mapper::{Mapper, MapperError, MapperOptions, Objective};
use ulm_mapping::MappedLayer;
use ulm_model::{
    InputDelta, LatencyModel, MappingShape, ModelScratch, RebuildStats, SpecializedModel,
    SurrogateStats,
};
use ulm_workload::Layer;

/// One evaluated hardware design.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DsePoint {
    /// The design's free parameters.
    pub params: DesignParams,
    /// Best (mapping-optimized) total latency in cycles.
    pub latency: f64,
    /// Area in mm², GB excluded (as in Fig. 8).
    pub area_mm2: f64,
    /// MAC utilization at the best mapping.
    pub utilization: f64,
    /// Temporal stall of the best mapping, cycles.
    pub ss_overall: f64,
}

/// DSE configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExploreOptions {
    /// Mapping-search settings per design point.
    pub mapper: MapperOptions,
    /// Area-model parameters.
    pub area: AreaModel,
    /// Worker threads for [`explore`]: `None` or `Some(1)` evaluates
    /// serially; `Some(n)` splits the design list across `n` threads.
    /// Results are merged in design order, so the output is identical for
    /// every thread count.
    pub parallelism: Option<usize>,
    /// Worker threads *within* each design's ordering search (routed to
    /// [`Mapper::with_parallelism`]). Useful when the design list is
    /// short but each mapping space is large; the per-design result is
    /// identical at every setting.
    pub mapping_parallelism: Option<usize>,
    /// SoA lane count for each design's ordering search (routed to
    /// [`Mapper::with_batch_lanes`]). `None` uses the mapper default; the
    /// per-design result is bit-identical at every lane count.
    pub batch_lanes: Option<usize>,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        Self {
            // DSE sweeps thousands of designs: keep per-design mapping
            // search light but meaningful.
            mapper: MapperOptions {
                max_exhaustive: 2_000,
                samples: 60,
                ..MapperOptions::default()
            },
            area: AreaModel::default(),
            parallelism: None,
            mapping_parallelism: None,
            batch_lanes: None,
        }
    }
}

/// Aggregate search-effort counters for one [`explore_with_stats`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DseStats {
    /// Designs evaluated (including infeasible ones).
    pub designs: usize,
    /// Designs with at least one legal mapping.
    pub feasible: usize,
    /// Ordering-search counters summed across all designs (the shared
    /// [`SearchStats`] from `ulm-mapper`).
    pub search: SearchStats,
    /// Wall-clock exploration time in milliseconds.
    pub wall_ms: f64,
}

/// Evaluates one design: optimizes the mapping for lowest latency and
/// computes the GB-excluded area.
///
/// # Errors
///
/// Propagates [`MapperError::NoLegalMapping`] when the design cannot run
/// the layer at all (e.g. registers too small for the spatial block).
pub fn evaluate_design(
    design: &DesignPoint,
    layer: &Layer,
    opts: &ExploreOptions,
) -> Result<DsePoint, MapperError> {
    evaluate_design_counted(design, layer, opts).map(|(p, _)| p)
}

fn evaluate_design_counted(
    design: &DesignPoint,
    layer: &Layer,
    opts: &ExploreOptions,
) -> Result<(DsePoint, SearchStats), MapperError> {
    let mapper = Mapper::new(&design.arch, layer, design.spatial.clone())
        .with_options(opts.mapper)
        .with_parallelism(opts.mapping_parallelism)
        .with_batch_lanes(opts.batch_lanes);
    let result = mapper.search(Objective::Latency)?;
    let h = design.arch.hierarchy();
    let exclude: Vec<_> = h.find("GB").into_iter().collect();
    let area_mm2 = opts.area.total_mm2(&design.arch, &exclude);
    Ok((
        DsePoint {
            params: design.params,
            latency: result.best.latency.cc_total,
            area_mm2,
            utilization: result.best.latency.utilization,
            ss_overall: result.best.latency.ss_overall,
        },
        result.stats,
    ))
}

/// Evaluates every design, silently skipping ones with no legal mapping.
///
/// With `opts.parallelism = Some(n)` (n > 1) the designs are split across
/// `n` threads; each design is still evaluated by the same deterministic
/// seeded search and the results are merged back in design order, so the
/// returned vector is byte-identical to the serial one.
pub fn explore(designs: &[DesignPoint], layer: &Layer, opts: &ExploreOptions) -> Vec<DsePoint> {
    explore_with_stats(designs, layer, opts).0
}

/// [`explore`], additionally returning aggregate search-effort counters.
/// The point list is identical to [`explore`]'s; the counters are summed
/// in design order and deterministic for a fixed
/// `(parallelism, mapping_parallelism)` setting.
pub fn explore_with_stats(
    designs: &[DesignPoint],
    layer: &Layer,
    opts: &ExploreOptions,
) -> (Vec<DsePoint>, DseStats) {
    let t0 = std::time::Instant::now();
    let threads = opts.parallelism.unwrap_or(1).clamp(1, designs.len().max(1));
    let mut slots: Vec<Option<(DsePoint, SearchStats)>> = vec![None; designs.len()];
    if threads <= 1 {
        for (d, slot) in designs.iter().zip(slots.iter_mut()) {
            *slot = evaluate_design_counted(d, layer, opts).ok();
        }
    } else {
        let chunk = designs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (d_chunk, s_chunk) in designs.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (d, slot) in d_chunk.iter().zip(s_chunk.iter_mut()) {
                        *slot = evaluate_design_counted(d, layer, opts).ok();
                    }
                });
            }
        });
    }
    let mut stats = DseStats {
        designs: designs.len(),
        ..DseStats::default()
    };
    let mut points = Vec::with_capacity(designs.len());
    for (point, counters) in slots.into_iter().flatten() {
        stats.feasible += 1;
        stats.search.absorb(&counters);
        points.push(point);
    }
    stats.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (points, stats)
}

/// Incremental-evaluation counters for one [`explore_bw_sweep`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepStats {
    /// Distinct (non-bandwidth) designs in the sweep.
    pub designs: usize,
    /// Designs with at least one legal mapping.
    pub feasible: usize,
    /// Sweep points produced (`feasible × bandwidths`).
    pub points: usize,
    /// Full evaluations: one mapping search + from-scratch lowering per
    /// feasible design, at its first bandwidth.
    pub full_evals: usize,
    /// Incremental re-evaluations of bandwidth neighbors.
    pub delta_evals: usize,
    /// Lowering stages recomputed across all points.
    pub stages_rebuilt: u64,
    /// Lowering stages reused from the previous point.
    pub stages_skipped: u64,
    /// Wall-clock sweep time in milliseconds.
    pub wall_ms: f64,
}

/// One design's sweep output: its points plus local counters.
type DesignSweep = (Vec<DsePoint>, RebuildStats, usize);

/// Sweeps every design across `gb_bws`, evaluating bandwidth neighbors
/// incrementally.
///
/// Points are ordered to maximize reuse: all bandwidth variants of one
/// design are evaluated consecutively. The mapping is searched once per
/// design (at `gb_bws[0]`) and the resulting incumbent mapping is then
/// re-evaluated at each remaining bandwidth through
/// [`LatencyModel::evaluate_delta_fast`] — a pure-`BANDWIDTH`
/// [`InputDelta`], since bandwidth variants of a design differ only in
/// the GB port rates. Delta evaluation is bit-identical to a cold
/// evaluation of the same mapping on the variant architecture, so the
/// returned points are exactly what a per-point from-scratch sweep of
/// the incumbent mapping would produce. Designs with no legal mapping
/// are silently skipped, as in [`explore`].
///
/// `gb_bws` must be non-empty; each design's `gb_bw_bits` field is
/// overridden by the swept values. With `opts.parallelism = Some(n)` the
/// designs are split across `n` threads and merged in design order, so
/// the output is identical for every thread count.
pub fn explore_bw_sweep(
    designs: &[DesignPoint],
    gb_bws: &[u64],
    layer: &Layer,
    opts: &ExploreOptions,
) -> (Vec<DsePoint>, SweepStats) {
    assert!(
        !gb_bws.is_empty(),
        "bandwidth sweep needs at least one value"
    );
    let t0 = std::time::Instant::now();
    let threads = opts.parallelism.unwrap_or(1).clamp(1, designs.len().max(1));
    let mut slots: Vec<Option<DesignSweep>> = vec![None; designs.len()];
    if threads <= 1 {
        for (d, slot) in designs.iter().zip(slots.iter_mut()) {
            *slot = sweep_design(d, gb_bws, layer, opts).ok();
        }
    } else {
        let chunk = designs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (d_chunk, s_chunk) in designs.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (d, slot) in d_chunk.iter().zip(s_chunk.iter_mut()) {
                        *slot = sweep_design(d, gb_bws, layer, opts).ok();
                    }
                });
            }
        });
    }
    let mut stats = SweepStats {
        designs: designs.len(),
        ..SweepStats::default()
    };
    let mut points = Vec::with_capacity(designs.len() * gb_bws.len());
    for (design_points, rebuilds, delta_evals) in slots.into_iter().flatten() {
        stats.feasible += 1;
        stats.points += design_points.len();
        stats.full_evals += 1;
        stats.delta_evals += delta_evals;
        stats.stages_rebuilt += u64::from(rebuilds.stages_rebuilt);
        stats.stages_skipped += u64::from(rebuilds.stages_skipped);
        points.extend(design_points);
    }
    stats.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (points, stats)
}

/// Searches the mapping once at `gb_bws[0]`, then walks the remaining
/// bandwidths with delta evaluations of the incumbent mapping.
fn sweep_design(
    design: &DesignPoint,
    gb_bws: &[u64],
    layer: &Layer,
    opts: &ExploreOptions,
) -> Result<DesignSweep, MapperError> {
    let base_params = DesignParams {
        gb_bw_bits: gb_bws[0],
        ..design.params
    };
    let base = build_design(base_params);
    let mapper = Mapper::new(&base.arch, layer, base.spatial.clone())
        .with_options(opts.mapper)
        .with_parallelism(opts.mapping_parallelism)
        .with_batch_lanes(opts.batch_lanes);
    let mapping = mapper.search(Objective::Latency)?.best.mapping;
    // Area excludes GB and the swept knob is a GB port rate, so one
    // number covers every point of this design.
    let exclude: Vec<_> = base.arch.hierarchy().find("GB").into_iter().collect();
    let area_mm2 = opts.area.total_mm2(&base.arch, &exclude);

    let model = if opts.mapper.bw_aware {
        LatencyModel::new()
    } else {
        LatencyModel::bw_unaware()
    };
    let mut scratch = ModelScratch::default();
    let mut rebuilds = RebuildStats::default();
    let mut points = Vec::with_capacity(gb_bws.len());
    let mut prev = base;
    let mut delta = InputDelta::ALL; // first point: nothing cached yet
    for &bw in gb_bws {
        let variant = if bw == prev.params.gb_bw_bits {
            prev
        } else {
            let next = build_design(DesignParams {
                gb_bw_bits: bw,
                ..design.params
            });
            delta = delta.union(InputDelta::between(&prev.arch, &next.arch));
            next
        };
        let view = MappedLayer::new(layer, &variant.arch, &mapping)
            .expect("incumbent mapping stays legal: bandwidth does not affect capacity");
        let (fast, stats) = model.evaluate_delta_fast(&view, delta, &mut scratch);
        rebuilds.accumulate(stats);
        points.push(DsePoint {
            params: variant.params,
            latency: fast.cc_total,
            area_mm2,
            utilization: fast.utilization,
            ss_overall: fast.ss_overall,
        });
        delta = InputDelta::NONE;
        prev = variant;
    }
    Ok((points, rebuilds, gb_bws.len() - 1))
}

/// One workload point of an [`explore_workload_sweep`] run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadPoint {
    /// The design's free parameters.
    pub params: DesignParams,
    /// Matmul dimensions `(b, k, c)` of this point.
    pub dims: (u64, u64, u64),
    /// Total latency in cycles of the incumbent dataflow at these dims.
    pub latency: f64,
    /// MAC utilization.
    pub utilization: f64,
    /// Temporal stall, cycles.
    pub ss_overall: f64,
}

/// Specialization-reuse counters for one [`explore_workload_sweep`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WorkloadSweepStats {
    /// Designs in the sweep.
    pub designs: usize,
    /// Designs with a legal mapping on the template layer.
    pub feasible: usize,
    /// Workload points produced.
    pub points: usize,
    /// Mapping searches performed: one per feasible design, regardless of
    /// how many workload points it answers.
    pub searches: usize,
    /// Points rejected by the surrogate (dims that do not fit the
    /// design's memories under the incumbent dataflow).
    pub infeasible_points: usize,
    /// Queries whose Step-2 port grouping was reused across points.
    pub grouping_reused: u64,
    /// Queries that had to rebuild the port grouping.
    pub grouping_rebuilt: u64,
    /// Wall-clock sweep time in milliseconds.
    pub wall_ms: f64,
}

/// One design's workload-sweep output: points plus surrogate counters.
type WorkloadSweep = (Vec<WorkloadPoint>, SurrogateStats, usize);

/// Sweeps every design across a list of workload dims, reusing one
/// [`SpecializedModel`] per design.
///
/// The dual of [`explore_bw_sweep`]: there the workload is fixed and the
/// architecture varies; here the architecture is fixed per design and
/// the workload varies. The mapping is searched once per design on the
/// `template` layer, the search incumbent's *shape* (spatial unrolling +
/// loop ordering) is specialized against the design's architecture, and
/// every `(b, k, c)` in `dims` is then answered through
/// [`SpecializedModel::query`] — which is bit-identical to re-deriving
/// the mapping at those dims and evaluating from scratch
/// ([`SpecializedModel::query_oracle`]), so the returned points are
/// exactly what a per-point cold sweep of the incumbent dataflow would
/// produce. Designs with no legal mapping on the template are silently
/// skipped, as in [`explore`]; dims that do not fit a design are counted
/// in [`WorkloadSweepStats::infeasible_points`] and skipped.
///
/// `dims` must be non-empty. With `opts.parallelism = Some(n)` the
/// designs are split across `n` threads and merged in design order, so
/// the output is identical for every thread count.
pub fn explore_workload_sweep(
    designs: &[DesignPoint],
    dims: &[(u64, u64, u64)],
    template: &Layer,
    opts: &ExploreOptions,
) -> (Vec<WorkloadPoint>, WorkloadSweepStats) {
    assert!(!dims.is_empty(), "workload sweep needs at least one point");
    let t0 = std::time::Instant::now();
    let threads = opts.parallelism.unwrap_or(1).clamp(1, designs.len().max(1));
    let mut slots: Vec<Option<WorkloadSweep>> = vec![None; designs.len()];
    if threads <= 1 {
        for (d, slot) in designs.iter().zip(slots.iter_mut()) {
            *slot = sweep_workload_design(d, dims, template, opts);
        }
    } else {
        let chunk = designs.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (d_chunk, s_chunk) in designs.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                scope.spawn(move || {
                    for (d, slot) in d_chunk.iter().zip(s_chunk.iter_mut()) {
                        *slot = sweep_workload_design(d, dims, template, opts);
                    }
                });
            }
        });
    }
    let mut stats = WorkloadSweepStats {
        designs: designs.len(),
        ..WorkloadSweepStats::default()
    };
    let mut points = Vec::with_capacity(designs.len() * dims.len());
    for (design_points, surrogate, infeasible) in slots.into_iter().flatten() {
        stats.feasible += 1;
        stats.searches += 1;
        stats.points += design_points.len();
        stats.infeasible_points += infeasible;
        stats.grouping_reused += surrogate.grouping_reused;
        stats.grouping_rebuilt += surrogate.grouping_rebuilt;
        points.extend(design_points);
    }
    stats.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (points, stats)
}

/// Searches the mapping once on the template, specializes its shape, and
/// answers every workload point through the surrogate.
fn sweep_workload_design(
    design: &DesignPoint,
    dims: &[(u64, u64, u64)],
    template: &Layer,
    opts: &ExploreOptions,
) -> Option<WorkloadSweep> {
    let mapper = Mapper::new(&design.arch, template, design.spatial.clone())
        .with_options(opts.mapper)
        .with_parallelism(opts.mapping_parallelism)
        .with_batch_lanes(opts.batch_lanes);
    let mapping = mapper.search(Objective::Latency).ok()?.best.mapping;
    let shape = MappingShape::from_mapping(&mapping).ok()?;
    let model = if opts.mapper.bw_aware {
        LatencyModel::new()
    } else {
        LatencyModel::bw_unaware()
    };
    let mut spec = SpecializedModel::prepare(model, &design.arch, template, shape).ok()?;
    let mut points = Vec::with_capacity(dims.len());
    let mut infeasible = 0usize;
    for &(b, k, c) in dims {
        match spec.query(b, k, c) {
            Ok(fast) => points.push(WorkloadPoint {
                params: design.params,
                dims: (b, k, c),
                latency: fast.cc_total,
                utilization: fast.utilization,
                ss_overall: fast.ss_overall,
            }),
            Err(_) => infeasible += 1,
        }
    }
    Some((points, spec.stats(), infeasible))
}

/// Indices of the latency-area Pareto front (minimizing both), sorted by
/// increasing area.
pub fn pareto_front(points: &[DsePoint]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .area_mm2
            .total_cmp(&points[b].area_mm2)
            .then(points[a].latency.total_cmp(&points[b].latency))
    });
    let mut front = Vec::new();
    let mut best_latency = f64::INFINITY;
    for idx in order {
        if points[idx].latency < best_latency {
            best_latency = points[idx].latency;
            front.push(idx);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{build_design, enumerate_designs, MemoryPool};
    use ulm_workload::Precision;

    fn small_layer() -> Layer {
        Layer::matmul("l", 64, 64, 128, Precision::int8_out24())
    }

    fn quick_opts() -> ExploreOptions {
        ExploreOptions {
            mapper: MapperOptions {
                max_exhaustive: 200,
                samples: 20,
                ..MapperOptions::default()
            },
            ..ExploreOptions::default()
        }
    }

    #[test]
    fn single_design_evaluates() {
        let d = build_design(DesignParams {
            array_side: 16,
            w_reg_words: 1,
            i_reg_words: 1,
            o_reg_words: 1,
            w_lb_kb: 16,
            i_lb_kb: 8,
            gb_bw_bits: 128,
        });
        let p = evaluate_design(&d, &small_layer(), &quick_opts()).unwrap();
        assert!(p.latency > 0.0);
        assert!(p.area_mm2 > 0.0);
        assert!(p.utilization > 0.0 && p.utilization <= 1.0);
    }

    #[test]
    fn more_memory_costs_more_area() {
        let base = DesignParams {
            array_side: 16,
            w_reg_words: 1,
            i_reg_words: 1,
            o_reg_words: 1,
            w_lb_kb: 4,
            i_lb_kb: 4,
            gb_bw_bits: 128,
        };
        let small = evaluate_design(&build_design(base), &small_layer(), &quick_opts()).unwrap();
        let big = evaluate_design(
            &build_design(DesignParams {
                w_lb_kb: 64,
                i_lb_kb: 64,
                ..base
            }),
            &small_layer(),
            &quick_opts(),
        )
        .unwrap();
        assert!(big.area_mm2 > small.area_mm2);
    }

    #[test]
    fn parallel_explore_matches_serial_exactly() {
        let pool = MemoryPool {
            w_reg_words_per_mac: vec![1, 2],
            i_reg_words_per_mac: vec![1, 2],
            o_reg_words_per_pe: vec![1],
            w_lb_kb: vec![4, 16],
            i_lb_kb: vec![4, 16],
        };
        let designs = enumerate_designs(&pool, &[16], 128);
        let serial = explore(&designs, &small_layer(), &quick_opts());
        for threads in [2usize, 3, 8] {
            let par = explore(
                &designs,
                &small_layer(),
                &ExploreOptions {
                    parallelism: Some(threads),
                    ..quick_opts()
                },
            );
            assert_eq!(serial, par, "parallelism={threads} diverged from serial");
        }
    }

    #[test]
    fn batched_and_scalar_explore_match_exactly() {
        let pool = MemoryPool {
            w_reg_words_per_mac: vec![1, 2],
            i_reg_words_per_mac: vec![1],
            o_reg_words_per_pe: vec![1],
            w_lb_kb: vec![4, 16],
            i_lb_kb: vec![4],
        };
        let designs = enumerate_designs(&pool, &[16], 128);
        let scalar = explore(
            &designs,
            &small_layer(),
            &ExploreOptions {
                batch_lanes: Some(1),
                ..quick_opts()
            },
        );
        for lanes in [None, Some(8)] {
            let batched = explore(
                &designs,
                &small_layer(),
                &ExploreOptions {
                    batch_lanes: lanes,
                    ..quick_opts()
                },
            );
            assert_eq!(
                scalar, batched,
                "batch_lanes={lanes:?} diverged from scalar"
            );
        }
    }

    #[test]
    fn stats_account_for_every_design() {
        let pool = MemoryPool {
            w_reg_words_per_mac: vec![1, 2],
            i_reg_words_per_mac: vec![1],
            o_reg_words_per_pe: vec![1],
            w_lb_kb: vec![4, 16],
            i_lb_kb: vec![4],
        };
        let designs = enumerate_designs(&pool, &[16], 128);
        let (points, stats) = explore_with_stats(&designs, &small_layer(), &quick_opts());
        assert_eq!(stats.designs, designs.len());
        assert_eq!(stats.feasible, points.len());
        assert!(stats.search.generated >= stats.search.evaluated + stats.search.pruned);
        assert!(stats.search.evaluated > 0);
        assert!(stats.search.batch_lanes >= 1);
        assert!(stats.wall_ms > 0.0);
        // The point list is exactly what `explore` returns.
        assert_eq!(points, explore(&designs, &small_layer(), &quick_opts()));
    }

    #[test]
    fn intra_design_parallelism_matches_serial_exactly() {
        let pool = MemoryPool {
            w_reg_words_per_mac: vec![1, 2],
            i_reg_words_per_mac: vec![1],
            o_reg_words_per_pe: vec![1],
            w_lb_kb: vec![4, 16],
            i_lb_kb: vec![4],
        };
        let designs = enumerate_designs(&pool, &[16], 128);
        let serial = explore(&designs, &small_layer(), &quick_opts());
        for threads in [2usize, 4] {
            let par = explore(
                &designs,
                &small_layer(),
                &ExploreOptions {
                    mapping_parallelism: Some(threads),
                    ..quick_opts()
                },
            );
            assert_eq!(serial, par, "mapping_parallelism={threads} diverged");
        }
    }

    #[test]
    fn bw_sweep_matches_cold_evaluation_of_incumbent() {
        let pool = MemoryPool {
            w_reg_words_per_mac: vec![1, 2],
            i_reg_words_per_mac: vec![1],
            o_reg_words_per_pe: vec![1],
            w_lb_kb: vec![4, 16],
            i_lb_kb: vec![4],
        };
        let designs = enumerate_designs(&pool, &[16], 64);
        let bws = [64u64, 128, 256, 512];
        let layer = small_layer();
        let opts = quick_opts();
        let (points, stats) = explore_bw_sweep(&designs, &bws, &layer, &opts);

        assert_eq!(stats.designs, designs.len());
        assert_eq!(stats.points, points.len());
        assert_eq!(stats.points, stats.feasible * bws.len());
        assert_eq!(stats.full_evals, stats.feasible);
        assert_eq!(stats.delta_evals, stats.feasible * (bws.len() - 1));
        // Each delta point reuses the residency and feed-rate stages.
        assert!(stats.stages_skipped >= 2 * stats.delta_evals as u64);

        // Cold re-derivation: the same search at bws[0], then a
        // from-scratch evaluation of that mapping at every bandwidth.
        let mut cold = Vec::new();
        for d in &designs {
            let base = build_design(DesignParams {
                gb_bw_bits: bws[0],
                ..d.params
            });
            let mapper =
                Mapper::new(&base.arch, &layer, base.spatial.clone()).with_options(opts.mapper);
            let Ok(result) = mapper.search(Objective::Latency) else {
                continue;
            };
            let mapping = result.best.mapping;
            let exclude: Vec<_> = base.arch.hierarchy().find("GB").into_iter().collect();
            let area_mm2 = opts.area.total_mm2(&base.arch, &exclude);
            for &bw in &bws {
                let v = build_design(DesignParams {
                    gb_bw_bits: bw,
                    ..d.params
                });
                let view = MappedLayer::new(&layer, &v.arch, &mapping).unwrap();
                let fast = LatencyModel::new().evaluate_fast(&view, &mut ModelScratch::default());
                cold.push(DsePoint {
                    params: v.params,
                    latency: fast.cc_total,
                    area_mm2,
                    utilization: fast.utilization,
                    ss_overall: fast.ss_overall,
                });
            }
        }
        assert_eq!(points.len(), cold.len());
        for (a, b) in points.iter().zip(&cold) {
            assert_eq!(a.params, b.params);
            assert_eq!(a.latency.to_bits(), b.latency.to_bits(), "{:?}", a.params);
            assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
            assert_eq!(a.ss_overall.to_bits(), b.ss_overall.to_bits());
            assert_eq!(a.area_mm2.to_bits(), b.area_mm2.to_bits());
        }
    }

    #[test]
    fn parallel_bw_sweep_matches_serial_exactly() {
        let pool = MemoryPool {
            w_reg_words_per_mac: vec![1, 2],
            i_reg_words_per_mac: vec![1, 2],
            o_reg_words_per_pe: vec![1],
            w_lb_kb: vec![4],
            i_lb_kb: vec![4],
        };
        let designs = enumerate_designs(&pool, &[16], 64);
        let bws = [64u64, 256];
        let (serial, _) = explore_bw_sweep(&designs, &bws, &small_layer(), &quick_opts());
        for threads in [2usize, 3] {
            let (par, _) = explore_bw_sweep(
                &designs,
                &bws,
                &small_layer(),
                &ExploreOptions {
                    parallelism: Some(threads),
                    ..quick_opts()
                },
            );
            assert_eq!(serial, par, "parallelism={threads} diverged from serial");
        }
    }

    #[test]
    fn workload_sweep_matches_cold_oracle_of_incumbent() {
        let pool = MemoryPool {
            w_reg_words_per_mac: vec![1, 2],
            i_reg_words_per_mac: vec![1],
            o_reg_words_per_pe: vec![1],
            w_lb_kb: vec![4, 16],
            i_lb_kb: vec![4],
        };
        let designs = enumerate_designs(&pool, &[16], 128);
        let dims = [(16u64, 64u64, 128u64), (64, 64, 128), (128, 32, 96)];
        let template = small_layer();
        let opts = quick_opts();
        let (points, stats) = explore_workload_sweep(&designs, &dims, &template, &opts);

        assert_eq!(stats.designs, designs.len());
        assert_eq!(stats.points, points.len());
        assert_eq!(stats.searches, stats.feasible);
        assert_eq!(
            stats.points + stats.infeasible_points,
            stats.feasible * dims.len()
        );
        assert_eq!(
            stats.grouping_reused + stats.grouping_rebuilt,
            stats.points as u64
        );

        // Cold re-derivation: the same search per design, then the
        // surrogate's from-scratch oracle path at every workload point.
        let mut cold = Vec::new();
        for d in &designs {
            let mapper =
                Mapper::new(&d.arch, &template, d.spatial.clone()).with_options(opts.mapper);
            let Ok(result) = mapper.search(Objective::Latency) else {
                continue;
            };
            let shape = MappingShape::from_mapping(&result.best.mapping).unwrap();
            let spec =
                SpecializedModel::prepare(LatencyModel::new(), &d.arch, &template, shape).unwrap();
            for &(b, k, c) in &dims {
                let Ok(fast) = spec.query_oracle(b, k, c) else {
                    continue;
                };
                cold.push(WorkloadPoint {
                    params: d.params,
                    dims: (b, k, c),
                    latency: fast.cc_total,
                    utilization: fast.utilization,
                    ss_overall: fast.ss_overall,
                });
            }
        }
        assert_eq!(points.len(), cold.len());
        for (a, b) in points.iter().zip(&cold) {
            assert_eq!(a.params, b.params);
            assert_eq!(a.dims, b.dims);
            assert_eq!(a.latency.to_bits(), b.latency.to_bits(), "{:?}", a.params);
            assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
            assert_eq!(a.ss_overall.to_bits(), b.ss_overall.to_bits());
        }
    }

    #[test]
    fn parallel_workload_sweep_matches_serial_exactly() {
        let pool = MemoryPool {
            w_reg_words_per_mac: vec![1, 2],
            i_reg_words_per_mac: vec![1, 2],
            o_reg_words_per_pe: vec![1],
            w_lb_kb: vec![4],
            i_lb_kb: vec![4],
        };
        let designs = enumerate_designs(&pool, &[16], 128);
        let dims = [(32u64, 64u64, 128u64), (96, 48, 160)];
        let (serial, _) = explore_workload_sweep(&designs, &dims, &small_layer(), &quick_opts());
        for threads in [2usize, 3] {
            let (par, _) = explore_workload_sweep(
                &designs,
                &dims,
                &small_layer(),
                &ExploreOptions {
                    parallelism: Some(threads),
                    ..quick_opts()
                },
            );
            assert_eq!(serial, par, "parallelism={threads} diverged from serial");
        }
    }

    #[test]
    fn pareto_front_is_monotone() {
        let pool = MemoryPool {
            w_reg_words_per_mac: vec![1, 2],
            i_reg_words_per_mac: vec![1],
            o_reg_words_per_pe: vec![1],
            w_lb_kb: vec![4, 16],
            i_lb_kb: vec![4, 16],
        };
        let designs = enumerate_designs(&pool, &[16], 128);
        let points = explore(&designs, &small_layer(), &quick_opts());
        assert!(!points.is_empty());
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        // Along the front, area increases and latency strictly decreases.
        for w in front.windows(2) {
            assert!(points[w[1]].area_mm2 >= points[w[0]].area_mm2);
            assert!(points[w[1]].latency < points[w[0]].latency);
        }
        // Every non-front point is dominated by some front point.
        for (i, p) in points.iter().enumerate() {
            if front.contains(&i) {
                continue;
            }
            assert!(front.iter().any(|&f| {
                points[f].area_mm2 <= p.area_mm2 + 1e-12 && points[f].latency <= p.latency + 1e-9
            }));
        }
    }
}
