//! Hardware architecture design-space exploration (Case study 3).
//!
//! Generates hardware design points from a [`MemoryPool`] (register and
//! local-buffer capacity candidates) across MAC array sizes and GB
//! bandwidths, optimizes the mapping of each design for lowest latency
//! with the BW-aware (or BW-unaware baseline) model, and extracts
//! latency-area Pareto fronts — the machinery behind Fig. 8.
//!
//! # Example
//!
//! ```
//! use ulm_dse::{enumerate_designs, explore, pareto_front, ExploreOptions, MemoryPool};
//! use ulm_workload::{Layer, Precision};
//!
//! let pool = MemoryPool {
//!     w_reg_words_per_mac: vec![1],
//!     i_reg_words_per_mac: vec![1],
//!     o_reg_words_per_pe: vec![1],
//!     w_lb_kb: vec![8, 32],
//!     i_lb_kb: vec![8],
//! };
//! let designs = enumerate_designs(&pool, &[16], 128);
//! let layer = Layer::matmul("l", 64, 64, 128, Precision::int8_out24());
//! let points = explore(&designs, &layer, &ExploreOptions::default());
//! let front = pareto_front(&points);
//! assert!(!front.is_empty());
//! ```

pub mod explore;
pub mod pool;

pub use explore::{
    evaluate_design, explore, explore_bw_sweep, explore_with_stats, explore_workload_sweep,
    pareto_front, DsePoint, DseStats, ExploreOptions, SweepStats, WorkloadPoint,
    WorkloadSweepStats,
};
pub use pool::{build_design, enumerate_designs, DesignParams, DesignPoint, MemoryPool};
