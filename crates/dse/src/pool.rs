//! Memory pools and hardware design-point generation.
//!
//! Case study 3 "construct\[s\] a memory pool containing tens of
//! register/memory candidates with different capacities to replace the
//! W-/I-/O-Reg, W-/I-LB in the design space search" across 16x16 / 32x32 /
//! 64x64 MAC arrays with a fixed 1 MB GB of varying bandwidth.

use ulm_arch::{Architecture, MacArray, Memory, MemoryHierarchy, MemoryKind, Port};
use ulm_mapping::SpatialUnroll;
use ulm_workload::{Dim, Operand};

const KB: u64 = 8 * 1024; // bits

/// Candidate capacities for each replaceable memory level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryPool {
    /// Weight-register words per MAC.
    pub w_reg_words_per_mac: Vec<u64>,
    /// Input-register words per MAC.
    pub i_reg_words_per_mac: Vec<u64>,
    /// Output-register words per PE.
    pub o_reg_words_per_pe: Vec<u64>,
    /// Weight local-buffer sizes in KB.
    pub w_lb_kb: Vec<u64>,
    /// Input local-buffer sizes in KB.
    pub i_lb_kb: Vec<u64>,
}

impl Default for MemoryPool {
    /// A pool sized to produce a few thousand design points across three
    /// array sizes, in the spirit of the paper's 4,176.
    fn default() -> Self {
        Self {
            w_reg_words_per_mac: vec![1, 2, 4],
            i_reg_words_per_mac: vec![1, 2, 4],
            o_reg_words_per_pe: vec![1, 2],
            w_lb_kb: vec![4, 8, 16, 32, 64],
            i_lb_kb: vec![4, 8, 16, 32, 64],
        }
    }
}

impl MemoryPool {
    /// Number of memory combinations per array size.
    pub fn combinations(&self) -> usize {
        self.w_reg_words_per_mac.len()
            * self.i_reg_words_per_mac.len()
            * self.o_reg_words_per_pe.len()
            * self.w_lb_kb.len()
            * self.i_lb_kb.len()
    }
}

/// The free parameters of one hardware design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct DesignParams {
    /// MAC array side (16, 32, 64): a `side x side` MAC array.
    pub array_side: u64,
    /// W-register words per MAC.
    pub w_reg_words: u64,
    /// I-register words per MAC.
    pub i_reg_words: u64,
    /// O-register words per PE.
    pub o_reg_words: u64,
    /// W local buffer, KB.
    pub w_lb_kb: u64,
    /// I local buffer, KB.
    pub i_lb_kb: u64,
    /// GB bandwidth, bits/cycle.
    pub gb_bw_bits: u64,
}

/// One generated hardware design: parameters, architecture, spatial map.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// The free parameters.
    pub params: DesignParams,
    /// The instantiated architecture.
    pub arch: Architecture,
    /// The spatial unrolling scaled to the array.
    pub spatial: SpatialUnroll,
}

/// Instantiates the architecture for one parameter combination, following
/// the case-study template: per-operand registers, W/I local buffers, O
/// draining straight to a 1 MB GB backing store.
pub fn build_design(p: DesignParams) -> DesignPoint {
    let side = p.array_side;
    assert!(
        side >= 2 && side.is_multiple_of(2),
        "array side must be even"
    );
    let array = MacArray::new(side / 2, side, 2);
    let macs = array.num_macs();
    let pes = array.num_pes();
    let scale = (side / 16).max(1);

    let mut b = MemoryHierarchy::builder();
    let w_reg = b.add_memory(
        Memory::new("W-Reg", MemoryKind::RegisterFile, macs * p.w_reg_words * 8)
            .with_ports(vec![Port::read(macs * 8), Port::write(256 * scale)])
            .with_replication(side / 2),
    );
    let i_reg = b.add_memory(
        Memory::new("I-Reg", MemoryKind::RegisterFile, macs * p.i_reg_words * 8)
            .with_ports(vec![Port::read(macs * 8), Port::write(256 * scale)])
            .with_replication(side),
    );
    let o_reg = b.add_memory(
        Memory::new("O-Reg", MemoryKind::RegisterFile, pes * p.o_reg_words * 24)
            .with_ports(vec![Port::read(pes * 24), Port::write(pes * 24)]),
    );
    let w_lb = b.add_memory(
        Memory::new("W-LB", MemoryKind::Sram, p.w_lb_kb * KB)
            .with_ports(vec![Port::read(256 * scale), Port::write(128 * scale)]),
    );
    let i_lb = b.add_memory(
        Memory::new("I-LB", MemoryKind::Sram, p.i_lb_kb * KB)
            .with_ports(vec![Port::read(256 * scale), Port::write(128 * scale)]),
    );
    let gb = b.add_memory(
        Memory::new("GB", MemoryKind::Sram, 1024 * KB)
            .with_ports(vec![Port::read(p.gb_bw_bits), Port::write(p.gb_bw_bits)])
            .as_backing_store(),
    );
    b.set_chain(Operand::W, vec![w_reg, w_lb, gb]);
    b.set_chain(Operand::I, vec![i_reg, i_lb, gb]);
    b.set_chain(Operand::O, vec![o_reg, gb]);
    let hierarchy = b.build().expect("design template is well-formed");

    DesignPoint {
        params: p,
        arch: Architecture::new(
            format!(
                "dse-{side}x{side}-w{}i{}o{}-wlb{}ilb{}-gb{}",
                p.w_reg_words, p.i_reg_words, p.o_reg_words, p.w_lb_kb, p.i_lb_kb, p.gb_bw_bits
            ),
            array,
            hierarchy,
        ),
        spatial: SpatialUnroll::new(vec![(Dim::K, side), (Dim::B, side / 2), (Dim::C, 2)]),
    }
}

/// Enumerates every design point of `pool` across the given array sides
/// at one GB bandwidth.
pub fn enumerate_designs(pool: &MemoryPool, sides: &[u64], gb_bw_bits: u64) -> Vec<DesignPoint> {
    let mut out = Vec::with_capacity(pool.combinations() * sides.len());
    for &array_side in sides {
        for &w_reg_words in &pool.w_reg_words_per_mac {
            for &i_reg_words in &pool.i_reg_words_per_mac {
                for &o_reg_words in &pool.o_reg_words_per_pe {
                    for &w_lb_kb in &pool.w_lb_kb {
                        for &i_lb_kb in &pool.i_lb_kb {
                            out.push(build_design(DesignParams {
                                array_side,
                                w_reg_words,
                                i_reg_words,
                                o_reg_words,
                                w_lb_kb,
                                i_lb_kb,
                                gb_bw_bits,
                            }));
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pool_yields_thousands_across_sides() {
        let pool = MemoryPool::default();
        assert_eq!(pool.combinations(), 3 * 3 * 2 * 5 * 5);
        let designs = enumerate_designs(&pool, &[16, 32, 64], 128);
        assert_eq!(designs.len(), 450 * 3);
    }

    #[test]
    fn build_design_matches_params() {
        let p = DesignParams {
            array_side: 32,
            w_reg_words: 2,
            i_reg_words: 4,
            o_reg_words: 2,
            w_lb_kb: 8,
            i_lb_kb: 16,
            gb_bw_bits: 1024,
        };
        let d = build_design(p);
        assert_eq!(d.arch.mac_array().num_macs(), 1024);
        let h = d.arch.hierarchy();
        assert_eq!(
            h.mem(h.find("W-Reg").unwrap()).capacity_bits(),
            1024 * 2 * 8
        );
        assert_eq!(h.mem(h.find("I-LB").unwrap()).capacity_bits(), 16 * KB);
        assert_eq!(
            h.port(
                h.find("GB").unwrap(),
                Operand::O,
                ulm_arch::PortUse::WriteIn
            )
            .1,
            1024
        );
        assert_eq!(d.spatial.product(), 1024);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_side_rejected() {
        let _ = build_design(DesignParams {
            array_side: 7,
            w_reg_words: 1,
            i_reg_words: 1,
            o_reg_words: 1,
            w_lb_kb: 4,
            i_lb_kb: 4,
            gb_bw_bits: 128,
        });
    }
}
