//! A first-order silicon area model for latency-area trade-off studies.
//!
//! Case study 3 (Fig. 8) plots a latency-area design space where the area
//! covers the MAC array plus the register and local-buffer levels (the GB
//! area is excluded — "The area of GB is not included in the comparison").
//! The absolute numbers only need to *rank* designs consistently, so we use
//! a CACTI-style first-order model anchored to 7 nm-class densities: the
//! paper cites a 0.027 µm² high-density 6T SRAM bitcell; a production macro
//! lands near 0.04–0.06 µm²/bit after periphery amortization, and flip-flop
//! based register files cost an order of magnitude more per bit.

use crate::mem::{Memory, MemoryKind};
use crate::{Architecture, MemoryHierarchy, MemoryId};

/// Area model parameters (µm²-denominated).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AreaModel {
    /// Area per register-file bit (flip-flop + mux), µm².
    pub reg_um2_per_bit: f64,
    /// Asymptotic SRAM array area per bit, µm².
    pub sram_um2_per_bit: f64,
    /// Fixed periphery per SRAM macro, µm².
    pub sram_periphery_um2: f64,
    /// Periphery that scales with the square root of capacity (decoders,
    /// sense amps along the array edge), µm² per sqrt(bit).
    pub sram_edge_um2_per_sqrt_bit: f64,
    /// Area per MAC unit (INT8 multiplier + 24b accumulator + pipeline
    /// registers), µm².
    pub mac_um2: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        Self {
            reg_um2_per_bit: 0.6,
            sram_um2_per_bit: 0.045,
            sram_periphery_um2: 800.0,
            sram_edge_um2_per_sqrt_bit: 12.0,
            mac_um2: 220.0,
        }
    }
}

impl AreaModel {
    /// Area of one memory module in µm².
    pub fn memory_um2(&self, mem: &Memory) -> f64 {
        let bits = mem.capacity_bits() as f64;
        match mem.kind() {
            MemoryKind::RegisterFile => bits * self.reg_um2_per_bit,
            MemoryKind::Sram => {
                bits * self.sram_um2_per_bit
                    + self.sram_periphery_um2
                    + self.sram_edge_um2_per_sqrt_bit * bits.sqrt()
            }
        }
    }

    /// Area of the MAC array in µm².
    pub fn array_um2(&self, macs: u64) -> f64 {
        macs as f64 * self.mac_um2
    }

    /// Total architecture area in mm², with the listed memories excluded
    /// (Case 3 excludes the GB).
    pub fn total_mm2(&self, arch: &Architecture, exclude: &[MemoryId]) -> f64 {
        let mem_um2 = self.hierarchy_um2(arch.hierarchy(), exclude);
        (mem_um2 + self.array_um2(arch.mac_array().num_macs())) / 1.0e6
    }

    /// Summed memory area in µm², with exclusions.
    pub fn hierarchy_um2(&self, h: &MemoryHierarchy, exclude: &[MemoryId]) -> f64 {
        h.memories()
            .iter()
            .enumerate()
            .filter(|(i, _)| !exclude.contains(&MemoryId(*i)))
            .map(|(_, m)| self.memory_um2(m))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Port;
    use crate::{MacArray, Memory, MemoryHierarchy, MemoryKind};
    use ulm_workload::Operand;

    #[test]
    fn sram_beats_registers_per_bit_at_scale() {
        let m = AreaModel::default();
        let reg = Memory::new("r", MemoryKind::RegisterFile, 8 * 1024);
        let sram = Memory::new("s", MemoryKind::Sram, 8 * 1024);
        assert!(m.memory_um2(&reg) > m.memory_um2(&sram));
    }

    #[test]
    fn sram_area_amortizes_periphery() {
        let m = AreaModel::default();
        let small = Memory::new("s", MemoryKind::Sram, 1024);
        let big = Memory::new("b", MemoryKind::Sram, 1024 * 64);
        let per_bit_small = m.memory_um2(&small) / 1024.0;
        let per_bit_big = m.memory_um2(&big) / (1024.0 * 64.0);
        assert!(per_bit_small > per_bit_big);
    }

    #[test]
    fn exclusion_removes_memory_from_total() {
        let mut b = MemoryHierarchy::builder();
        let reg = b.add_memory(Memory::new("reg", MemoryKind::RegisterFile, 2048));
        let gb = b.add_memory(
            Memory::new("gb", MemoryKind::Sram, 8 << 20)
                .with_ports(vec![Port::read(128), Port::write(128)]),
        );
        b.set_chain(Operand::W, vec![reg, gb]);
        b.set_chain(Operand::I, vec![gb]);
        b.set_chain(Operand::O, vec![gb]);
        let h = b.build().unwrap();
        let arch = Architecture::new("t", MacArray::square(16), h);
        let m = AreaModel::default();
        let with_gb = m.total_mm2(&arch, &[]);
        let without_gb = m.total_mm2(&arch, &[gb]);
        assert!(with_gb > without_gb);
        // Without the GB the total is regs + MACs only.
        let expected = (2048.0 * m.reg_um2_per_bit + m.array_um2(256)) / 1.0e6;
        assert!((without_gb - expected).abs() < 1e-12);
    }

    #[test]
    fn bigger_arrays_cost_more() {
        let m = AreaModel::default();
        assert!(m.array_um2(4096) > m.array_um2(1024));
    }
}
