//! Memory hierarchies, per-operand memory chains and full architectures.

use crate::mem::{Memory, PortId, PortUse};
use crate::{ArchError, MacArray};
use std::collections::HashMap;
use std::fmt;
use ulm_workload::{Operand, PerOperand};

/// Stable identifier of a memory module within a hierarchy.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct MemoryId(pub usize);

impl fmt::Display for MemoryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mem{}", self.0)
    }
}

/// How Step 3 of the model integrates per-memory stalls into
/// `SS_overall` ("Users can customize this memory parallel operation
/// constraint based on the design", Section III-D).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize, Default)]
pub enum StallIntegration {
    /// All memory modules operate concurrently: one memory's stall hides
    /// under another's (`SS_overall = max_i SS_i`). The default.
    #[default]
    Concurrent,
    /// All memory modules operate sequentially: every stall blocks all
    /// other memories (`SS_overall = Σ_i SS_i`).
    Sequential,
    /// Memories within one group stall sequentially (sum); distinct groups
    /// operate concurrently (max). Memories absent from every group form
    /// implicit singleton groups.
    Groups(Vec<Vec<MemoryId>>),
}

/// A multi-level memory system: the memory modules, each operand's chain
/// of levels (innermost — closest to the MACs — first) and the port
/// assignment for every (memory, operand, direction) access.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MemoryHierarchy {
    mems: Vec<Memory>,
    chains: PerOperand<Vec<MemoryId>>,
    /// Port assignment lookup table: one row per memory, slot
    /// `operand.index() * 2 + (usage == WriteIn)`. A flat array instead
    /// of a hash map because [`port`](Self::port) sits on the model's
    /// per-evaluation hot path (DTL build, bandwidth refresh, phases).
    /// Serialized as the sorted `((mem, op, dir), port)` entry list the
    /// map representation used, so the wire format is unchanged.
    #[serde(with = "port_map_serde")]
    port_map: Vec<[Option<PortId>; 6]>,
}

mod port_map_serde {
    use super::PortId;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};

    type Key = (usize, usize, u8);
    type Lut = Vec<[Option<PortId>; 6]>;

    pub fn serialize<S: Serializer>(lut: &Lut, ser: S) -> Result<S::Ok, S::Error> {
        let mut entries: Vec<(Key, PortId)> = Vec::new();
        for (mem, row) in lut.iter().enumerate() {
            for (slot, pid) in row.iter().enumerate() {
                if let Some(pid) = *pid {
                    entries.push(((mem, slot / 2, (slot % 2) as u8), pid));
                }
            }
        }
        entries.sort_unstable();
        entries.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(de: D) -> Result<Lut, D::Error> {
        let entries: Vec<(Key, PortId)> = Vec::deserialize(de)?;
        let rows = entries
            .iter()
            .map(|&((m, _, _), _)| m + 1)
            .max()
            .unwrap_or(0);
        let mut lut: Lut = vec![[None; 6]; rows];
        for ((mem, op, dir), pid) in entries {
            lut[mem][op * 2 + dir as usize] = Some(pid);
        }
        Ok(lut)
    }
}

impl MemoryHierarchy {
    /// Starts building a hierarchy. See [`HierarchyBuilder`].
    pub fn builder() -> HierarchyBuilder {
        HierarchyBuilder::default()
    }

    /// All memory modules.
    pub fn memories(&self) -> &[Memory] {
        &self.mems
    }

    /// The memory with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids come from this hierarchy).
    pub fn mem(&self, id: MemoryId) -> &Memory {
        &self.mems[id.0]
    }

    /// Mutable access to the memory with the given id, for in-place knob
    /// overrides ([`Memory::set_capacity_bits`],
    /// [`Memory::set_port_bandwidth`]). Structural invariants (chains,
    /// port assignments) cannot be broken through a `&mut Memory`: ports
    /// keep their directions and capacity/bandwidth setters re-check
    /// positivity.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range (ids come from this hierarchy).
    pub fn mem_mut(&mut self, id: MemoryId) -> &mut Memory {
        &mut self.mems[id.0]
    }

    /// The memory ids of `op`'s chain, innermost level first.
    pub fn chain(&self, op: Operand) -> &[MemoryId] {
        self.chains.get(op)
    }

    /// Looks a memory up by name.
    pub fn find(&self, name: &str) -> Option<MemoryId> {
        self.mems
            .iter()
            .position(|m| m.name() == name)
            .map(MemoryId)
    }

    /// Operands served by memory `id`, in canonical order.
    pub fn served_operands(&self, id: MemoryId) -> Vec<Operand> {
        Operand::all()
            .filter(|&op| self.chain(op).contains(&id))
            .collect()
    }

    /// Number of operands served by memory `id`, without allocating.
    pub fn served_operand_count(&self, id: MemoryId) -> usize {
        Operand::all()
            .filter(|&op| self.chain(op).contains(&id))
            .count()
    }

    /// The port on memory `id` used when `op`'s data moves in the given
    /// direction, together with its bandwidth in bits/cycle.
    ///
    /// # Panics
    ///
    /// Panics if no port is assigned; [`HierarchyBuilder::build`] rejects
    /// hierarchies with missing assignments, so ids obtained from this
    /// hierarchy are always covered.
    pub fn port(&self, id: MemoryId, op: Operand, usage: PortUse) -> (PortId, u64) {
        let slot = op.index() * 2 + matches!(usage, PortUse::WriteIn) as usize;
        let pid = self
            .port_map
            .get(id.0)
            .and_then(|row| row[slot])
            .unwrap_or_else(|| panic!("no port for {} {} {}", self.mem(id).name(), op, usage));
        (pid, self.mem(id).ports()[pid].bw_bits)
    }

    /// Number of memory levels in the deepest operand chain.
    pub fn depth(&self) -> usize {
        Operand::all()
            .map(|op| self.chain(op).len())
            .max()
            .unwrap_or(0)
    }

    /// The top (outermost) memory of `op`'s chain.
    pub fn top(&self, op: Operand) -> MemoryId {
        *self
            .chain(op)
            .last()
            .expect("chains are validated non-empty")
    }
}

/// Builder for [`MemoryHierarchy`].
///
/// # Example
///
/// ```
/// use ulm_arch::{Memory, MemoryKind, MemoryHierarchy, Port};
/// use ulm_workload::Operand;
///
/// let mut b = MemoryHierarchy::builder();
/// let reg = b.add_memory(Memory::new("W-Reg", MemoryKind::RegisterFile, 2048));
/// let gb = b.add_memory(
///     Memory::new("GB", MemoryKind::Sram, 8 * 1024 * 1024)
///         .with_ports(vec![Port::read(128), Port::write(128)]),
/// );
/// b.set_chain(Operand::W, vec![reg, gb]);
/// b.set_chain(Operand::I, vec![gb]);
/// b.set_chain(Operand::O, vec![gb]);
/// let h = b.build()?;
/// assert_eq!(h.chain(Operand::W), &[reg, gb]);
/// # Ok::<(), ulm_arch::ArchError>(())
/// ```
#[derive(Debug, Default)]
pub struct HierarchyBuilder {
    mems: Vec<Memory>,
    chain_w: Vec<MemoryId>,
    chain_i: Vec<MemoryId>,
    chain_o: Vec<MemoryId>,
    explicit_ports: HashMap<(usize, usize, u8), PortId>,
}

impl HierarchyBuilder {
    /// Registers a memory module and returns its id.
    pub fn add_memory(&mut self, mem: Memory) -> MemoryId {
        self.mems.push(mem);
        MemoryId(self.mems.len() - 1)
    }

    /// Sets the full memory chain of `op`, innermost first.
    pub fn set_chain(&mut self, op: Operand, chain: Vec<MemoryId>) -> &mut Self {
        match op {
            Operand::W => self.chain_w = chain,
            Operand::I => self.chain_i = chain,
            Operand::O => self.chain_o = chain,
        }
        self
    }

    /// Overrides the port used when `op` accesses memory `id` in the given
    /// direction. Unassigned accesses fall back to
    /// [`Memory::default_port`].
    pub fn assign_port(
        &mut self,
        id: MemoryId,
        op: Operand,
        usage: PortUse,
        port: PortId,
    ) -> &mut Self {
        self.explicit_ports.insert(
            (id.0, op.index(), matches!(usage, PortUse::WriteIn) as u8),
            port,
        );
        self
    }

    /// Validates and finalizes the hierarchy.
    ///
    /// # Errors
    ///
    /// Returns an [`ArchError`] when a chain is empty, references unknown
    /// or duplicate memories, or some required access has no usable port.
    pub fn build(&mut self) -> Result<MemoryHierarchy, ArchError> {
        let chains = PerOperand::new(
            self.chain_w.clone(),
            self.chain_i.clone(),
            self.chain_o.clone(),
        );
        // Chain validation.
        for (op, chain) in chains.iter() {
            if chain.is_empty() {
                return Err(ArchError::EmptyChain { operand: op });
            }
            for (i, id) in chain.iter().enumerate() {
                if id.0 >= self.mems.len() {
                    return Err(ArchError::UnknownMemory { index: id.0 });
                }
                if chain[..i].contains(id) {
                    return Err(ArchError::DuplicateInChain {
                        memory: self.mems[id.0].name().to_string(),
                    });
                }
            }
        }
        // Port map: explicit assignments validated, defaults filled in for
        // every (memory, operand, direction) the chains can exercise.
        let mut port_map: Vec<[Option<PortId>; 6]> = vec![[None; 6]; self.mems.len()];
        for (op, chain) in chains.iter() {
            for id in chain {
                let mem = &self.mems[id.0];
                for usage in [PortUse::ReadOut, PortUse::WriteIn] {
                    let key = (id.0, op.index(), matches!(usage, PortUse::WriteIn) as u8);
                    let pid = match self.explicit_ports.get(&key) {
                        Some(&p) => {
                            let port =
                                mem.ports().get(p).ok_or(ArchError::PortDirectionMismatch {
                                    memory: mem.name().to_string(),
                                    port: p,
                                })?;
                            if !port.dir.supports(usage) {
                                return Err(ArchError::PortDirectionMismatch {
                                    memory: mem.name().to_string(),
                                    port: p,
                                });
                            }
                            p
                        }
                        None => mem.default_port(usage).ok_or(ArchError::MissingPort {
                            memory: mem.name().to_string(),
                            operand: op,
                        })?,
                    };
                    port_map[id.0][op.index() * 2 + key.2 as usize] = Some(pid);
                }
            }
        }
        Ok(MemoryHierarchy {
            mems: self.mems.clone(),
            chains,
            port_map,
        })
    }
}

/// A complete accelerator: MAC array + memory hierarchy + the Step-3 stall
/// integration policy.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Architecture {
    name: String,
    mac_array: MacArray,
    hierarchy: MemoryHierarchy,
    stall_integration: StallIntegration,
}

impl Architecture {
    /// Assembles an architecture with the default (fully concurrent)
    /// stall-integration policy.
    pub fn new(name: impl Into<String>, mac_array: MacArray, hierarchy: MemoryHierarchy) -> Self {
        Self {
            name: name.into(),
            mac_array,
            hierarchy,
            stall_integration: StallIntegration::default(),
        }
    }

    /// Sets the Step-3 stall integration policy.
    pub fn with_stall_integration(mut self, policy: StallIntegration) -> Self {
        self.stall_integration = policy;
        self
    }

    /// Architecture name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The MAC array.
    pub fn mac_array(&self) -> &MacArray {
        &self.mac_array
    }

    /// The memory hierarchy.
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Mutable access to the hierarchy for in-place knob overrides (see
    /// [`MemoryHierarchy::mem_mut`]).
    pub fn hierarchy_mut(&mut self) -> &mut MemoryHierarchy {
        &mut self.hierarchy
    }

    /// The stall-integration policy.
    pub fn stall_integration(&self) -> &StallIntegration {
        &self.stall_integration
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.mac_array)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::{MemoryKind, Port, PortUse};

    fn simple() -> (MemoryHierarchy, MemoryId, MemoryId) {
        let mut b = MemoryHierarchy::builder();
        let reg = b.add_memory(Memory::new("reg", MemoryKind::RegisterFile, 64));
        let gb = b.add_memory(
            Memory::new("gb", MemoryKind::Sram, 1 << 20)
                .with_ports(vec![Port::read(128), Port::write(64)]),
        );
        b.set_chain(Operand::W, vec![reg, gb]);
        b.set_chain(Operand::I, vec![gb]);
        b.set_chain(Operand::O, vec![gb]);
        (b.build().unwrap(), reg, gb)
    }

    #[test]
    fn chains_and_lookup() {
        let (h, reg, gb) = simple();
        assert_eq!(h.chain(Operand::W), &[reg, gb]);
        assert_eq!(h.top(Operand::W), gb);
        assert_eq!(h.find("gb"), Some(gb));
        assert_eq!(h.find("nope"), None);
        assert_eq!(h.depth(), 2);
        assert_eq!(h.served_operands(gb).len(), 3);
        assert_eq!(h.served_operands(reg), vec![Operand::W]);
    }

    #[test]
    fn default_ports_resolved_by_direction() {
        let (h, _, gb) = simple();
        let (rp, rbw) = h.port(gb, Operand::I, PortUse::ReadOut);
        let (wp, wbw) = h.port(gb, Operand::O, PortUse::WriteIn);
        assert_ne!(rp, wp);
        assert_eq!(rbw, 128);
        assert_eq!(wbw, 64);
    }

    #[test]
    fn shared_port_resolution_on_single_port_memory() {
        let (h, reg, _) = simple();
        let (rp, _) = h.port(reg, Operand::W, PortUse::ReadOut);
        let (wp, _) = h.port(reg, Operand::W, PortUse::WriteIn);
        assert_eq!(rp, wp); // one RW port serves both directions
    }

    #[test]
    fn explicit_port_assignment_validated() {
        let mut b = MemoryHierarchy::builder();
        let gb = b.add_memory(
            Memory::new("gb", MemoryKind::Sram, 1024)
                .with_ports(vec![Port::read(8), Port::write(8)]),
        );
        b.set_chain(Operand::W, vec![gb]);
        b.set_chain(Operand::I, vec![gb]);
        b.set_chain(Operand::O, vec![gb]);
        // Assigning the read-only port for writes must fail.
        b.assign_port(gb, Operand::O, PortUse::WriteIn, 0);
        assert!(matches!(
            b.build(),
            Err(ArchError::PortDirectionMismatch { .. })
        ));
    }

    #[test]
    fn empty_chain_rejected() {
        let mut b = MemoryHierarchy::builder();
        let gb = b.add_memory(Memory::new("gb", MemoryKind::Sram, 1024));
        b.set_chain(Operand::W, vec![gb]);
        b.set_chain(Operand::I, vec![gb]);
        // O chain left empty.
        assert!(matches!(
            b.build(),
            Err(ArchError::EmptyChain {
                operand: Operand::O
            })
        ));
    }

    #[test]
    fn duplicate_in_chain_rejected() {
        let mut b = MemoryHierarchy::builder();
        let gb = b.add_memory(Memory::new("gb", MemoryKind::Sram, 1024));
        b.set_chain(Operand::W, vec![gb, gb]);
        b.set_chain(Operand::I, vec![gb]);
        b.set_chain(Operand::O, vec![gb]);
        assert!(matches!(b.build(), Err(ArchError::DuplicateInChain { .. })));
    }

    #[test]
    fn missing_port_rejected() {
        let mut b = MemoryHierarchy::builder();
        // Read-only memory cannot take O write-backs.
        let gb =
            b.add_memory(Memory::new("gb", MemoryKind::Sram, 1024).with_ports(vec![Port::read(8)]));
        b.set_chain(Operand::W, vec![gb]);
        b.set_chain(Operand::I, vec![gb]);
        b.set_chain(Operand::O, vec![gb]);
        assert!(matches!(b.build(), Err(ArchError::MissingPort { .. })));
    }

    #[test]
    fn architecture_serde_round_trip() {
        let (h, _, _) = simple();
        let a = Architecture::new("rt", MacArray::square(16), h)
            .with_stall_integration(StallIntegration::Groups(vec![vec![MemoryId(0)]]));
        let json = serde_json::to_string(&a).expect("serializes");
        let back: Architecture = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(a, back);
        // Ports and chains survive the trip.
        assert_eq!(
            back.hierarchy()
                .port(MemoryId(1), Operand::I, PortUse::ReadOut),
            a.hierarchy()
                .port(MemoryId(1), Operand::I, PortUse::ReadOut)
        );
    }

    #[test]
    fn architecture_accessors() {
        let (h, _, _) = simple();
        let a = Architecture::new("t", MacArray::square(16), h)
            .with_stall_integration(StallIntegration::Sequential);
        assert_eq!(a.name(), "t");
        assert_eq!(a.mac_array().num_macs(), 256);
        assert_eq!(*a.stall_integration(), StallIntegration::Sequential);
    }
}
