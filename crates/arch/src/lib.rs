//! Hardware architecture description for the uniform latency model.
//!
//! This crate provides the *Hardware* leg of the AHM triple: a MAC array,
//! a multi-level memory hierarchy with per-memory capacity / bandwidth /
//! port / double-buffering attributes, per-operand memory chains (including
//! physically shared memories such as a global buffer holding W, I and O),
//! an area model for latency-area trade-off studies, and presets for the
//! paper's validation chip and case-study accelerators.
//!
//! # Example
//!
//! ```
//! use ulm_arch::presets;
//! use ulm_workload::Operand;
//!
//! let chip = presets::case_study_chip(128);
//! assert_eq!(chip.mac_array().num_macs(), 256); // 16x16 MACs
//! // W traverses three levels: W-Reg <- W-LB <- GB.
//! assert_eq!(chip.hierarchy().chain(Operand::W).len(), 3);
//! ```

pub mod archdesc;
pub mod area;
pub mod array;
pub mod hierarchy;
pub mod mem;
pub mod presets;

pub use archdesc::ArchDesc;
pub use area::AreaModel;
pub use array::MacArray;
pub use hierarchy::{Architecture, MemoryHierarchy, MemoryId, StallIntegration};
pub use mem::{Memory, MemoryKind, Port, PortDir, PortId, PortUse};

use std::error::Error;
use std::fmt;

/// Errors raised while building or validating an architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// A memory chain references a memory index that does not exist.
    UnknownMemory {
        /// The out-of-range index.
        index: usize,
    },
    /// An operand's memory chain is empty (every operand needs at least
    /// one on-chip level).
    EmptyChain {
        /// The operand with no memories.
        operand: ulm_workload::Operand,
    },
    /// A memory id appears twice in the same operand's chain.
    DuplicateInChain {
        /// The repeated memory's name.
        memory: String,
    },
    /// A (memory, operand, direction) access has no port assigned and no
    /// default applies.
    MissingPort {
        /// The memory's name.
        memory: String,
        /// The unreachable operand.
        operand: ulm_workload::Operand,
    },
    /// A port assignment uses a read-only port for writes or vice versa.
    PortDirectionMismatch {
        /// The memory's name.
        memory: String,
        /// The offending port index.
        port: usize,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::UnknownMemory { index } => {
                write!(f, "memory chain references unknown memory index {index}")
            }
            ArchError::EmptyChain { operand } => {
                write!(f, "operand {operand} has an empty memory chain")
            }
            ArchError::DuplicateInChain { memory } => {
                write!(f, "memory `{memory}` appears twice in one operand chain")
            }
            ArchError::MissingPort { memory, operand } => {
                write!(
                    f,
                    "memory `{memory}` has no port assigned for operand {operand}"
                )
            }
            ArchError::PortDirectionMismatch { memory, port } => {
                write!(
                    f,
                    "memory `{memory}` port {port} cannot serve the assigned direction"
                )
            }
        }
    }
}

impl Error for ArchError {}
