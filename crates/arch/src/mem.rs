//! Physical memory modules: capacity, buffering style and ports.

use std::fmt;

/// Broad class of a memory module, used by the area and energy models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum MemoryKind {
    /// Distributed register file (flip-flop based): cheap access, costly
    /// area per bit.
    RegisterFile,
    /// On-chip SRAM macro.
    Sram,
}

impl fmt::Display for MemoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryKind::RegisterFile => write!(f, "reg"),
            MemoryKind::Sram => write!(f, "sram"),
        }
    }
}

/// Direction capability of a physical memory port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PortDir {
    /// Read-only port.
    Read,
    /// Write-only port.
    Write,
    /// Shared read/write port (accesses contend).
    ReadWrite,
}

impl PortDir {
    /// Whether the port can serve the given use.
    pub fn supports(self, usage: PortUse) -> bool {
        matches!(
            (self, usage),
            (PortDir::Read, PortUse::ReadOut)
                | (PortDir::Write, PortUse::WriteIn)
                | (PortDir::ReadWrite, _)
        )
    }
}

/// How a data-transfer link uses a memory: reading data *out of* it or
/// writing data *into* it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PortUse {
    /// Data leaves the memory through this access.
    ReadOut,
    /// Data enters the memory through this access.
    WriteIn,
}

impl fmt::Display for PortUse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortUse::ReadOut => write!(f, "rd"),
            PortUse::WriteIn => write!(f, "wr"),
        }
    }
}

/// Index of a port within its memory module.
pub type PortId = usize;

/// One physical memory port with its direction and real bandwidth
/// (`RealBW` in the paper, in bits per cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Port {
    /// Direction capability.
    pub dir: PortDir,
    /// Sustained bandwidth in bits per clock cycle.
    pub bw_bits: u64,
}

impl Port {
    /// A read-only port with `bw_bits` bits/cycle.
    pub fn read(bw_bits: u64) -> Self {
        Self {
            dir: PortDir::Read,
            bw_bits,
        }
    }

    /// A write-only port with `bw_bits` bits/cycle.
    pub fn write(bw_bits: u64) -> Self {
        Self {
            dir: PortDir::Write,
            bw_bits,
        }
    }

    /// A shared read/write port with `bw_bits` bits/cycle.
    pub fn read_write(bw_bits: u64) -> Self {
        Self {
            dir: PortDir::ReadWrite,
            bw_bits,
        }
    }
}

/// A physical memory module.
///
/// A memory may be *physically shared* by several operands (the paper's
/// global buffer holds W, I and O); the latency model virtually divides it
/// into per-operand Unit Memories (Step 1, "Divide") while its physical
/// ports stay shared (Step 2, "Combine").
///
/// # Example
///
/// ```
/// use ulm_arch::{Memory, MemoryKind, Port};
///
/// let gb = Memory::new("GB", MemoryKind::Sram, 8 * 1024 * 1024 * 8)
///     .with_ports(vec![Port::read(128), Port::write(128)])
///     .as_backing_store();
/// assert_eq!(gb.capacity_bits(), 8 * 1024 * 1024 * 8);
/// assert!(!gb.is_double_buffered());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Memory {
    name: String,
    kind: MemoryKind,
    capacity_bits: u64,
    double_buffered: bool,
    ports: Vec<Port>,
    backing_store: bool,
    replication: u64,
}

impl Memory {
    /// Builds a single-buffered memory with one read/write port of
    /// "infinite" (practically unconstraining) bandwidth; refine with the
    /// builder methods.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bits` is zero.
    pub fn new(name: impl Into<String>, kind: MemoryKind, capacity_bits: u64) -> Self {
        assert!(capacity_bits > 0, "memory capacity must be positive");
        Self {
            name: name.into(),
            kind,
            capacity_bits,
            double_buffered: false,
            ports: vec![Port::read_write(u64::MAX / 4)],
            backing_store: false,
            replication: 1,
        }
    }

    /// Declares that the memory physically replicates each distinct data
    /// word `n` times (e.g. a weight register file that broadcasts one
    /// weight to every PE along the batch-unrolled axis). The mapper-seen
    /// capacity shrinks by `n`; the area model keeps the physical bits.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_replication(mut self, n: u64) -> Self {
        assert!(n > 0, "replication factor must be positive");
        self.replication = n;
        self
    }

    /// Replaces the port list.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is empty or any port has zero bandwidth.
    pub fn with_ports(mut self, ports: Vec<Port>) -> Self {
        assert!(!ports.is_empty(), "a memory needs at least one port");
        assert!(
            ports.iter().all(|p| p.bw_bits > 0),
            "port bandwidth must be positive"
        );
        self.ports = ports;
        self
    }

    /// Marks the memory as double-buffered. Per Table I the mapper then
    /// sees half the physical capacity, and updates may always overlap
    /// compute (`X_REQ = Mem_CC`).
    pub fn double_buffered(mut self) -> Self {
        self.double_buffered = true;
        self
    }

    /// Marks this memory as the backing store at the top of the hierarchy:
    /// capacity checks are waived for it (the paper's case studies sweep
    /// layers whose tensors exceed the 1 MB GB; the GB is treated as fed
    /// from off-chip outside the intra-layer model).
    pub fn as_backing_store(mut self) -> Self {
        self.backing_store = true;
        self
    }

    /// Memory name (unique within a hierarchy by convention).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Memory class for area/energy models.
    pub fn kind(&self) -> MemoryKind {
        self.kind
    }

    /// Physical capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.capacity_bits
    }

    /// The capacity visible to the mapper in *distinct* data bits: the
    /// physical capacity divided by the replication factor, halved again
    /// for double-buffered memories (Table I, "Mapper-seen capacity").
    pub fn mapper_capacity_bits(&self) -> u64 {
        let distinct = self.capacity_bits / self.replication;
        if self.double_buffered {
            distinct / 2
        } else {
            distinct
        }
    }

    /// The physical replication factor (1 when data is not broadcast).
    pub fn replication(&self) -> u64 {
        self.replication
    }

    /// True if double-buffered.
    pub fn is_double_buffered(&self) -> bool {
        self.double_buffered
    }

    /// True if capacity checks are waived (top-level backing store).
    pub fn is_backing_store(&self) -> bool {
        self.backing_store
    }

    /// The physical ports.
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Replaces the physical capacity in place — the knob-override path
    /// for `mem.<name>.size` what-if edits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero (same invariant as [`Memory::new`]).
    pub fn set_capacity_bits(&mut self, bits: u64) {
        assert!(bits > 0, "memory capacity must be positive");
        self.capacity_bits = bits;
    }

    /// Replaces one port's bandwidth in place — the knob-override path
    /// for `mem.<name>.bw` what-if edits. The port keeps its direction,
    /// so link structure is unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or `bw_bits` is zero (same
    /// invariant as [`Memory::with_ports`]).
    pub fn set_port_bandwidth(&mut self, port: PortId, bw_bits: u64) {
        assert!(bw_bits > 0, "port bandwidth must be positive");
        self.ports[port].bw_bits = bw_bits;
    }

    /// Default port for `usage`: the first port supporting the direction,
    /// preferring dedicated (single-direction) ports over shared ones.
    pub fn default_port(&self, usage: PortUse) -> Option<PortId> {
        let dedicated = self
            .ports
            .iter()
            .position(|p| p.dir.supports(usage) && p.dir != PortDir::ReadWrite);
        dedicated.or_else(|| self.ports.iter().position(|p| p.dir.supports(usage)))
    }
}

impl fmt::Display for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {} bits{})",
            self.name,
            self.kind,
            self.capacity_bits,
            if self.double_buffered { ", db" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_direction_support() {
        assert!(PortDir::Read.supports(PortUse::ReadOut));
        assert!(!PortDir::Read.supports(PortUse::WriteIn));
        assert!(PortDir::Write.supports(PortUse::WriteIn));
        assert!(!PortDir::Write.supports(PortUse::ReadOut));
        assert!(PortDir::ReadWrite.supports(PortUse::ReadOut));
        assert!(PortDir::ReadWrite.supports(PortUse::WriteIn));
    }

    #[test]
    fn mapper_capacity_halved_when_double_buffered() {
        let m = Memory::new("lb", MemoryKind::Sram, 1024);
        assert_eq!(m.mapper_capacity_bits(), 1024);
        let db = m.double_buffered();
        assert_eq!(db.mapper_capacity_bits(), 512);
        assert_eq!(db.capacity_bits(), 1024);
    }

    #[test]
    fn default_port_prefers_dedicated() {
        let m = Memory::new("m", MemoryKind::Sram, 64).with_ports(vec![
            Port::read_write(32),
            Port::read(64),
            Port::write(64),
        ]);
        assert_eq!(m.default_port(PortUse::ReadOut), Some(1));
        assert_eq!(m.default_port(PortUse::WriteIn), Some(2));
        let single = Memory::new("s", MemoryKind::Sram, 64).with_ports(vec![Port::read_write(32)]);
        assert_eq!(single.default_port(PortUse::ReadOut), Some(0));
        assert_eq!(single.default_port(PortUse::WriteIn), Some(0));
    }

    #[test]
    fn default_port_missing_direction() {
        let m = Memory::new("ro", MemoryKind::Sram, 64).with_ports(vec![Port::read(8)]);
        assert_eq!(m.default_port(PortUse::WriteIn), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Memory::new("z", MemoryKind::Sram, 0);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn empty_ports_rejected() {
        let _ = Memory::new("m", MemoryKind::Sram, 8).with_ports(vec![]);
    }
}
