//! Preset architectures from the paper.
//!
//! * [`validation_chip`] — the in-house 7 nm accelerator of Section IV:
//!   16x32 PE systolic array with 2 MACs per PE (1K MACs), 8 b W/I
//!   registers per MAC, a 24 b output register per PE, 32 KB W-LB with a
//!   256 b bus, 64 KB I-LB with a 512 b bus, and a 1 MB GB built from 16
//!   64 KB macros.
//! * [`case_study_chip`] — the scaled-down version used by Case studies 1
//!   and 2: 8x16 PE (16x16 MACs), 16 KB W-LB, 8 KB I-LB, 1 MB GB with
//!   128 bit/cycle read/write bandwidth, spatial unrolling `K16 | B8 | C2`.
//! * [`scaled_case_study_chip`] — the Case-study-3 variants (16x16 /
//!   32x32 / 64x64 MAC arrays with proportionally scaled memories).
//! * [`toy_chip`] — a deliberately tiny two-level design for worked
//!   examples and hand-checked tests.
//! * [`fusion_chip`] — the toy chip with a DRAM level above the (now
//!   shared, non-backing) local buffer, so depth-first fusion and
//!   KV-cache residency have a top interface worth eliding.

use crate::mem::{Memory, MemoryKind, Port};
use crate::{Architecture, MacArray, MemoryHierarchy, StallIntegration};
use ulm_workload::{Dim, Operand};

/// A preset architecture bundled with the spatial unrolling the paper uses
/// on it, as `(dim, factor)` pairs whose product equals the MAC count.
#[derive(Debug, Clone)]
pub struct PresetChip {
    /// The architecture.
    pub arch: Architecture,
    /// Spatial unrolling, e.g. `K 16 | B 8 | C 2`.
    pub spatial: Vec<(Dim, u64)>,
}

const KB: u64 = 8 * 1024; // bits per kilobyte

/// The paper's validation chip (Section IV / Fig. 5a).
///
/// `gb_bw_bits` is the GB read/write bus width in bits per cycle; the
/// paper does not publish it, 1024 matches a 16-macro (64 KB each)
/// bank-interleaved design.
pub fn validation_chip_with_gb_bw(gb_bw_bits: u64) -> PresetChip {
    let array = MacArray::new(16, 32, 2); // 1024 MACs
    let macs = array.num_macs();
    let pes = array.num_pes();

    let mut b = MemoryHierarchy::builder();
    // Weight-stationary systolic dataflow: the array spatially unrolls
    // K (32 columns) and C (16 rows x 2 MACs/PE), so the W registers hold
    // one full K32xC32 tile (no broadcast), inputs broadcast along the 32
    // K-columns, and the per-PE output registers act as the C-reduction
    // pipeline (16 pipeline copies per distinct output).
    let w_reg = b.add_memory(
        Memory::new("W-Reg", MemoryKind::RegisterFile, macs * 8)
            .with_ports(vec![Port::read(macs * 8), Port::write(256)]),
    );
    let i_reg = b.add_memory(
        Memory::new("I-Reg", MemoryKind::RegisterFile, macs * 8)
            .with_ports(vec![Port::read(macs * 8), Port::write(512)])
            .with_replication(32),
    );
    let o_reg = b.add_memory(
        Memory::new("O-Reg", MemoryKind::RegisterFile, pes * 24)
            .with_ports(vec![Port::read(pes * 24), Port::write(pes * 24)])
            .with_replication(16),
    );
    let w_lb = b.add_memory(
        Memory::new("W-LB", MemoryKind::Sram, 32 * KB)
            .with_ports(vec![Port::read(256), Port::write(256)]),
    );
    let i_lb = b.add_memory(
        Memory::new("I-LB", MemoryKind::Sram, 64 * KB)
            .with_ports(vec![Port::read(512), Port::write(512)]),
    );
    let gb = b.add_memory(
        Memory::new("GB", MemoryKind::Sram, 1024 * KB)
            .with_ports(vec![Port::read(gb_bw_bits), Port::write(gb_bw_bits)])
            .as_backing_store(),
    );
    b.set_chain(Operand::W, vec![w_reg, w_lb, gb]);
    b.set_chain(Operand::I, vec![i_reg, i_lb, gb]);
    b.set_chain(Operand::O, vec![o_reg, gb]);
    let hierarchy = b.build().expect("preset hierarchy is well-formed");

    // Step-3 coherency: stalls within one operand's chain are nested (a
    // local-buffer chunk swap blocks the register refills behind it), so
    // the W and I chains each integrate sequentially; distinct chains
    // overlap (max).
    let groups = StallIntegration::Groups(vec![vec![w_reg, w_lb], vec![i_reg, i_lb]]);

    PresetChip {
        arch: Architecture::new("validation-chip", array, hierarchy).with_stall_integration(groups),
        spatial: vec![(Dim::K, 32), (Dim::C, 16), (Dim::C, 2)],
    }
}

/// [`validation_chip_with_gb_bw`] at the default 1024 bit/cycle GB bus.
pub fn validation_chip() -> PresetChip {
    validation_chip_with_gb_bw(1024)
}

/// The scaled-down chip of Case studies 1 and 2 (Section V): 8x16 PE with
/// 2 MACs per PE (16x16 MACs), 16 KB W-LB, 8 KB I-LB, 1 MB GB with
/// `gb_bw_bits` read/write bandwidth (the paper fixes 128), spatial
/// unrolling `K 16 | B 8 | C 2`.
pub fn case_study_chip(gb_bw_bits: u64) -> Architecture {
    scaled_case_study_chip(16, gb_bw_bits).arch
}

/// Case-study-3 family: a `side x side` MAC array (built as
/// `side/2 x side` PEs with 2 MACs each) with register and local-buffer
/// capacities scaled proportionally to the array, and spatial unrolling
/// `K side | B side/2 | C 2`.
///
/// `side = 16` reproduces [`case_study_chip`] exactly.
///
/// # Panics
///
/// Panics if `side < 2` or `side` is odd.
pub fn scaled_case_study_chip(side: u64, gb_bw_bits: u64) -> PresetChip {
    assert!(
        side >= 2 && side.is_multiple_of(2),
        "array side must be even, got {side}"
    );
    let array = MacArray::new(side / 2, side, 2);
    let macs = array.num_macs();
    let pes = array.num_pes();
    let scale = side / 16; // capacity scale factor vs the 16x16 baseline

    let mut b = MemoryHierarchy::builder();
    // Weights broadcast along the B-unrolled axis (side/2-fold), inputs
    // along the K-unrolled axis (side-fold).
    let w_reg = b.add_memory(
        Memory::new("W-Reg", MemoryKind::RegisterFile, macs * 8)
            .with_ports(vec![Port::read(macs * 8), Port::write(256 * scale.max(1))])
            .with_replication(side / 2),
    );
    let i_reg = b.add_memory(
        Memory::new("I-Reg", MemoryKind::RegisterFile, macs * 8)
            .with_ports(vec![Port::read(macs * 8), Port::write(256 * scale.max(1))])
            .with_replication(side),
    );
    let o_reg = b.add_memory(
        Memory::new("O-Reg", MemoryKind::RegisterFile, pes * 24)
            .with_ports(vec![Port::read(pes * 24), Port::write(pes * 24)]),
    );
    let w_lb = b.add_memory(
        Memory::new("W-LB", MemoryKind::Sram, 16 * KB * scale.max(1)).with_ports(vec![
            Port::read(256 * scale.max(1)),
            Port::write(128 * scale.max(1)),
        ]),
    );
    let i_lb = b.add_memory(
        Memory::new("I-LB", MemoryKind::Sram, 8 * KB * scale.max(1)).with_ports(vec![
            Port::read(256 * scale.max(1)),
            Port::write(128 * scale.max(1)),
        ]),
    );
    let gb = b.add_memory(
        Memory::new("GB", MemoryKind::Sram, 1024 * KB)
            .with_ports(vec![Port::read(gb_bw_bits), Port::write(gb_bw_bits)])
            .as_backing_store(),
    );
    b.set_chain(Operand::W, vec![w_reg, w_lb, gb]);
    b.set_chain(Operand::I, vec![i_reg, i_lb, gb]);
    b.set_chain(Operand::O, vec![o_reg, gb]);
    let hierarchy = b.build().expect("preset hierarchy is well-formed");

    PresetChip {
        arch: Architecture::new(format!("case-study-{side}x{side}"), array, hierarchy),
        spatial: vec![(Dim::K, side), (Dim::B, side / 2), (Dim::C, 2)],
    }
}

/// A 256-MAC design for *native* convolution (no Im2Col): the array
/// unrolls output channels and an output-pixel tile (`K 16 | OY 4 |
/// OX 4`), so the input registers hold a sliding-window halo and the
/// model's partially-relevant loop handling is exercised end to end.
/// Weight registers broadcast along the 16 output pixels; input registers
/// along the 16 output channels.
pub fn conv_native_chip() -> PresetChip {
    let array = MacArray::new(16, 16, 1);
    let macs = array.num_macs();
    let mut b = MemoryHierarchy::builder();
    let w_reg = b.add_memory(
        Memory::new("W-Reg", MemoryKind::RegisterFile, macs * 8)
            .with_ports(vec![Port::read(macs * 8), Port::write(256)])
            .with_replication(16),
    );
    // The input halo for a 4x4 output tile under a 3x3 filter is 6x6 =
    // 36 pixels: give the I regs halo headroom (4 words per MAC).
    let i_reg = b.add_memory(
        Memory::new("I-Reg", MemoryKind::RegisterFile, macs * 4 * 8)
            .with_ports(vec![Port::read(macs * 8), Port::write(256)])
            .with_replication(16),
    );
    let o_reg = b.add_memory(
        Memory::new("O-Reg", MemoryKind::RegisterFile, macs * 24)
            .with_ports(vec![Port::read(macs * 24), Port::write(macs * 24)]),
    );
    let w_lb = b.add_memory(
        Memory::new("W-LB", MemoryKind::Sram, 16 * KB)
            .with_ports(vec![Port::read(256), Port::write(128)]),
    );
    let i_lb = b.add_memory(
        Memory::new("I-LB", MemoryKind::Sram, 16 * KB)
            .with_ports(vec![Port::read(256), Port::write(128)]),
    );
    let gb = b.add_memory(
        Memory::new("GB", MemoryKind::Sram, 1024 * KB)
            .with_ports(vec![Port::read(256), Port::write(256)])
            .as_backing_store(),
    );
    b.set_chain(Operand::W, vec![w_reg, w_lb, gb]);
    b.set_chain(Operand::I, vec![i_reg, i_lb, gb]);
    b.set_chain(Operand::O, vec![o_reg, gb]);
    let hierarchy = b.build().expect("preset hierarchy is well-formed");
    PresetChip {
        arch: Architecture::new("conv-native", array, hierarchy),
        spatial: vec![(Dim::K, 16), (Dim::OY, 4), (Dim::OX, 4)],
    }
}

/// A TPU-style weight-stationary design: a `side x side` MAC array
/// unrolling `K | C`, **double-buffered** weight registers (the classic
/// shadow-tile swap — the only preset exercising Table I's DB column end
/// to end), a deep on-chip accumulator memory for outputs, a unified
/// input buffer and a weight FIFO fed from the GB.
///
/// # Panics
///
/// Panics if `side` is zero.
pub fn tpu_like_chip(side: u64) -> PresetChip {
    assert!(side > 0, "array side must be positive");
    let array = MacArray::new(side, side, 1);
    let macs = array.num_macs();
    let mut b = MemoryHierarchy::builder();
    // Two physical tiles; the mapper sees one (Table I: A/2).
    let w_reg = b.add_memory(
        Memory::new("W-Reg", MemoryKind::RegisterFile, macs * 2 * 8)
            .with_ports(vec![Port::read(macs * 8), Port::write(side * 8)])
            .double_buffered(),
    );
    // Inputs pipeline along the K columns (side-fold replication).
    let i_reg = b.add_memory(
        Memory::new("I-Reg", MemoryKind::RegisterFile, macs * 8)
            .with_ports(vec![Port::read(macs * 8), Port::write(side * 8)])
            .with_replication(side),
    );
    // Deep accumulators: `side` lanes x 2048 entries x 24 b.
    let acc = b.add_memory(
        Memory::new("Acc", MemoryKind::Sram, side * 2048 * 24)
            .with_ports(vec![Port::read(side * 24), Port::write(side * 24)]),
    );
    let w_fifo = b.add_memory(
        Memory::new("W-FIFO", MemoryKind::Sram, 512 * KB)
            .with_ports(vec![Port::read(side * 8), Port::write(side * 8)]),
    );
    let ub = b.add_memory(
        Memory::new("UB", MemoryKind::Sram, 4 * 1024 * KB)
            .with_ports(vec![Port::read(side * 8), Port::write(side * 8)]),
    );
    let gb = b.add_memory(
        Memory::new("GB", MemoryKind::Sram, 8 * 1024 * KB)
            .with_ports(vec![Port::read(side * 8), Port::write(side * 8)])
            .as_backing_store(),
    );
    b.set_chain(Operand::W, vec![w_reg, w_fifo, gb]);
    b.set_chain(Operand::I, vec![i_reg, ub, gb]);
    b.set_chain(Operand::O, vec![acc, gb]);
    let hierarchy = b.build().expect("preset hierarchy is well-formed");
    PresetChip {
        arch: Architecture::new(format!("tpu-like-{side}"), array, hierarchy),
        spatial: vec![(Dim::K, side), (Dim::C, side)],
    }
}

/// A tiny 4-MAC, two-level design for worked examples and hand-checked
/// tests: per-operand registers under a shared local buffer that doubles
/// as the (backing-store) top level. Spatial unrolling `K 2 | B 2`.
pub fn toy_chip() -> PresetChip {
    let array = MacArray::new(2, 2, 1);
    let mut b = MemoryHierarchy::builder();
    let w_reg = b.add_memory(
        Memory::new("W-Reg", MemoryKind::RegisterFile, 4 * 8)
            .with_ports(vec![Port::read(4 * 8), Port::write(8)])
            .with_replication(2), // broadcast across the B-unrolled axis
    );
    let i_reg = b.add_memory(
        Memory::new("I-Reg", MemoryKind::RegisterFile, 4 * 8)
            .with_ports(vec![Port::read(4 * 8), Port::write(8)])
            .with_replication(2), // broadcast across the K-unrolled axis
    );
    let o_reg = b.add_memory(
        Memory::new("O-Reg", MemoryKind::RegisterFile, 4 * 24)
            .with_ports(vec![Port::read(4 * 24), Port::write(4 * 24)]),
    );
    let lb = b.add_memory(
        Memory::new("LB", MemoryKind::Sram, 16 * KB)
            .with_ports(vec![Port::read(16), Port::write(16)])
            .as_backing_store(),
    );
    b.set_chain(Operand::W, vec![w_reg, lb]);
    b.set_chain(Operand::I, vec![i_reg, lb]);
    b.set_chain(Operand::O, vec![o_reg, lb]);
    let hierarchy = b.build().expect("preset hierarchy is well-formed");
    PresetChip {
        arch: Architecture::new("toy", array, hierarchy),
        spatial: vec![(Dim::K, 2), (Dim::B, 2)],
    }
}

/// The toy chip with a DRAM level stacked above its local buffer.
///
/// Unlike every other preset, the shared "LB" here is *not* the backing
/// store: all three operand chains run `reg -> LB -> DRAM`, so a fused
/// segment (or a decode-resident KV cache) pinned at the LB has real
/// `LB <-> DRAM` interfaces to elide. The DRAM link is kept deliberately
/// narrow (8 b/cy) so elided round-trips show up clearly in latency.
pub fn fusion_chip() -> PresetChip {
    let array = MacArray::new(2, 2, 1);
    let mut b = MemoryHierarchy::builder();
    let w_reg = b.add_memory(
        Memory::new("W-Reg", MemoryKind::RegisterFile, 4 * 8)
            .with_ports(vec![Port::read(4 * 8), Port::write(8)])
            .with_replication(2), // broadcast across the B-unrolled axis
    );
    let i_reg = b.add_memory(
        Memory::new("I-Reg", MemoryKind::RegisterFile, 4 * 8)
            .with_ports(vec![Port::read(4 * 8), Port::write(8)])
            .with_replication(2), // broadcast across the K-unrolled axis
    );
    let o_reg = b.add_memory(
        Memory::new("O-Reg", MemoryKind::RegisterFile, 4 * 24)
            .with_ports(vec![Port::read(4 * 24), Port::write(4 * 24)]),
    );
    let lb = b.add_memory(
        Memory::new("LB", MemoryKind::Sram, 16 * KB)
            .with_ports(vec![Port::read(16), Port::write(16)]),
    );
    let dram = b.add_memory(
        Memory::new("DRAM", MemoryKind::Sram, 64 * 1024 * KB)
            .with_ports(vec![Port::read(8), Port::write(8)])
            .as_backing_store(),
    );
    b.set_chain(Operand::W, vec![w_reg, lb, dram]);
    b.set_chain(Operand::I, vec![i_reg, lb, dram]);
    b.set_chain(Operand::O, vec![o_reg, lb, dram]);
    let hierarchy = b.build().expect("preset hierarchy is well-formed");
    PresetChip {
        arch: Architecture::new("fusion-toy", array, hierarchy),
        spatial: vec![(Dim::K, 2), (Dim::B, 2)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::PortUse;

    #[test]
    fn validation_chip_matches_paper_parameters() {
        let chip = validation_chip();
        let a = &chip.arch;
        assert_eq!(a.mac_array().num_macs(), 1024);
        assert_eq!(a.mac_array().num_pes(), 512);
        let h = a.hierarchy();
        let w_lb = h.find("W-LB").unwrap();
        assert_eq!(h.mem(w_lb).capacity_bits(), 32 * KB);
        let i_lb = h.find("I-LB").unwrap();
        assert_eq!(h.mem(i_lb).capacity_bits(), 64 * KB);
        let gb = h.find("GB").unwrap();
        assert_eq!(h.mem(gb).capacity_bits(), 1024 * KB);
        assert!(h.mem(gb).is_backing_store());
        // 256b / 512b LB buses.
        assert_eq!(h.port(w_lb, Operand::W, PortUse::ReadOut).1, 256);
        assert_eq!(h.port(i_lb, Operand::I, PortUse::ReadOut).1, 512);
        // Spatial product covers the whole array.
        let prod: u64 = chip.spatial.iter().map(|(_, f)| f).product();
        assert_eq!(prod, 1024);
    }

    #[test]
    fn case_study_chip_matches_paper_parameters() {
        let a = case_study_chip(128);
        assert_eq!(a.mac_array().num_macs(), 256);
        let h = a.hierarchy();
        assert_eq!(h.mem(h.find("W-LB").unwrap()).capacity_bits(), 16 * KB);
        assert_eq!(h.mem(h.find("I-LB").unwrap()).capacity_bits(), 8 * KB);
        let gb = h.find("GB").unwrap();
        assert_eq!(h.port(gb, Operand::O, PortUse::WriteIn).1, 128);
        assert_eq!(h.port(gb, Operand::I, PortUse::ReadOut).1, 128);
        // O bypasses the LB level.
        assert_eq!(h.chain(Operand::O).len(), 2);
    }

    #[test]
    fn scaled_chips_scale_array_and_spatial() {
        for side in [16, 32, 64] {
            let chip = scaled_case_study_chip(side, 128);
            assert_eq!(chip.arch.mac_array().num_macs(), side * side);
            let prod: u64 = chip.spatial.iter().map(|(_, f)| f).product();
            assert_eq!(prod, side * side);
        }
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_side_rejected() {
        let _ = scaled_case_study_chip(15, 128);
    }

    #[test]
    fn conv_native_chip_unrolls_output_pixels() {
        let chip = conv_native_chip();
        assert_eq!(chip.arch.mac_array().num_macs(), 256);
        let prod: u64 = chip.spatial.iter().map(|(_, f)| f).product();
        assert_eq!(prod, 256);
        assert!(chip.spatial.iter().any(|(d, _)| *d == Dim::OY));
        // The I regs hold 4x the distinct spatial words for halo room.
        let h = chip.arch.hierarchy();
        let i_reg = h.mem(h.find("I-Reg").unwrap());
        assert_eq!(i_reg.mapper_capacity_bits(), 256 * 4 * 8 / 16);
    }

    #[test]
    fn tpu_like_chip_double_buffers_weights() {
        let chip = tpu_like_chip(64);
        assert_eq!(chip.arch.mac_array().num_macs(), 4096);
        let h = chip.arch.hierarchy();
        let w_reg = h.mem(h.find("W-Reg").unwrap());
        assert!(w_reg.is_double_buffered());
        // Mapper sees exactly one K x C tile.
        assert_eq!(w_reg.mapper_capacity_bits(), 4096 * 8);
        // Outputs accumulate in a deep on-chip memory, not 1-word regs.
        let acc = h.mem(h.find("Acc").unwrap());
        assert!(acc.mapper_capacity_bits() >= 64 * 2048 * 24);
    }

    #[test]
    fn toy_chip_is_tiny_and_valid() {
        let chip = toy_chip();
        assert_eq!(chip.arch.mac_array().num_macs(), 4);
        assert_eq!(chip.arch.hierarchy().depth(), 2);
    }

    #[test]
    fn fusion_chip_shares_a_non_backing_lb_below_dram() {
        let chip = fusion_chip();
        let h = chip.arch.hierarchy();
        assert_eq!(h.depth(), 3);
        let lb = h.find("LB").unwrap();
        assert!(!h.mem(lb).is_backing_store());
        let dram = h.find("DRAM").unwrap();
        assert!(h.mem(dram).is_backing_store());
        // The LB sits in all three chains: a pin there elides LB<->DRAM
        // traffic for any operand.
        for op in [Operand::W, Operand::I, Operand::O] {
            assert_eq!(h.chain(op)[1], lb, "{op:?} chain must route via LB");
        }
    }
}
