//! The MAC (multiply-accumulate) array.

use std::fmt;

/// A 2-D processing-element array with one or more MAC units per PE.
///
/// The array size sets the performance roofline: `CC_ideal = total MAC
/// ops / num_macs` (Fig. 1b, scenario 1).
///
/// # Example
///
/// ```
/// use ulm_arch::MacArray;
///
/// // The paper's validation chip: 16x32 PEs, 2 MACs per PE = 1K MACs.
/// let arr = MacArray::new(16, 32, 2);
/// assert_eq!(arr.num_macs(), 1024);
/// assert_eq!(arr.num_pes(), 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct MacArray {
    rows: u64,
    cols: u64,
    macs_per_pe: u64,
}

impl MacArray {
    /// Builds a `rows x cols` PE array with `macs_per_pe` MACs in each PE.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(rows: u64, cols: u64, macs_per_pe: u64) -> Self {
        assert!(
            rows > 0 && cols > 0 && macs_per_pe > 0,
            "MAC array dimensions must be positive"
        );
        Self {
            rows,
            cols,
            macs_per_pe,
        }
    }

    /// A square array of single-MAC PEs (`side x side` MACs).
    pub fn square(side: u64) -> Self {
        Self::new(side, side, 1)
    }

    /// PE rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// PE columns.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// MAC units per PE.
    pub fn macs_per_pe(&self) -> u64 {
        self.macs_per_pe
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> u64 {
        self.rows * self.cols
    }

    /// Total MAC units — the denominator of `CC_ideal`.
    pub fn num_macs(&self) -> u64 {
        self.num_pes() * self.macs_per_pe
    }
}

impl fmt::Display for MacArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} PEs x {} MAC ({} MACs)",
            self.rows,
            self.cols,
            self.macs_per_pe,
            self.num_macs()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_counts() {
        let a = MacArray::new(8, 16, 2);
        assert_eq!(a.num_pes(), 128);
        assert_eq!(a.num_macs(), 256);
        assert_eq!(MacArray::square(64).num_macs(), 4096);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_rejected() {
        let _ = MacArray::new(0, 16, 1);
    }

    #[test]
    fn display_includes_totals() {
        let s = MacArray::new(16, 32, 2).to_string();
        assert!(s.contains("1024"), "{s}");
    }
}
