//! Architecture description files: a JSON schema for user-supplied
//! accelerators, used by the `ulm` CLI's `--arch-file` option.
//!
//! ```json
//! {
//!   "name": "my-chip",
//!   "array": { "rows": 8, "cols": 16, "macs_per_pe": 2 },
//!   "spatial": [ ["K", 16], ["B", 8], ["C", 2] ],
//!   "memories": [
//!     { "name": "W-Reg", "kind": "reg", "capacity_bits": 2048,
//!       "ports": [ { "dir": "r", "bw_bits": 2048 },
//!                  { "dir": "w", "bw_bits": 256 } ],
//!       "replication": 8 },
//!     { "name": "GB", "kind": "sram", "capacity_bits": 8388608,
//!       "ports": [ { "dir": "r", "bw_bits": 128 },
//!                  { "dir": "w", "bw_bits": 128 } ],
//!       "backing_store": true }
//!   ],
//!   "chains": { "W": ["W-Reg", "GB"], "I": ["GB"], "O": ["GB"] },
//!   "sequential_groups": [ ["W-Reg", "GB"] ]
//! }
//! ```
//!
//! `kind` is `reg` or `sram`; `dir` is `r`, `w` or `rw`;
//! `double_buffered`, `backing_store` and `replication` are optional;
//! `sequential_groups` configures the Step-3 stall-integration policy
//! (memories in one group stall sequentially).

use crate::{
    ArchError, Architecture, MacArray, Memory, MemoryHierarchy, MemoryKind, Port, StallIntegration,
};
use serde::Deserialize;
use std::error::Error;
use std::fmt;
use ulm_workload::{Dim, Operand};

/// MAC array block.
#[derive(Debug, Clone, Copy, Deserialize)]
pub struct ArrayDesc {
    /// PE rows.
    pub rows: u64,
    /// PE columns.
    pub cols: u64,
    /// MACs per PE (default 1).
    #[serde(default = "one")]
    pub macs_per_pe: u64,
}

fn one() -> u64 {
    1
}

/// One memory port.
#[derive(Debug, Clone, Deserialize)]
pub struct PortDesc {
    /// `r`, `w` or `rw`.
    pub dir: String,
    /// Bits per cycle.
    pub bw_bits: u64,
}

/// One memory module.
#[derive(Debug, Clone, Deserialize)]
pub struct MemoryDesc {
    /// Unique name (referenced by the chains).
    pub name: String,
    /// `reg` or `sram`.
    pub kind: String,
    /// Physical capacity in bits.
    pub capacity_bits: u64,
    /// Ports in declaration order.
    pub ports: Vec<PortDesc>,
    /// Double-buffered (default false).
    #[serde(default)]
    pub double_buffered: bool,
    /// Top-level backing store (capacity check waived; default false).
    #[serde(default)]
    pub backing_store: bool,
    /// Physical word replication (default 1).
    #[serde(default = "one")]
    pub replication: u64,
}

/// Per-operand chains, memory names innermost first.
#[derive(Debug, Clone, Deserialize)]
pub struct ChainsDesc {
    /// Weight chain.
    #[serde(rename = "W")]
    pub w: Vec<String>,
    /// Input chain.
    #[serde(rename = "I")]
    pub i: Vec<String>,
    /// Output chain.
    #[serde(rename = "O")]
    pub o: Vec<String>,
}

/// A whole architecture description.
#[derive(Debug, Clone, Deserialize)]
pub struct ArchDesc {
    /// Architecture name.
    pub name: String,
    /// The MAC array.
    pub array: ArrayDesc,
    /// Spatial unrolling as `[dim, factor]` pairs.
    pub spatial: Vec<(String, u64)>,
    /// The memory modules.
    pub memories: Vec<MemoryDesc>,
    /// Per-operand memory chains.
    pub chains: ChainsDesc,
    /// Step-3 sequential groups by memory name (optional).
    #[serde(default)]
    pub sequential_groups: Vec<Vec<String>>,
}

/// Errors from architecture descriptions.
#[derive(Debug)]
pub enum ArchDescError {
    /// Malformed JSON.
    Json(serde_json::Error),
    /// Unknown enum string (`kind`, `dir`, dim name).
    UnknownToken {
        /// Which field.
        field: &'static str,
        /// The offending value.
        value: String,
    },
    /// A chain or group references an undeclared memory.
    UnknownMemory {
        /// The missing name.
        name: String,
    },
    /// The assembled hierarchy failed validation.
    Arch(ArchError),
}

impl fmt::Display for ArchDescError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchDescError::Json(e) => write!(f, "invalid architecture description: {e}"),
            ArchDescError::UnknownToken { field, value } => {
                write!(f, "unknown {field} `{value}`")
            }
            ArchDescError::UnknownMemory { name } => {
                write!(f, "chain references undeclared memory `{name}`")
            }
            ArchDescError::Arch(e) => write!(f, "invalid hierarchy: {e}"),
        }
    }
}

impl Error for ArchDescError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArchDescError::Json(e) => Some(e),
            ArchDescError::Arch(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for ArchDescError {
    fn from(e: ArchError) -> Self {
        ArchDescError::Arch(e)
    }
}

impl ArchDesc {
    /// Parses a JSON architecture description.
    ///
    /// # Errors
    ///
    /// Returns [`ArchDescError::Json`] on malformed JSON.
    pub fn from_json(s: &str) -> Result<Self, ArchDescError> {
        serde_json::from_str(s).map_err(ArchDescError::Json)
    }

    /// Instantiates the architecture and its spatial unrolling.
    ///
    /// # Errors
    ///
    /// Returns [`ArchDescError`] on unknown tokens, dangling memory
    /// references or hierarchy validation failures.
    pub fn build(&self) -> Result<(Architecture, Vec<(Dim, u64)>), ArchDescError> {
        let array = MacArray::new(self.array.rows, self.array.cols, self.array.macs_per_pe);
        let mut b = MemoryHierarchy::builder();
        let mut ids = std::collections::HashMap::new();
        for m in &self.memories {
            let kind = match m.kind.as_str() {
                "reg" => MemoryKind::RegisterFile,
                "sram" => MemoryKind::Sram,
                other => {
                    return Err(ArchDescError::UnknownToken {
                        field: "memory kind",
                        value: other.to_string(),
                    })
                }
            };
            let ports = m
                .ports
                .iter()
                .map(|p| match p.dir.as_str() {
                    "r" => Ok(Port::read(p.bw_bits)),
                    "w" => Ok(Port::write(p.bw_bits)),
                    "rw" => Ok(Port::read_write(p.bw_bits)),
                    other => Err(ArchDescError::UnknownToken {
                        field: "port dir",
                        value: other.to_string(),
                    }),
                })
                .collect::<Result<Vec<_>, _>>()?;
            let mut mem = Memory::new(&m.name, kind, m.capacity_bits)
                .with_ports(ports)
                .with_replication(m.replication);
            if m.double_buffered {
                mem = mem.double_buffered();
            }
            if m.backing_store {
                mem = mem.as_backing_store();
            }
            ids.insert(m.name.clone(), b.add_memory(mem));
        }
        let resolve = |names: &[String]| -> Result<Vec<_>, ArchDescError> {
            names
                .iter()
                .map(|n| {
                    ids.get(n)
                        .copied()
                        .ok_or_else(|| ArchDescError::UnknownMemory { name: n.clone() })
                })
                .collect()
        };
        b.set_chain(Operand::W, resolve(&self.chains.w)?);
        b.set_chain(Operand::I, resolve(&self.chains.i)?);
        b.set_chain(Operand::O, resolve(&self.chains.o)?);
        let hierarchy = b.build()?;

        let spatial = self
            .spatial
            .iter()
            .map(|(d, f)| {
                Dim::parse(d)
                    .map(|dim| (dim, *f))
                    .ok_or_else(|| ArchDescError::UnknownToken {
                        field: "spatial dim",
                        value: d.clone(),
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;

        let mut arch = Architecture::new(self.name.clone(), array, hierarchy);
        if !self.sequential_groups.is_empty() {
            let groups = self
                .sequential_groups
                .iter()
                .map(|g| resolve(g))
                .collect::<Result<Vec<_>, _>>()?;
            arch = arch.with_stall_integration(StallIntegration::Groups(groups));
        }
        Ok((arch, spatial))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PortUse;

    const EXAMPLE: &str = r#"{
        "name": "my-chip",
        "array": { "rows": 8, "cols": 16, "macs_per_pe": 2 },
        "spatial": [ ["K", 16], ["B", 8], ["C", 2] ],
        "memories": [
            { "name": "W-Reg", "kind": "reg", "capacity_bits": 2048,
              "ports": [ { "dir": "r", "bw_bits": 2048 },
                         { "dir": "w", "bw_bits": 256 } ],
              "replication": 8 },
            { "name": "GB", "kind": "sram", "capacity_bits": 8388608,
              "ports": [ { "dir": "r", "bw_bits": 128 },
                         { "dir": "w", "bw_bits": 128 } ],
              "backing_store": true }
        ],
        "chains": { "W": ["W-Reg", "GB"], "I": ["GB"], "O": ["GB"] },
        "sequential_groups": [ ["W-Reg", "GB"] ]
    }"#;

    #[test]
    fn example_builds() {
        let desc = ArchDesc::from_json(EXAMPLE).unwrap();
        let (arch, spatial) = desc.build().unwrap();
        assert_eq!(arch.name(), "my-chip");
        assert_eq!(arch.mac_array().num_macs(), 256);
        assert_eq!(spatial.len(), 3);
        let h = arch.hierarchy();
        let w_reg = h.find("W-Reg").unwrap();
        assert_eq!(h.mem(w_reg).replication(), 8);
        assert_eq!(h.port(w_reg, Operand::W, PortUse::WriteIn).1, 256);
        assert!(matches!(
            arch.stall_integration(),
            StallIntegration::Groups(g) if g.len() == 1
        ));
    }

    #[test]
    fn unknown_tokens_are_reported() {
        let bad_kind = EXAMPLE.replace("\"kind\": \"reg\"", "\"kind\": \"dram\"");
        let err = ArchDesc::from_json(&bad_kind).unwrap().build().unwrap_err();
        assert!(err.to_string().contains("dram"), "{err}");

        let bad_dim = EXAMPLE.replace("[\"K\", 16]", "[\"Q\", 16]");
        let err = ArchDesc::from_json(&bad_dim).unwrap().build().unwrap_err();
        assert!(err.to_string().contains('Q'), "{err}");
    }

    #[test]
    fn dangling_chain_reference_is_reported() {
        let bad = EXAMPLE.replace("\"I\": [\"GB\"]", "\"I\": [\"I-LB\"]");
        let err = ArchDesc::from_json(&bad).unwrap().build().unwrap_err();
        assert!(err.to_string().contains("I-LB"), "{err}");
    }

    #[test]
    fn hierarchy_validation_propagates() {
        // Read-only GB cannot accept output write-backs.
        let bad = EXAMPLE.replace(
            r#"{ "dir": "w", "bw_bits": 128 }"#,
            r#"{ "dir": "r", "bw_bits": 128 }"#,
        );
        let err = ArchDesc::from_json(&bad).unwrap().build().unwrap_err();
        assert!(matches!(err, ArchDescError::Arch(_)), "{err}");
    }
}
