//! ZigZag-style analytical energy model.
//!
//! The paper's Case study 1 contrasts a mapping that wins on *energy*
//! (fewer GB accesses) with one that wins on *latency* (less bursty GB
//! traffic); this crate supplies the energy half of that comparison. The
//! model is the standard analytical form (Section I: "count the operations
//! of each hardware component … and multiply these with the corresponding
//! unit energy"):
//!
//! ```text
//! E = Σ_mem (read_bits x e_rd(mem) + write_bits x e_wr(mem)) + MACs x e_mac
//! ```
//!
//! Access counts are *exact*: they use the mapping's distinct-block refill
//! counts (pure reuse across irrelevant loops moves no data), partial-sum
//! round trips are included, and outputs crossing their final interface
//! are counted at the re-quantized width.
//!
//! All counts are read off the shared [`LoweredLayer`] evaluation IR —
//! the same
//! residency tables the latency model and the simulator consume — so the
//! three never disagree about how much data moved. [`EnergyModel::evaluate`]
//! lowers internally; pass an existing IR to
//! [`EnergyModel::evaluate_lowered`] /
//! [`EnergyModel::evaluate_total_lowered`] to skip the re-lowering.
//!
//! # Example
//!
//! ```
//! use ulm_arch::presets;
//! use ulm_energy::EnergyModel;
//! use ulm_mapping::{LoopStack, Mapping, MappedLayer, SpatialUnroll};
//! use ulm_workload::{Dim, Layer, Precision};
//!
//! let chip = presets::toy_chip();
//! let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
//! let mapping = Mapping::with_greedy_alloc(
//!     &chip.arch,
//!     &layer,
//!     SpatialUnroll::new(chip.spatial.clone()),
//!     LoopStack::from_pairs(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]),
//! )?;
//! let view = MappedLayer::new(&layer, &chip.arch, &mapping)?;
//! let report = EnergyModel::new().evaluate(&view);
//! assert!(report.total_pj() > 0.0);
//! # Ok::<(), ulm_mapping::MappingError>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;
use ulm_arch::{Memory, MemoryId, MemoryKind};
use ulm_mapping::MappedLayer;
use ulm_model::{DtlOptions, LoweredLayer};
use ulm_workload::Operand;

/// Unit-energy parameters (femtojoule-denominated, 7 nm-class defaults).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnergyModel {
    /// Register-file access energy, fJ/bit.
    pub reg_fj_per_bit: f64,
    /// SRAM access energy floor, fJ/bit.
    pub sram_base_fj_per_bit: f64,
    /// SRAM access energy growth with capacity: added fJ/bit per
    /// `sqrt(bits)/1024` (wordline/bitline length scaling).
    pub sram_scale_fj_per_bit: f64,
    /// Energy per INT8 MAC operation, fJ.
    pub mac_fj: f64,
    /// Count the MAC array's register-level accesses (reads of W/I and the
    /// accumulator read-modify-write) in the total.
    pub include_compute_accesses: bool,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            // Small flip-flop register files are far cheaper per bit than
            // large SRAM macros (whose bitline/wordline energy grows with
            // capacity) — the gradient that makes data reuse at low levels
            // pay off.
            reg_fj_per_bit: 5.0,
            sram_base_fj_per_bit: 8.0,
            sram_scale_fj_per_bit: 10.0,
            mac_fj: 50.0,
            include_compute_accesses: true,
        }
    }
}

/// Access totals and energy for one memory module.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MemEnergy {
    /// Memory name.
    pub memory: String,
    /// Total bits read.
    pub read_bits: u64,
    /// Total bits written.
    pub write_bits: u64,
    /// Energy in fJ.
    pub energy_fj: f64,
}

/// The energy breakdown of one mapped layer.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnergyReport {
    /// Per-memory access totals, ordered by memory id.
    pub memories: Vec<MemEnergy>,
    /// MAC compute energy in fJ.
    pub mac_fj: f64,
    /// Grand total in fJ.
    pub total_fj: f64,
}

impl EnergyReport {
    /// Total in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.total_fj / 1000.0
    }

    /// Memory-traffic energy only (no MACs), fJ.
    pub fn memory_fj(&self) -> f64 {
        self.total_fj - self.mac_fj
    }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "energy: {:.1} pJ (MACs {:.1} pJ)",
            self.total_pj(),
            self.mac_fj / 1000.0
        )?;
        for m in &self.memories {
            writeln!(
                f,
                "  {:8} rd {:>12} b  wr {:>12} b  {:>10.1} pJ",
                m.memory,
                m.read_bits,
                m.write_bits,
                m.energy_fj / 1000.0
            )?;
        }
        Ok(())
    }
}

/// Reusable buffers for [`EnergyModel::evaluate_total_fast`].
#[derive(Debug, Default)]
pub struct EnergyScratch {
    /// `(touched, read_bits, write_bits)` per memory id. The `touched`
    /// flag mirrors BTreeMap entry creation in [`EnergyModel::evaluate`]
    /// so the final float sum visits exactly the same memories in the
    /// same (ascending id) order.
    traffic: Vec<(bool, u64, u64)>,
    /// The IR rebuilt by [`EnergyModel::evaluate_total_fast`] when the
    /// caller has no lowering of its own to share.
    lowered: LoweredLayer,
}

impl EnergyModel {
    /// The default 7 nm-class parameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access energy of one bit in `mem`, fJ.
    pub fn fj_per_bit(&self, mem: &Memory) -> f64 {
        match mem.kind() {
            MemoryKind::RegisterFile => self.reg_fj_per_bit,
            MemoryKind::Sram => {
                self.sram_base_fj_per_bit
                    + self.sram_scale_fj_per_bit * (mem.capacity_bits() as f64).sqrt() / 1024.0
            }
        }
    }

    /// Evaluates the mapped layer's energy, lowering the view internally.
    pub fn evaluate(&self, view: &MappedLayer<'_>) -> EnergyReport {
        self.evaluate_lowered(view, &LoweredLayer::build(view, DtlOptions::default()))
    }

    /// [`evaluate`](Self::evaluate) over an already-lowered layer,
    /// sharing the IR with the latency model and simulator.
    pub fn evaluate_lowered(&self, view: &MappedLayer<'_>, lowered: &LoweredLayer) -> EnergyReport {
        let h = view.arch().hierarchy();
        let layer = view.layer();
        // (read_bits, write_bits) per memory.
        let mut traffic: BTreeMap<MemoryId, (u64, u64)> = BTreeMap::new();
        self.accumulate(view, lowered, |mid, rd, wr| {
            let e = traffic.entry(mid).or_insert((0, 0));
            e.0 += rd;
            e.1 += wr;
        });

        let memories: Vec<MemEnergy> = traffic
            .into_iter()
            .map(|(mid, (rd, wr))| {
                let mem = h.mem(mid);
                let e = self.fj_per_bit(mem) * (rd + wr) as f64;
                MemEnergy {
                    memory: mem.name().to_string(),
                    read_bits: rd,
                    write_bits: wr,
                    energy_fj: e,
                }
            })
            .collect();
        let mac_fj = self.mac_fj * layer.total_macs() as f64;
        let total_fj = mac_fj + memories.iter().map(|m| m.energy_fj).sum::<f64>();
        EnergyReport {
            memories,
            mac_fj,
            total_fj,
        }
    }

    /// [`evaluate`](Self::evaluate)`.total_fj` without allocating: the
    /// identical per-interface traffic accumulation into a reusable
    /// id-indexed array, summed over the same memories in the same order
    /// so the result is bit-identical. Used by the mapper's fast path.
    pub fn evaluate_total_fast(&self, view: &MappedLayer<'_>, scratch: &mut EnergyScratch) -> f64 {
        let EnergyScratch { traffic, lowered } = scratch;
        LoweredLayer::build_into(view, DtlOptions::default(), lowered);
        self.total_from(view, lowered, traffic)
    }

    /// [`evaluate_total_fast`](Self::evaluate_total_fast) over an
    /// already-lowered layer: no re-lowering, no allocation in steady
    /// state.
    pub fn evaluate_total_lowered(
        &self,
        view: &MappedLayer<'_>,
        lowered: &LoweredLayer,
        scratch: &mut EnergyScratch,
    ) -> f64 {
        self.total_from(view, lowered, &mut scratch.traffic)
    }

    fn total_from(
        &self,
        view: &MappedLayer<'_>,
        lowered: &LoweredLayer,
        traffic: &mut Vec<(bool, u64, u64)>,
    ) -> f64 {
        let h = view.arch().hierarchy();
        traffic.clear();
        traffic.resize(h.memories().len(), (false, 0, 0));
        self.accumulate(view, lowered, |mid, rd, wr| {
            let e = &mut traffic[mid.0];
            e.0 = true;
            e.1 += rd;
            e.2 += wr;
        });

        let mac_fj = self.mac_fj * view.layer().total_macs() as f64;
        let mut mem_fj = 0.0;
        for (i, &(touched, rd, wr)) in traffic.iter().enumerate() {
            if touched {
                mem_fj += self.fj_per_bit(h.mem(MemoryId(i))) * (rd + wr) as f64;
            }
        }
        mac_fj + mem_fj
    }

    /// The one traffic-counting pass: walks the IR's residency tables and
    /// reports every interface crossing to `add(memory, read_bits,
    /// write_bits)`. Both the report and the fast total are folds over
    /// this sequence, so they cannot drift apart.
    fn accumulate(
        &self,
        view: &MappedLayer<'_>,
        lowered: &LoweredLayer,
        mut add: impl FnMut(MemoryId, u64, u64),
    ) {
        let h = view.arch().hierarchy();
        let layer = view.layer();
        for op in Operand::all() {
            let chain = h.chain(op);
            // Interfaces above a residency pin (KV-cache, fused
            // intermediates) move no data, so they cost no energy.
            for level in 0..lowered.active_interfaces(op) {
                let lower = chain[level];
                let upper = chain[level + 1];
                let row = *lowered.level(op, level);
                let words = row.words;
                match op {
                    Operand::W | Operand::I => {
                        let bits = words * layer.precision().bits(op) * row.refills;
                        add(upper, bits, 0);
                        add(lower, 0, bits);
                    }
                    Operand::O => {
                        let out_bits = layer.precision().output_bits(row.final_above);
                        let drains = row.refills;
                        let revisits = drains - row.distinct_above;
                        // Every visit ends with a drain up…
                        let drain_bits = words * out_bits * drains;
                        add(lower, drain_bits, 0);
                        add(upper, 0, drain_bits);
                        // …and every revisit begins with a partial-sum
                        // read-back (always at partial precision).
                        let rb_bits = words * layer.precision().partial_sum_bits() * revisits;
                        add(upper, rb_bits, 0);
                        add(lower, 0, rb_bits);
                    }
                }
            }
            // Compute-side accesses at the innermost level.
            if self.include_compute_accesses {
                let innermost = chain[0];
                let total_bits =
                    lowered.words_per_cycle(op) * layer.precision().bits(op) * lowered.cc_spatial();
                match op {
                    Operand::W | Operand::I => add(innermost, total_bits, 0),
                    // Accumulator read-modify-write each cycle.
                    Operand::O => add(innermost, total_bits, total_bits),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ulm_arch::presets;
    use ulm_mapping::{LoopStack, Mapping, SpatialUnroll};
    use ulm_workload::{Dim, Layer, Precision};

    fn toy_view(stack: &[(Dim, u64)]) -> (ulm_arch::presets::PresetChip, Layer, Mapping) {
        let chip = presets::toy_chip();
        let layer = Layer::matmul("mm", 4, 4, 8, Precision::int8_acc24());
        let mapping = Mapping::with_greedy_alloc(
            &chip.arch,
            &layer,
            SpatialUnroll::new(chip.spatial.clone()),
            LoopStack::from_pairs(stack),
        )
        .unwrap();
        (chip, layer, mapping)
    }

    #[test]
    fn mac_energy_scales_with_ops() {
        let (chip, layer, mapping) = toy_view(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let r = EnergyModel::new().evaluate(&view);
        assert!((r.mac_fj - 50.0 * 128.0).abs() < 1e-9);
        assert!(r.total_fj > r.mac_fj);
    }

    #[test]
    fn toy_lb_traffic_matches_hand_count() {
        let (chip, layer, mapping) = toy_view(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let mut m = EnergyModel::new();
        m.include_compute_accesses = false;
        let r = m.evaluate(&view);
        let lb = r.memories.iter().find(|m| m.memory == "LB").unwrap();
        // W: 2 words x 8b x 32 refills = 512 bits read from LB.
        // I: 2 words x 8b x 32 refills = 512 bits read.
        assert_eq!(lb.read_bits, 1024);
        // O: 4 words x 8b (final) x 4 drains = 128 bits written, no
        // read-backs (fully output-stationary).
        assert_eq!(lb.write_bits, 128);
    }

    #[test]
    fn psum_round_trips_add_energy() {
        // Output stationary: all of C below the top for O.
        let (chip, layer, m1) = toy_view(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
        let v1 = MappedLayer::new(&layer, &chip.arch, &m1).unwrap();
        // C split: outer C2 above K, psums travel twice.
        let (_, _, m2) = toy_view(&[(Dim::C, 4), (Dim::B, 2), (Dim::K, 2), (Dim::C, 2)]);
        let v2 = MappedLayer::new(&layer, &chip.arch, &m2).unwrap();
        let e = EnergyModel::new();
        let r1 = e.evaluate(&v1);
        let r2 = e.evaluate(&v2);
        assert!(
            r2.memory_fj() > r1.memory_fj(),
            "psum round trips must cost energy: {} vs {}",
            r2.memory_fj(),
            r1.memory_fj()
        );
    }

    #[test]
    fn unit_energy_grows_with_sram_size() {
        let e = EnergyModel::new();
        let small = ulm_arch::Memory::new("s", MemoryKind::Sram, 8 * 1024);
        let big = ulm_arch::Memory::new("b", MemoryKind::Sram, 8 * 1024 * 1024);
        assert!(e.fj_per_bit(&big) > e.fj_per_bit(&small));
    }

    #[test]
    fn fast_total_matches_report_bitwise() {
        let stacks: [&[(Dim, u64)]; 3] = [
            &[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)],
            &[(Dim::B, 2), (Dim::K, 2), (Dim::C, 8)],
            &[(Dim::C, 4), (Dim::B, 2), (Dim::K, 2), (Dim::C, 2)],
        ];
        let mut scratch = EnergyScratch::default();
        for include in [true, false] {
            let mut m = EnergyModel::new();
            m.include_compute_accesses = include;
            for stack in stacks {
                let (chip, layer, mapping) = toy_view(stack);
                let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
                let report = m.evaluate(&view);
                let fast = m.evaluate_total_fast(&view, &mut scratch);
                assert_eq!(report.total_fj.to_bits(), fast.to_bits());
            }
        }
    }

    #[test]
    fn lowered_entry_points_match_internal_lowering() {
        let (chip, layer, mapping) =
            toy_view(&[(Dim::C, 4), (Dim::B, 2), (Dim::K, 2), (Dim::C, 2)]);
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let lowered = LoweredLayer::build(&view, DtlOptions::default());
        let m = EnergyModel::new();
        let report = m.evaluate(&view);
        assert_eq!(m.evaluate_lowered(&view, &lowered), report);
        let mut scratch = EnergyScratch::default();
        let total = m.evaluate_total_lowered(&view, &lowered, &mut scratch);
        assert_eq!(total.to_bits(), report.total_fj.to_bits());
    }

    #[test]
    fn compute_accesses_toggle() {
        let (chip, layer, mapping) = toy_view(&[(Dim::C, 8), (Dim::B, 2), (Dim::K, 2)]);
        let view = MappedLayer::new(&layer, &chip.arch, &mapping).unwrap();
        let with = EnergyModel::new().evaluate(&view);
        let mut m = EnergyModel::new();
        m.include_compute_accesses = false;
        let without = m.evaluate(&view);
        assert!(with.total_fj > without.total_fj);
    }
}
