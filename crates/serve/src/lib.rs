//! # ulm-serve — concurrent batch evaluation with a content-addressed cache
//!
//! This crate turns the uniform latency model into a *service*: a stream of
//! evaluation requests goes in, a stream of results comes out, and identical
//! requests are answered from a memoization cache instead of being
//! re-evaluated.
//!
//! The moving parts:
//!
//! * [`fingerprint`] — deterministic 128-bit content hashes over everything
//!   that determines an evaluation result (architecture, layer, spatial
//!   unrolling, temporal mapping or search configuration, model options).
//! * [`cache`] — a sharded, bounded, LRU-evicting map from fingerprint to
//!   result, safe to share across worker threads.
//! * [`pool`] — a bounded worker pool on plain `std::thread`; a full queue
//!   blocks producers (backpressure) instead of buffering unboundedly.
//! * [`store`] — the durable, shareable backing store: an append-only,
//!   checksummed log of fingerprint-keyed records that survives restarts,
//!   recovers the valid prefix of a damaged file, and compacts in place.
//! * [`server`] — the NDJSON request/response protocol plus the three
//!   transports: [`server::run_batch`] for stdin/stdout pipelines
//!   (`ulm batch`), [`server::run_tcp`] for thread-per-connection sockets
//!   (`ulm serve`), and [`server::run_reactor`] for the single-threaded
//!   epoll event loop (`ulm serve --reactor`).
//!
//! ## Quick start
//!
//! ```
//! use ulm_serve::{EvalService, ServeOptions, server::run_batch};
//!
//! let service = EvalService::new(ServeOptions {
//!     parallelism: Some(2),
//!     cache_capacity: 256,
//!     ..ServeOptions::default()
//! });
//! let requests = concat!(
//!     r#"{"id":1,"kind":"search","arch":"toy","layer":"4x4x8","#,
//!     r#""mapper":{"max_exhaustive":100,"samples":10}}"#,
//!     "\n",
//!     r#"{"id":2,"kind":"stats"}"#,
//!     "\n",
//! );
//! let mut out = Vec::new();
//! let summary = run_batch(&service, requests.as_bytes(), &mut out).unwrap();
//! assert_eq!(summary.requests, 2);
//! assert_eq!(summary.errors, 0);
//! ```
//!
//! Everything is built on `std` only — no async runtime, no HTTP framework —
//! so the service runs anywhere the model itself does.

pub mod cache;
pub mod fingerprint;
pub mod pool;
pub mod server;
pub mod store;

pub use cache::{CacheStats, ResultCache};
pub use fingerprint::{fingerprint_of, fingerprint_value, Fingerprint};
pub use pool::{JobHandle, PoolStats, WorkerPool};
pub use server::{
    run_batch, run_reactor, run_tcp, BatchSummary, DiskStats, EvalOutcome, EvalService,
    LatencySummary, ReactorService, SearchMeta, SearchTotals, ServeOptions, SurrogateTotals,
    WhatifTotals, CACHE_LOG_FILE,
};
pub use store::{CacheLog, ReplayReport};
