//! Durable, shareable backing store for the content-addressed result
//! cache: an append-only log of fingerprint-keyed records.
//!
//! ## File format
//!
//! ```text
//! [8-byte magic "ULMCLOG\x01"]
//! repeated records:
//!   [u32 LE body length][u32 LE CRC-32 of body][body]
//!   body = [16-byte LE fingerprint][payload bytes]
//! ```
//!
//! The payload is opaque to this module (the service stores JSON-encoded
//! evaluation outcomes). Appends are atomic-enough for a single writer:
//! each record is written in one buffered `write_all` and flushed, so the
//! only possible damage from a crash is a torn *final* record. Replay
//! therefore trusts the longest valid prefix: it stops at the first bad
//! length, bad checksum, or truncation, reports what it found, and the
//! writer truncates the file back to the trusted prefix before appending
//! again. A wrong magic is different — that file is simply not a cache
//! log, and replay refuses it outright rather than silently starting
//! empty.
//!
//! Duplicate fingerprints are legal (re-insertion after eviction, imports
//! from a replica); replay keeps the **last** record for each key, and
//! [`CacheLog::compact`] rewrites the file to one record per key via a
//! temp-file-plus-rename so a crash mid-compaction leaves the old log
//! intact.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ulm_error::{CacheCorruptKind, UlmError};

/// First bytes of every cache log; the trailing byte is the format version.
pub const MAGIC: [u8; 8] = *b"ULMCLOG\x01";

/// Replayed `(fingerprint, payload)` pairs, as warm-up and import consume
/// them.
pub type LogEntries = Vec<(u128, Vec<u8>)>;

/// Records refusing lengths beyond this are treated as corruption rather
/// than honored — a flipped high bit in a length field must not look like
/// a 3 GiB record.
const MAX_RECORD_LEN: u32 = 64 << 20;

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Serializes one `(fingerprint, payload)` record, framing included.
pub fn encode_record(fingerprint: u128, payload: &[u8]) -> Vec<u8> {
    let body_len = 16 + payload.len();
    debug_assert!(body_len <= MAX_RECORD_LEN as usize);
    let mut out = Vec::with_capacity(8 + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.extend_from_slice(&[0; 4]); // CRC placeholder
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[8..]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

/// One step of walking a record stream.
enum Step<'a> {
    Record {
        fingerprint: u128,
        payload: &'a [u8],
        consumed: usize,
    },
    End,
    Corrupt(CacheCorruptKind),
}

/// Decodes the record starting at `buf[0]`.
fn decode_step(buf: &[u8]) -> Step<'_> {
    if buf.is_empty() {
        return Step::End;
    }
    if buf.len() < 8 {
        return Step::Corrupt(CacheCorruptKind::Truncated);
    }
    let body_len = u32::from_le_bytes(buf[0..4].try_into().expect("4 bytes"));
    if !(16..=MAX_RECORD_LEN).contains(&body_len) {
        // A body shorter than a fingerprint or absurdly long cannot be a
        // record; the stream is unrecoverable from here.
        return Step::Corrupt(CacheCorruptKind::Truncated);
    }
    let body_len = body_len as usize;
    if buf.len() < 8 + body_len {
        return Step::Corrupt(CacheCorruptKind::Truncated);
    }
    let stored_crc = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let body = &buf[8..8 + body_len];
    if crc32(body) != stored_crc {
        return Step::Corrupt(CacheCorruptKind::BadChecksum);
    }
    Step::Record {
        fingerprint: u128::from_le_bytes(body[..16].try_into().expect("16 bytes")),
        payload: &body[16..],
        consumed: 8 + body_len,
    }
}

/// What [`replay`] learned about a log file.
#[derive(Debug)]
pub struct ReplayReport {
    /// Valid records read (before last-write-wins deduplication).
    pub records: u64,
    /// Length of the trusted prefix in bytes; anything past this is damage.
    pub valid_bytes: u64,
    /// The corruption that ended the replay, if the file was damaged.
    pub corruption: Option<UlmError>,
}

/// Replays the log bytes into `(fingerprint, payload)` pairs,
/// keeping the last record per fingerprint, in fingerprint order.
///
/// Damage *after* the magic degrades gracefully: the valid prefix is
/// returned and the report records where trust ended. A missing or wrong
/// magic is a hard error — the file is not a cache log at all.
pub fn replay(bytes: &[u8]) -> Result<(LogEntries, ReplayReport), UlmError> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(UlmError::CacheCorrupt {
            offset: 0,
            kind: CacheCorruptKind::BadMagic,
        });
    }
    let mut offset = MAGIC.len();
    let mut report = ReplayReport {
        records: 0,
        valid_bytes: offset as u64,
        corruption: None,
    };
    let mut entries: Vec<(u128, Vec<u8>)> = Vec::new();
    loop {
        match decode_step(&bytes[offset..]) {
            Step::End => break,
            Step::Corrupt(kind) => {
                report.corruption = Some(UlmError::CacheCorrupt {
                    offset: offset as u64,
                    kind,
                });
                break;
            }
            Step::Record {
                fingerprint,
                payload,
                consumed,
            } => {
                entries.push((fingerprint, payload.to_vec()));
                offset += consumed;
                report.records += 1;
                report.valid_bytes = offset as u64;
            }
        }
    }
    // Last write wins per fingerprint: stable sort by key, keep the
    // later of equal keys.
    entries.reverse();
    entries.sort_by_key(|(k, _)| *k);
    entries.dedup_by_key(|(k, _)| *k);
    Ok((entries, report))
}

/// Reads and replays a log file in one call (used by warm-up and import).
pub fn read_log(path: &Path) -> Result<(LogEntries, ReplayReport), UlmError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    replay(&bytes)
}

/// Writes a fresh, compacted log file of `entries` at `path`, replacing
/// any existing file atomically (temp file + rename).
pub fn write_log(path: &Path, entries: &[(u128, Vec<u8>)]) -> Result<(), UlmError> {
    let tmp = tmp_sibling(path);
    {
        let mut w = BufWriter::new(File::create(&tmp)?);
        w.write_all(&MAGIC)?;
        for (fp, payload) in entries {
            w.write_all(&encode_record(*fp, payload))?;
        }
        w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// The single-writer handle to an open cache log.
///
/// Opening replays the existing file (creating it when absent), hands the
/// warmed entries back, truncates away any damaged tail so subsequent
/// appends extend the *trusted* prefix, and then appends records as the
/// in-memory cache learns new results. `appended_since_compact` lets the
/// owner decide when a [`compact`](CacheLog::compact) pays for itself.
pub struct CacheLog {
    path: PathBuf,
    file: File,
    /// Records appended since open or the last compaction.
    appended_since_compact: u64,
}

impl CacheLog {
    /// Opens (or creates) the log at `path`, returning the handle, the
    /// warmed `(fingerprint, payload)` entries, and the replay report.
    pub fn open(path: &Path) -> Result<(Self, LogEntries, ReplayReport), UlmError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.is_empty() {
            file.write_all(&MAGIC)?;
            file.sync_all()?;
            let report = ReplayReport {
                records: 0,
                valid_bytes: MAGIC.len() as u64,
                corruption: None,
            };
            return Ok((
                CacheLog {
                    path: path.to_path_buf(),
                    file,
                    appended_since_compact: 0,
                },
                Vec::new(),
                report,
            ));
        }
        let (entries, report) = replay(&bytes)?;
        if report.corruption.is_some() {
            // Drop the damaged tail so future appends extend trusted bytes.
            file.set_len(report.valid_bytes)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::Start(report.valid_bytes))?;
        Ok((
            CacheLog {
                path: path.to_path_buf(),
                file,
                appended_since_compact: 0,
            },
            entries,
            report,
        ))
    }

    /// The log's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and flushes it to the OS.
    pub fn append(&mut self, fingerprint: u128, payload: &[u8]) -> Result<(), UlmError> {
        self.file.write_all(&encode_record(fingerprint, payload))?;
        self.file.flush()?;
        self.appended_since_compact += 1;
        Ok(())
    }

    /// Records appended since open or the last compaction.
    pub fn appended_since_compact(&self) -> u64 {
        self.appended_since_compact
    }

    /// Rewrites the log to exactly `entries` (one record per key),
    /// atomically, and re-opens the handle onto the new file.
    pub fn compact(&mut self, entries: &[(u128, Vec<u8>)]) -> Result<(), UlmError> {
        write_log(&self.path, entries)?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        self.appended_since_compact = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_entries(entries: &[(u128, &[u8])]) -> Vec<u8> {
        let mut bytes = MAGIC.to_vec();
        for (fp, payload) in entries {
            bytes.extend_from_slice(&encode_record(*fp, payload));
        }
        bytes
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_preserves_entries() {
        let bytes = record_entries(&[(1, b"one"), (2, b"two"), (3, &[])]);
        let (entries, report) = replay(&bytes).unwrap();
        assert_eq!(
            entries,
            vec![(1, b"one".to_vec()), (2, b"two".to_vec()), (3, Vec::new())]
        );
        assert_eq!(report.records, 3);
        assert!(report.corruption.is_none());
        assert_eq!(report.valid_bytes, bytes.len() as u64);
    }

    #[test]
    fn last_write_wins_per_fingerprint() {
        let bytes = record_entries(&[(7, b"old"), (9, b"other"), (7, b"new")]);
        let (entries, report) = replay(&bytes).unwrap();
        assert_eq!(entries, vec![(7, b"new".to_vec()), (9, b"other".to_vec())]);
        assert_eq!(report.records, 3, "dedup happens after counting");
    }

    #[test]
    fn wrong_magic_is_refused() {
        let err = replay(b"NOTALOG!rest").unwrap_err();
        assert_eq!(err.code(), "cache/bad-magic");
        let err = replay(b"").unwrap_err();
        assert_eq!(err.code(), "cache/bad-magic");
    }

    #[test]
    fn flipped_bit_stops_replay_at_the_bad_record() {
        let mut bytes = record_entries(&[(1, b"aaaa"), (2, b"bbbb"), (3, b"cccc")]);
        let second_record_at = MAGIC.len() + 8 + 16 + 4;
        bytes[second_record_at + 8 + 16] ^= 0x40; // damage record 2's payload
        let (entries, report) = replay(&bytes).unwrap();
        assert_eq!(entries, vec![(1, b"aaaa".to_vec())]);
        assert_eq!(report.records, 1);
        let corruption = report.corruption.expect("tail damage reported");
        assert_eq!(corruption.code(), "cache/bad-checksum");
        assert_eq!(report.valid_bytes as usize, second_record_at);
    }

    #[test]
    fn torn_final_record_keeps_the_prefix() {
        let full = record_entries(&[(1, b"aaaa"), (2, b"bbbb")]);
        let torn = &full[..full.len() - 3];
        let (entries, report) = replay(torn).unwrap();
        assert_eq!(entries, vec![(1, b"aaaa".to_vec())]);
        assert_eq!(
            report.corruption.as_ref().map(|e| e.code()),
            Some("cache/truncated")
        );
    }

    #[test]
    fn absurd_length_field_is_corruption_not_allocation() {
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 64]);
        let (entries, report) = replay(&bytes).unwrap();
        assert!(entries.is_empty());
        assert_eq!(
            report.corruption.as_ref().map(|e| e.code()),
            Some("cache/truncated")
        );
    }
}
